//! Multi-process cluster e2e: real `mpmb serve` binaries, one
//! coordinator scattering over SIGKILL-able workers.
//!
//! The determinism contract under test: a coordinator fronting 1, 2, or
//! 3 workers returns **byte-identical** bodies to a single-node server
//! for every method, and a worker SIGKILLed mid-solve never changes the
//! answer — the coordinator re-dispatches only the remaining trials of
//! the dead worker's range (observable via
//! `mpmb_cluster_redispatch_total` / `mpmb_cluster_worker_errors_total`).

use mpmb_serve::client::{call, call_ext};
use mpmb_serve::json::Json;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const GRAPH_FLAG: &str = "g=dataset:abide:0.01:3";

/// A running `mpmb serve` subprocess; killed on drop so a failing
/// assertion never leaks a daemon.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// SIGKILL — no drain, no goodbye. The cluster must cope.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawns `mpmb serve` with `extra` flags appended and blocks until it
/// announces its ephemeral address on stderr, which a background thread
/// then keeps draining.
fn spawn_server(extra: &[&str]) -> ServerProc {
    let mut args = vec![
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--threads",
        "2",
        "--queue",
        "16",
        "--graph",
        GRAPH_FLAG,
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_mpmb"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mpmb serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = std::io::BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read server stderr");
        assert!(n > 0, "server exited before announcing its address");
        if let Some(rest) = line.trim().strip_prefix("mpmb-serve listening on ") {
            break rest.to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                break;
            }
        }
    });
    ServerProc { child, addr }
}

fn spawn_worker(timeout_ms: u64) -> ServerProc {
    spawn_server(&["--role", "worker", "--timeout-ms", &timeout_ms.to_string()])
}

fn spawn_coordinator(workers: &[&ServerProc], probe_interval_ms: u64) -> ServerProc {
    spawn_coordinator_with(workers, probe_interval_ms, &[])
}

fn spawn_coordinator_with(
    workers: &[&ServerProc],
    probe_interval_ms: u64,
    extra: &[&str],
) -> ServerProc {
    let list = workers
        .iter()
        .map(|w| w.addr.as_str())
        .collect::<Vec<_>>()
        .join(",");
    let mut args = vec![
        "--role",
        "coordinator",
        "--workers",
        &list,
        "--probe-interval-ms",
    ];
    let probe = probe_interval_ms.to_string();
    args.push(&probe);
    args.extend_from_slice(extra);
    spawn_server(&args)
}

/// A scratch directory under the system temp dir, empty on return.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpmb-cluster-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn metric_value(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing:\n{metrics_text}"))
}

fn fetch_metric(addr: &str, name: &str) -> u64 {
    let (status, text) = call(addr, "GET", "/metrics", "").expect("GET /metrics");
    assert_eq!(status, 200);
    metric_value(&text, name)
}

/// Solve bodies covering every scatterable method. Trial budgets are
/// small — this test is about bit-identity, not load.
fn request_matrix() -> Vec<(&'static str, String)> {
    vec![
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":2000,\"seed\":41,\"k\":3}".into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"mcvp\",\"trials\":1000,\"seed\":43}".into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"ols\",\"trials\":3000,\"prep\":150,\"seed\":47}".into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"ols-kl\",\"trials\":200,\"prep\":150,\"seed\":53}"
                .into(),
        ),
        (
            "/v1/count",
            "{\"graph\":\"g\",\"trials\":1500,\"seed\":59}".into(),
        ),
    ]
}

#[test]
fn coordinator_matches_single_node_byte_for_byte_at_one_two_and_three_workers() {
    // Single-node baselines.
    let single = spawn_server(&[]);
    let matrix = request_matrix();
    let baselines: Vec<String> = matrix
        .iter()
        .map(|(path, body)| {
            let (status, resp) = call(single.addr.as_str(), "POST", path, body).expect("baseline");
            assert_eq!(status, 200, "baseline {path} {body}: {resp}");
            resp
        })
        .collect();
    drop(single);

    for n in 1..=3usize {
        let workers: Vec<ServerProc> = (0..n).map(|_| spawn_worker(0)).collect();
        let coord = spawn_coordinator(&workers.iter().collect::<Vec<_>>(), 200);
        for ((path, body), want) in matrix.iter().zip(&baselines) {
            let (status, got) = call(coord.addr.as_str(), "POST", path, body).expect("scattered");
            assert_eq!(status, 200, "{n} workers, {path} {body}: {got}");
            assert_eq!(
                &got, want,
                "{n} workers, {path} {body}: cluster answer drifted"
            );
        }
        assert!(
            fetch_metric(&coord.addr, "mpmb_cluster_ranges_dispatched_total")
                >= matrix.len() as u64,
            "coordinator answered without dispatching ranges"
        );
        assert_eq!(fetch_metric(&coord.addr, "mpmb_cluster_workers"), n as u64);
    }
}

#[test]
fn sigkilled_worker_mid_solve_never_changes_the_answer() {
    // 600k OS trials with a 25 ms worker deadline: every range request
    // returns partial coverage, so the scatter loop runs many rounds
    // and there is a wide window to SIGKILL a worker mid-solve.
    let body =
        "{\"graph\":\"g\",\"method\":\"os\",\"trials\":600000,\"seed\":61,\"k\":2,\"threads\":2}";

    let single = spawn_server(&[]);
    let (status, baseline) = call(single.addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!(status, 200, "{baseline}");
    drop(single);

    let mut workers = [spawn_worker(25), spawn_worker(25)];
    let coord = spawn_coordinator(&workers.iter().collect::<Vec<_>>(), 60_000);
    let coord_addr = coord.addr.clone();

    let solver = std::thread::spawn(move || {
        call(coord_addr.as_str(), "POST", "/v1/solve", body).expect("scattered solve")
    });

    // Wait until the scatter is demonstrably in flight, then SIGKILL
    // worker #2. The long probe interval ensures the *scatter loop*
    // (not the prober) discovers the corpse, via a failed range call.
    let deadline = Instant::now() + Duration::from_secs(60);
    while fetch_metric(&coord.addr, "mpmb_cluster_ranges_dispatched_total") < 4 {
        assert!(Instant::now() < deadline, "scatter never got going");
        std::thread::sleep(Duration::from_millis(5));
    }
    workers[1].kill();

    let (status, got) = solver.join().expect("solver thread");
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, baseline, "SIGKILLed worker changed the answer");

    assert!(
        fetch_metric(&coord.addr, "mpmb_cluster_worker_errors_total") >= 1,
        "the kill was never observed by the scatter loop"
    );
    assert!(
        fetch_metric(&coord.addr, "mpmb_cluster_redispatch_total") >= 1,
        "remaining trials were never redispatched"
    );
}

/// The observability tentpole, end to end: a cluster solve under a
/// client-supplied `X-Request-Id` produces ONE stitched trace — the
/// coordinator's `/debug/trace` entry carries per-worker phase
/// breakdowns and a deadline budget summing to ~the request wall time,
/// the worker's own trace file contains the coordinator's trace id
/// (cross-node propagation), and none of it perturbs the answer:
/// obs-on bodies are byte-identical to an obs-off cluster's.
#[test]
fn cluster_trace_is_stitched_budgeted_and_answers_stay_bit_identical() {
    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":2000,\"seed\":67,\"k\":3}";

    // Obs-off baseline: a plain cluster, no sinks, no request id.
    let baseline = {
        let workers = [spawn_worker(0), spawn_worker(0)];
        let coord = spawn_coordinator(&workers.iter().collect::<Vec<_>>(), 200);
        let (status, got) = call(coord.addr.as_str(), "POST", "/v1/solve", body).unwrap();
        assert_eq!(status, 200, "{got}");
        got
    };

    // Obs-on cluster: every node writes a trace file, the coordinator
    // additionally exposes the budget header.
    let dir = scratch_dir("stitch");
    let worker_traces: Vec<String> = (0..2)
        .map(|i| dir.join(format!("worker{i}.jsonl")).display().to_string())
        .collect();
    let workers: Vec<ServerProc> = worker_traces
        .iter()
        .map(|path| {
            spawn_server(&[
                "--role",
                "worker",
                "--timeout-ms",
                "0",
                "--trace",
                path.as_str(),
            ])
        })
        .collect();
    let coord_trace = dir.join("coord.jsonl").display().to_string();
    let coord = spawn_coordinator_with(
        &workers.iter().collect::<Vec<_>>(),
        200,
        &["--trace", coord_trace.as_str(), "--budget-header"],
    );

    let (status, headers, got) = call_ext(
        coord.addr.as_str(),
        "POST",
        "/v1/solve",
        body,
        &[("X-Request-Id", "xnode-stitch-e2e")],
    )
    .unwrap();
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, baseline, "tracing changed the cluster answer");

    // The budget header is present and names all six buckets.
    let budget_header = headers
        .iter()
        .find(|(k, _)| k == "x-mpmb-budget")
        .map(|(_, v)| v.as_str())
        .expect("--budget-header adds X-Mpmb-Budget on solve responses");
    for bucket in [
        "queue=",
        "materialize=",
        "prepare=",
        "trials=",
        "network=",
        "finalize=",
    ] {
        assert!(budget_header.contains(bucket), "{budget_header}");
    }

    // The coordinator's /debug/trace entry is the stitched timeline.
    let (status, resp) = call(coord.addr.as_str(), "GET", "/debug/trace", "").unwrap();
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    let traces = json.get("traces").and_then(Json::as_arr).unwrap();
    let entry = traces
        .iter()
        .find(|t| t.get("trace_id").and_then(Json::as_str) == Some("xnode-stitch-e2e"))
        .expect("cluster solve retained in the coordinator ring");
    let phases = match entry.get("phases").expect("phases object") {
        Json::Obj(phases) => phases,
        other => panic!("phases should be an object, got {other:?}"),
    };
    // Worker phases come back namespaced `{addr}/{phase}`: at least one
    // per worker, since the 2000-trial range scatters across both.
    for w in &workers {
        assert!(
            phases.iter().any(|(name, _)| name
                .strip_prefix(w.addr.as_str())
                .is_some_and(|rest| rest.starts_with('/'))),
            "no stitched phase from worker {}: {phases:?}",
            w.addr
        );
    }
    // The deadline budget covers the request wall clock: the six
    // buckets sum to at least the measured duration (nested solver
    // spans can push the classified total slightly above it).
    let dur_us = entry.get("dur_us").and_then(Json::as_f64).unwrap();
    let budget = entry.get("budget").expect("budget object");
    let spent: f64 = [
        "queue",
        "materialize",
        "prepare",
        "trials",
        "network",
        "finalize",
    ]
    .iter()
    .map(|b| budget.get(b).and_then(Json::as_f64).unwrap())
    .sum();
    assert!(
        spent >= dur_us / 1e6 * 0.99,
        "budget accounts {spent}s of a {}s request",
        dur_us / 1e6
    );

    // Cross-node propagation: the coordinator's trace id shows up in
    // every worker's own trace file, with parented spans.
    for (path, w) in worker_traces.iter().zip(&workers) {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("worker trace file {path}: {e}"));
        assert!(
            text.contains("xnode-stitch-e2e"),
            "worker {} never joined the coordinator's trace:\n{text}",
            w.addr
        );
        assert!(
            text.contains("\"parent\":"),
            "worker {} spans carry no parent ids",
            w.addr
        );
    }

    drop(coord);
    drop(workers);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Metrics federation under membership churn: `/metrics/cluster` merges
/// every healthy worker's page under `node` labels; a worker SIGKILLed
/// between scrapes bumps the failure counter while the survivor keeps
/// rendering, and repeated scrapes against the half-dead membership
/// never panic the coordinator.
#[test]
fn metrics_federation_survives_worker_churn() {
    let mut workers = [spawn_worker(0), spawn_worker(0)];
    // A probe interval far longer than the test: the scrape loop itself
    // must discover the corpse, so the failure counter is deterministic.
    let coord = spawn_coordinator(&workers.iter().collect::<Vec<_>>(), 60_000);

    // Warm the workers' metric pages so the merge has real series.
    for _ in 0..2 {
        let (status, got) = call(
            coord.addr.as_str(),
            "POST",
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":500,\"seed\":71}",
        )
        .unwrap();
        assert_eq!(status, 200, "{got}");
    }

    let (status, merged) = call(coord.addr.as_str(), "GET", "/metrics/cluster", "").unwrap();
    assert_eq!(status, 200, "{merged}");
    for w in &workers {
        assert!(
            merged.contains(&format!("node=\"{}\"", w.addr)),
            "worker {} missing from the federated page:\n{merged}",
            w.addr
        );
    }
    assert!(
        merged.contains("node=\"coordinator\""),
        "coordinator's own page missing from the merge"
    );
    // Aggregate (unlabeled) series precede the per-node breakdown.
    assert!(
        merged.contains("mpmb_requests_total"),
        "no aggregated series in the merge:\n{merged}"
    );
    assert_eq!(
        fetch_metric(&coord.addr, "mpmb_federation_scrape_failures_total"),
        0
    );
    let scrapes_before = fetch_metric(&coord.addr, "mpmb_federation_scrapes_total");
    assert!(scrapes_before >= 2, "both workers should have been scraped");

    // Kill one worker. The prober (60 s interval) still believes it is
    // healthy, so the next scrape hits the corpse and fails.
    workers[1].kill();
    let dead = workers[1].addr.clone();
    let (status, merged) = call(coord.addr.as_str(), "GET", "/metrics/cluster", "").unwrap();
    assert_eq!(status, 200, "churn must degrade, not fail: {merged}");
    let node_series = |addr: &str| {
        let label = format!("node=\"{addr}\"");
        merged
            .lines()
            .any(|l| l.starts_with("mpmb_requests_total") && l.contains(&label))
    };
    assert!(
        node_series(&workers[0].addr),
        "survivor dropped from the federated page:\n{merged}"
    );
    assert!(
        fetch_metric(&coord.addr, "mpmb_federation_scrape_failures_total") >= 1,
        "dead worker's scrape failure went uncounted"
    );
    assert!(
        !node_series(&dead),
        "dead worker still rendering fresh series:\n{merged}"
    );

    // Flapping membership never panics: hammer the endpoint while the
    // dead slot lingers in the member list.
    for _ in 0..3 {
        let (status, _) = call(coord.addr.as_str(), "GET", "/metrics/cluster", "").unwrap();
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(50));
    }
}
