//! Multi-process cluster e2e: real `mpmb serve` binaries, one
//! coordinator scattering over SIGKILL-able workers.
//!
//! The determinism contract under test: a coordinator fronting 1, 2, or
//! 3 workers returns **byte-identical** bodies to a single-node server
//! for every method, and a worker SIGKILLed mid-solve never changes the
//! answer — the coordinator re-dispatches only the remaining trials of
//! the dead worker's range (observable via
//! `mpmb_cluster_redispatch_total` / `mpmb_cluster_worker_errors_total`).

use mpmb_serve::client::call;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const GRAPH_FLAG: &str = "g=dataset:abide:0.01:3";

/// A running `mpmb serve` subprocess; killed on drop so a failing
/// assertion never leaks a daemon.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// SIGKILL — no drain, no goodbye. The cluster must cope.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawns `mpmb serve` with `extra` flags appended and blocks until it
/// announces its ephemeral address on stderr, which a background thread
/// then keeps draining.
fn spawn_server(extra: &[&str]) -> ServerProc {
    let mut args = vec![
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--threads",
        "2",
        "--queue",
        "16",
        "--graph",
        GRAPH_FLAG,
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_mpmb"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mpmb serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = std::io::BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read server stderr");
        assert!(n > 0, "server exited before announcing its address");
        if let Some(rest) = line.trim().strip_prefix("mpmb-serve listening on ") {
            break rest.to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                break;
            }
        }
    });
    ServerProc { child, addr }
}

fn spawn_worker(timeout_ms: u64) -> ServerProc {
    spawn_server(&["--role", "worker", "--timeout-ms", &timeout_ms.to_string()])
}

fn spawn_coordinator(workers: &[&ServerProc], probe_interval_ms: u64) -> ServerProc {
    let list = workers
        .iter()
        .map(|w| w.addr.as_str())
        .collect::<Vec<_>>()
        .join(",");
    spawn_server(&[
        "--role",
        "coordinator",
        "--workers",
        &list,
        "--probe-interval-ms",
        &probe_interval_ms.to_string(),
    ])
}

fn metric_value(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing:\n{metrics_text}"))
}

fn fetch_metric(addr: &str, name: &str) -> u64 {
    let (status, text) = call(addr, "GET", "/metrics", "").expect("GET /metrics");
    assert_eq!(status, 200);
    metric_value(&text, name)
}

/// Solve bodies covering every scatterable method. Trial budgets are
/// small — this test is about bit-identity, not load.
fn request_matrix() -> Vec<(&'static str, String)> {
    vec![
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":2000,\"seed\":41,\"k\":3}".into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"mcvp\",\"trials\":1000,\"seed\":43}".into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"ols\",\"trials\":3000,\"prep\":150,\"seed\":47}".into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"ols-kl\",\"trials\":200,\"prep\":150,\"seed\":53}"
                .into(),
        ),
        (
            "/v1/count",
            "{\"graph\":\"g\",\"trials\":1500,\"seed\":59}".into(),
        ),
    ]
}

#[test]
fn coordinator_matches_single_node_byte_for_byte_at_one_two_and_three_workers() {
    // Single-node baselines.
    let single = spawn_server(&[]);
    let matrix = request_matrix();
    let baselines: Vec<String> = matrix
        .iter()
        .map(|(path, body)| {
            let (status, resp) = call(single.addr.as_str(), "POST", path, body).expect("baseline");
            assert_eq!(status, 200, "baseline {path} {body}: {resp}");
            resp
        })
        .collect();
    drop(single);

    for n in 1..=3usize {
        let workers: Vec<ServerProc> = (0..n).map(|_| spawn_worker(0)).collect();
        let coord = spawn_coordinator(&workers.iter().collect::<Vec<_>>(), 200);
        for ((path, body), want) in matrix.iter().zip(&baselines) {
            let (status, got) = call(coord.addr.as_str(), "POST", path, body).expect("scattered");
            assert_eq!(status, 200, "{n} workers, {path} {body}: {got}");
            assert_eq!(
                &got, want,
                "{n} workers, {path} {body}: cluster answer drifted"
            );
        }
        assert!(
            fetch_metric(&coord.addr, "mpmb_cluster_ranges_dispatched_total")
                >= matrix.len() as u64,
            "coordinator answered without dispatching ranges"
        );
        assert_eq!(fetch_metric(&coord.addr, "mpmb_cluster_workers"), n as u64);
    }
}

#[test]
fn sigkilled_worker_mid_solve_never_changes_the_answer() {
    // 600k OS trials with a 25 ms worker deadline: every range request
    // returns partial coverage, so the scatter loop runs many rounds
    // and there is a wide window to SIGKILL a worker mid-solve.
    let body =
        "{\"graph\":\"g\",\"method\":\"os\",\"trials\":600000,\"seed\":61,\"k\":2,\"threads\":2}";

    let single = spawn_server(&[]);
    let (status, baseline) = call(single.addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!(status, 200, "{baseline}");
    drop(single);

    let mut workers = [spawn_worker(25), spawn_worker(25)];
    let coord = spawn_coordinator(&workers.iter().collect::<Vec<_>>(), 60_000);
    let coord_addr = coord.addr.clone();

    let solver = std::thread::spawn(move || {
        call(coord_addr.as_str(), "POST", "/v1/solve", body).expect("scattered solve")
    });

    // Wait until the scatter is demonstrably in flight, then SIGKILL
    // worker #2. The long probe interval ensures the *scatter loop*
    // (not the prober) discovers the corpse, via a failed range call.
    let deadline = Instant::now() + Duration::from_secs(60);
    while fetch_metric(&coord.addr, "mpmb_cluster_ranges_dispatched_total") < 4 {
        assert!(Instant::now() < deadline, "scatter never got going");
        std::thread::sleep(Duration::from_millis(5));
    }
    workers[1].kill();

    let (status, got) = solver.join().expect("solver thread");
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, baseline, "SIGKILLed worker changed the answer");

    assert!(
        fetch_metric(&coord.addr, "mpmb_cluster_worker_errors_total") >= 1,
        "the kill was never observed by the scatter loop"
    );
    assert!(
        fetch_metric(&coord.addr, "mpmb_cluster_redispatch_total") >= 1,
        "remaining trials were never redispatched"
    );
}
