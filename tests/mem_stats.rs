//! Smoke tests for the memtrack wiring: with the counting allocator
//! installed, a solve drives `peak_bytes()` above zero, and the serve
//! layer surfaces it on `/metrics` as the `mpmb_peak_rss_bytes` gauge.
//!
//! This test binary installs its own `#[global_allocator]` — exactly
//! what the `mpmb` CLI and `mpmb-serve` daemon do — so the gauge reads
//! real numbers here rather than the 0 an uninstrumented allocator
//! would report.

use mpmb_serve::client::call;
use mpmb_serve::solve::advance_solve;
use mpmb_serve::{Cancel, Server, ServerConfig};

#[global_allocator]
static ALLOC: memtrack::CountingAllocator = memtrack::CountingAllocator;

fn metric_value(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing:\n{metrics_text}"))
}

#[test]
fn solve_registers_nonzero_peak_allocation() {
    let g = datasets::Dataset::Abide.generate(0.01, 3);
    memtrack::reset_peak();
    let before = memtrack::peak_bytes();
    let progress =
        advance_solve(&g, "os", 500, 0, 42, 1, None, &Cancel::never()).expect("solve succeeds");
    assert_eq!(progress.trials_done, 500);
    let after = memtrack::peak_bytes();
    assert!(
        after > before,
        "solve should raise the allocation peak: before={before} after={after}"
    );
}

#[test]
fn metrics_endpoint_reports_nonzero_peak_rss_after_solve() {
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        threads: 2,
        queue: 16,
        timeout_ms: 0,
        cache_capacity: 16,
        max_solver_threads: 0,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr.to_string();

    let (status, body) = call(
        &addr,
        "POST",
        "/v1/graphs",
        "{\"name\":\"g\",\"spec\":\"dataset:abide:0.01:3\"}",
    )
    .expect("register graph");
    assert_eq!(status, 200, "register failed: {body}");

    let (status, body) = call(
        &addr,
        "POST",
        "/v1/solve",
        "{\"graph\":\"g\",\"method\":\"os\",\"trials\":500,\"seed\":42}",
    )
    .expect("solve");
    assert_eq!(status, 200, "solve failed: {body}");

    let (status, metrics) = call(&addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let peak = metric_value(&metrics, "mpmb_peak_rss_bytes");
    assert!(peak > 0, "peak RSS gauge should be nonzero after a solve");

    server.begin_shutdown();
    server.join();
}
