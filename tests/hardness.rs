//! Integration tests of the §III-B hardness reduction against both the
//! exact engine and the sampling solvers.

use mpmb_core::{Monotone2Sat, OrderingSampling, OsConfig, Reduction};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random monotone 2-CNF without clause triangles (sound instances).
fn random_sound_formula(n: u32, m: usize, seed: u64) -> Monotone2Sat {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut clauses: Vec<(u32, u32)> = Vec::new();
    let mut adj = vec![vec![false; n as usize + 1]; n as usize + 1];
    while clauses.len() < m {
        let a = rng.random_range(1..=n);
        let b = rng.random_range(1..=n);
        if a == b {
            clauses.push((a, a));
            continue;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        if adj[lo as usize][hi as usize] {
            continue;
        }
        // Reject if adding (lo,hi) would close a clause triangle.
        let triangle = (1..=n).any(|c| {
            c != lo
                && c != hi
                && adj[lo.min(c) as usize][lo.max(c) as usize]
                && adj[hi.min(c) as usize][hi.max(c) as usize]
        });
        if triangle {
            continue;
        }
        adj[lo as usize][hi as usize] = true;
        clauses.push((lo, hi));
    }
    Monotone2Sat::new(n, clauses)
}

#[test]
fn exact_engine_validates_reduction_on_random_sound_instances() {
    for seed in 0..10u64 {
        let f = random_sound_formula(6, 4, seed);
        let r = Reduction::build(f);
        if !r.is_exactly_sound() {
            // Unit clauses can occasionally combine into accidental
            // butterflies; those instances only obey the inequality.
            let p = r.exact_target_prob().unwrap();
            assert!(p <= r.claimed_prob() + 1e-12, "seed {seed}");
            continue;
        }
        let p = r.exact_target_prob().unwrap();
        assert!(
            (p - r.claimed_prob()).abs() < 1e-12,
            "seed {seed}: exact {p} vs claimed {}",
            r.claimed_prob()
        );
    }
}

#[test]
fn sampling_counts_models_through_the_reduction() {
    // The reduction turns model counting into MPMB probability
    // estimation; the OS solver therefore *approximately counts* the
    // models of F. Check the count recovered from the estimate.
    let f = Monotone2Sat::new(5, vec![(1, 2), (2, 3), (4, 5)]);
    let true_count = f.count_satisfying();
    let r = Reduction::build(f);
    assert!(r.is_exactly_sound());
    let d = OrderingSampling::new(OsConfig {
        trials: 60_000,
        seed: 1234,
        ..Default::default()
    })
    .run(&r.graph);
    let est_count = d.prob(&r.target) * 2f64.powi(5);
    assert!(
        (est_count - true_count as f64).abs() < 1.0,
        "estimated {est_count} vs true {true_count}"
    );
}

#[test]
fn unsatisfied_clause_forces_clause_butterfly_maximum() {
    // With an unsatisfiable-ish world view: if the formula is the single
    // clause (y1 ∨ y1) and y1 is false (variable edge present), the
    // clause butterfly (weight 4) dominates the target (weight 2).
    let f = Monotone2Sat::new(1, vec![(1, 1)]);
    let r = Reduction::build(f);
    let p = r.exact_target_prob().unwrap();
    // Exactly half the assignments satisfy: P = 1/2.
    assert!((p - 0.5).abs() < 1e-12, "p={p}");
    // And the clause butterfly takes the other half.
    let clause_b = r.clause_butterfly((1, 1));
    let p_clause = mpmb_core::exact_prob(&r.graph, &clause_b, Default::default()).unwrap();
    assert!((p_clause - 0.5).abs() < 1e-12, "clause p={p_clause}");
}

#[test]
fn reduction_scales_to_twenty_variables_for_sampling() {
    // Exact enumeration is already infeasible at n = 20 (2^20 worlds is
    // fine, but the point is the *solver* side stays cheap): OS handles
    // the reduction graph comfortably.
    let clauses: Vec<(u32, u32)> = (1..20).map(|i| (i, i + 1)).collect();
    let f = Monotone2Sat::new(20, clauses);
    let claimed = f.count_satisfying() as f64 / 2f64.powi(20);
    let r = Reduction::build(f);
    assert!(r.is_exactly_sound());
    let d = OrderingSampling::new(OsConfig {
        trials: 30_000,
        seed: 5,
        ..Default::default()
    })
    .run(&r.graph);
    let est = d.prob(&r.target);
    assert!(
        (est - claimed).abs() < 0.02,
        "est {est} vs claimed {claimed}"
    );
}
