//! Integration of the uncertainty-quantification extensions on dataset
//! stand-ins: max-weight distributions, ensembles, targeted queries, and
//! the accuracy self-check — all mutually consistent.

use datasets::Dataset;
use mpmb::prelude::*;
use mpmb_core::{
    estimate_prob_of, max_weight_distribution, run_os_adaptive, run_os_ensemble, validate_accuracy,
    AdaptiveConfig,
};

fn graph() -> UncertainBipartiteGraph {
    Dataset::Abide.generate(0.2, 77)
}

#[test]
fn max_weight_tail_brackets_the_mpmb_weight() {
    let g = graph();
    let dist = OrderingSampling::new(OsConfig {
        trials: 4_000,
        seed: 1,
        ..Default::default()
    })
    .run(&g);
    let (b, p) = dist.mpmb().expect("butterflies exist");
    let w = b.weight(&g).unwrap();
    let mw = max_weight_distribution(&g, 4_000, 1);
    // The MPMB's weight must be achievable: the tail at its weight is at
    // least its own probability (it contributes those worlds).
    assert!(
        mw.tail_prob(w) + 0.02 >= p,
        "tail at w={w} is {} but P(B)={p}",
        mw.tail_prob(w)
    );
    // And nothing exceeds the heaviest backbone butterfly.
    let heaviest = mpmb_core::enumerate_backbone_butterflies(&g)
        .into_iter()
        .map(|b| b.weight(&g).unwrap())
        .fold(0.0, f64::max);
    assert_eq!(mw.tail_prob(heaviest + 0.001), 0.0);
}

#[test]
fn ensemble_interval_covers_targeted_query() {
    let g = graph();
    let ensemble = run_os_ensemble(
        &g,
        &OsConfig {
            trials: 4_000,
            seed: 10,
            ..Default::default()
        },
        6,
    );
    let (b, _) = ensemble.mean_distribution().mpmb().unwrap();
    let entry = ensemble.get(&b).unwrap();
    // Independent conditioned estimate should land within a few standard
    // errors of the ensemble mean.
    let q = estimate_prob_of(&g, &b, 20_000, 99).unwrap();
    let margin = 5.0 * (entry.std_dev + 0.003);
    assert!(
        (q.prob - entry.mean).abs() < margin,
        "query {} vs ensemble {} ± {}",
        q.prob,
        entry.mean,
        entry.std_dev
    );
}

#[test]
fn adaptive_run_passes_the_self_check() {
    let g = graph();
    let result = run_os_adaptive(
        &g,
        &AdaptiveConfig {
            epsilon: 0.15,
            delta: 0.15,
            batch: 2_000,
            max_trials: 400_000,
            seed: 3,
            ..Default::default()
        },
    );
    assert!(result.bound_satisfied, "cap hit at {}", result.trials_used);
    let report = validate_accuracy(&g, &result.distribution, 0.15, 0.15);
    // Exact enumeration is infeasible here (complete ~26×26 graph), so
    // the self-check falls back to a high-trial reference.
    assert!(matches!(
        report.reference,
        mpmb_core::Reference::SampledReference { .. }
    ));
    assert!(report.max_abs_error < 0.03, "err {}", report.max_abs_error);
    assert_eq!(report.theorem_iv1_satisfied, Some(true));
}

#[test]
fn count_distribution_consistent_with_expected_count() {
    let g = Dataset::MovieLens.generate(0.02, 5);
    let expect = bigraph::expected::expected_butterfly_count(&g);
    let d = mpmb_core::sample_count_distribution(&g, 2_000, 5);
    // Wide tolerance: counts are heavy-tailed; 2k trials suffice for ±6σ/√n.
    let se = (d.variance / 2_000.0).sqrt().max(1e-9);
    assert!(
        (d.mean - expect).abs() < 8.0 * se + 0.05 * expect,
        "mean {} vs expected {expect} (se {se})",
        d.mean
    );
}
