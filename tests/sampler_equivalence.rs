//! Locks down the fixed-point Bernoulli acceptance semantics.
//!
//! The samplers decide edge presence with an integer compare against the
//! precomputed threshold `t = ⌈p · 2⁵³⌉` (see `bigraph::sample`). This
//! suite proves, for **every distinct probability appearing in the
//! repo's datasets** plus the adversarial values
//! `{0, 1, f64::MIN_POSITIVE, 0.5 ± ulp}`, that the integer decision
//! matches the historical float decision `random::<f64>() < p` on the
//! same RNG stream — word for word — so the fixed-point rewrite cannot
//! perturb any estimator.

use bigraph::{accept_word, fixed_point_threshold, trial_rng, FIXED_POINT_ONE};
use datasets::Dataset;
use rand::RngCore;

/// The historical decision: `random::<f64>() < p` with the shim's
/// `random::<f64>() = (next_u64() >> 11) · 2⁻⁵³`, spelled out on a raw
/// word so both paths can be fed the identical stream.
fn float_decision(word: u64, p: f64) -> bool {
    ((word >> 11) as f64) * (1.0 / FIXED_POINT_ONE as f64) < p
}

/// Adversarial probabilities around the representable edge cases.
fn edge_case_probs() -> Vec<f64> {
    let half = 0.5f64;
    vec![
        0.0,
        1.0,
        f64::MIN_POSITIVE,
        half,
        // 0.5 ± one ulp (ulp of 0.5 going down is EPSILON/4, going up
        // EPSILON/2 — use f64 bit steps to be exact about "± ulp").
        f64::from_bits(half.to_bits() - 1),
        f64::from_bits(half.to_bits() + 1),
        1.0 - f64::EPSILON / 2.0,
        f64::EPSILON,
    ]
}

/// Every distinct probability across all four datasets (at the scales
/// the equivalence sweep can afford), bit-deduplicated.
fn dataset_probs() -> Vec<f64> {
    let mut bits: Vec<u64> = Vec::new();
    for (dataset, scale) in [
        (Dataset::Abide, 1.0),
        (Dataset::MovieLens, 0.05),
        (Dataset::Jester, 0.005),
        (Dataset::Protein, 0.01),
    ] {
        let g = dataset.generate(scale, 3);
        bits.extend(g.edge_ids().map(|e| g.prob(e).to_bits()));
    }
    bits.sort_unstable();
    bits.dedup();
    bits.into_iter().map(f64::from_bits).collect()
}

/// Raw words that straddle `p`'s acceptance boundary, plus extremes.
fn boundary_words(t: u64) -> Vec<u64> {
    let mut words = vec![0u64, u64::MAX];
    for d in [-2i64, -1, 0, 1, 2] {
        let u = (t as i64 + d).clamp(0, (FIXED_POINT_ONE - 1) as i64) as u64;
        // The low 11 bits are discarded by both paths; vary them too.
        words.push(u << 11);
        words.push((u << 11) | 0x7FF);
    }
    words
}

#[test]
fn integer_threshold_matches_float_compare_for_all_dataset_probs() {
    let mut probs = dataset_probs();
    probs.extend(edge_case_probs());
    assert!(
        probs.len() > 100,
        "expected a rich probability set from the datasets, got {}",
        probs.len()
    );
    // A shared random word stream: every probability judges the same
    // draws, as a trial stream would present them.
    let mut rng = trial_rng(0xE9, 0);
    let stream: Vec<u64> = (0..256).map(|_| rng.next_u64()).collect();
    for &p in &probs {
        let t = fixed_point_threshold(p);
        for w in boundary_words(t).into_iter().chain(stream.iter().copied()) {
            assert_eq!(
                accept_word(w, t),
                float_decision(w, p),
                "divergence at p={p} ({:#x}) word={w:#x} t={t}",
                p.to_bits()
            );
        }
    }
}

#[test]
fn whole_stream_decisions_match_on_a_real_dataset() {
    // Replay complete trial streams over a real graph: the per-edge
    // decisions of the production sampler must equal the historical
    // float path drawing from an identical ChaCha stream.
    let g = Dataset::Abide.generate(0.5, 7);
    for trial in 0..32 {
        let mut rng_new = trial_rng(11, trial);
        let mut rng_old = trial_rng(11, trial);
        for e in g.edge_ids() {
            let new = bigraph::sample::bernoulli_edge(&g, e, &mut rng_new);
            let old = float_decision(rng_old.next_u64(), g.prob(e));
            assert_eq!(new, old, "trial {trial} edge {e:?}");
        }
        // Both consumed the same number of words.
        assert_eq!(rng_new.next_u64(), rng_old.next_u64(), "trial {trial}");
    }
}

#[test]
fn deterministic_probabilities_never_flip() {
    // p = 0 and p = 1 are decision constants for every possible word.
    let t0 = fixed_point_threshold(0.0);
    let t1 = fixed_point_threshold(1.0);
    let mut rng = trial_rng(23, 0);
    for _ in 0..10_000 {
        let w = rng.next_u64();
        assert!(!accept_word(w, t0));
        assert!(accept_word(w, t1));
    }
}
