//! Property test for the PR-4 invariant extended to the cluster path:
//! observability must never perturb a coordinator's answers. For random
//! solve-like requests, a scatter-gathered response with the trace sink
//! ON and a client-supplied `X-Request-Id` is byte-identical to the
//! same request with the sink OFF and no request id.
//!
//! The cluster (two in-process workers plus a coordinator) is started
//! once and reused across cases; the result cache is disabled so every
//! request recomputes — a cache hit would make the comparison vacuous.

use mpmb_serve::client::{call, call_ext};
use mpmb_serve::{Role, Server, ServerConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

const GRAPH_SPEC: &str = "dataset:abide:0.01:3";

struct Cluster {
    /// Held only to keep the worker/coordinator threads alive for the
    /// duration of the test process.
    _nodes: Vec<Server>,
    coord_addr: String,
}

fn uncached_cfg() -> ServerConfig {
    ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        threads: 2,
        queue: 32,
        cache_capacity: 0,
        ..ServerConfig::default()
    }
}

fn cluster() -> &'static Cluster {
    static CLUSTER: OnceLock<Cluster> = OnceLock::new();
    CLUSTER.get_or_init(|| {
        let mut nodes = Vec::new();
        let mut worker_addrs = Vec::new();
        for _ in 0..2 {
            let s = Server::start(ServerConfig {
                role: Role::Worker,
                ..uncached_cfg()
            })
            .expect("start worker");
            worker_addrs.push(s.addr.to_string());
            nodes.push(s);
        }
        let coord = Server::start(ServerConfig {
            role: Role::Coordinator,
            workers: worker_addrs,
            probe_interval_ms: 200,
            ..uncached_cfg()
        })
        .expect("start coordinator");
        let coord_addr = coord.addr.to_string();
        nodes.push(coord);

        let (status, body) = call(
            coord_addr.as_str(),
            "POST",
            "/v1/graphs",
            &format!("{{\"name\":\"g\",\"spec\":\"{GRAPH_SPEC}\"}}"),
        )
        .expect("register graph");
        assert_eq!(status, 200, "register failed: {body}");
        Cluster {
            _nodes: nodes,
            coord_addr,
        }
    })
}

fn trace_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mpmb-cluster-obs-prop-{}.jsonl",
        std::process::id()
    ))
}

fn arb_request() -> impl Strategy<Value = (String, String)> {
    (0usize..3, 50u64..400, any::<u64>()).prop_map(|(method, trials, seed)| match method {
        0 => (
            "/v1/solve".to_string(),
            format!(
                "{{\"graph\":\"g\",\"method\":\"os\",\"trials\":{trials},\"seed\":{seed},\"k\":2}}"
            ),
        ),
        1 => (
            "/v1/solve".to_string(),
            format!("{{\"graph\":\"g\",\"method\":\"mcvp\",\"trials\":{trials},\"seed\":{seed}}}"),
        ),
        _ => (
            "/v1/count".to_string(),
            format!("{{\"graph\":\"g\",\"trials\":{trials},\"seed\":{seed}}}"),
        ),
    })
}

proptest! {
    /// Sink off + anonymous request vs sink on + traced request: the
    /// scattered bodies must agree byte for byte.
    #[test]
    fn cluster_answers_ignore_observability(req in arb_request(), tag in any::<u64>()) {
        let (path, body) = req;
        let c = cluster();

        obs::set_sink_off();
        let (off_status, off_body) =
            call(c.coord_addr.as_str(), "POST", &path, &body).expect("obs-off request");

        obs::set_sink_file(trace_path()).expect("trace sink file");
        let rid = format!("obs-prop-{tag:016x}");
        let (on_status, headers, on_body) = call_ext(
            c.coord_addr.as_str(),
            "POST",
            &path,
            &body,
            &[("X-Request-Id", rid.as_str())],
        )
        .expect("obs-on request");
        obs::set_sink_off();

        prop_assert_eq!(off_status, on_status, "status drifted under tracing");
        prop_assert_eq!(&off_body, &on_body, "body drifted under tracing");
        // The traced request really ran under the supplied id.
        let echoed = headers
            .iter()
            .find(|(k, _)| k == "x-request-id")
            .map(|(_, v)| v.as_str());
        prop_assert_eq!(echoed, Some(rid.as_str()));
    }
}
