//! Paper-scale smoke tests, `#[ignore]`d by default (minutes + GBs).
//!
//! Run with `cargo test --release --test full_scale -- --ignored`.

use datasets::Dataset;
use mpmb::prelude::*;

#[test]
#[ignore = "full Table III sizes; run explicitly with --ignored"]
fn abide_full_scale_solves() {
    let g = Dataset::Abide.generate(1.0, 1);
    assert_eq!(g.num_edges(), 3_364);
    let d = OrderingSampling::new(OsConfig {
        trials: 20_000,
        seed: 1,
        ..Default::default()
    })
    .run(&g);
    assert!(!d.is_empty());
}

#[test]
#[ignore = "full Table III sizes; run explicitly with --ignored"]
fn movielens_full_scale_solves() {
    let g = Dataset::MovieLens.generate(1.0, 1);
    assert_eq!(g.num_edges(), 100_836);
    assert_eq!(g.num_left(), 610);
    assert_eq!(g.num_right(), 9_724);
    let result = OrderingListingSampling::new(OlsConfig {
        prep_trials: 100,
        seed: 1,
        estimator: EstimatorKind::Optimized { trials: 20_000 },
        ..Default::default()
    })
    .run(&g);
    assert!(result.mpmb().is_some());
}

#[test]
#[ignore = "full Table III sizes; run explicitly with --ignored"]
fn jester_full_scale_solves() {
    let g = Dataset::Jester.generate(1.0, 1);
    assert!(g.num_edges() > 3_000_000, "|E|={}", g.num_edges());
    assert_eq!(g.num_left(), 100);
    let result = OrderingListingSampling::new(OlsConfig {
        prep_trials: 100,
        seed: 1,
        estimator: EstimatorKind::Optimized { trials: 20_000 },
        ..Default::default()
    })
    .run(&g);
    assert!(result.mpmb().is_some());
}

#[test]
#[ignore = "full Table III sizes (~1.3 GB); run explicitly with --ignored"]
fn protein_full_scale_generates_and_prepares() {
    let g = Dataset::Protein.generate(1.0, 1);
    assert!(g.num_edges() > 39_000_000, "|E|={}", g.num_edges());
    // Preparing phase only (a full 20k-trial OS run takes many minutes).
    let candidates = OrderingListingSampling::new(OlsConfig {
        prep_trials: 20,
        seed: 1,
        ..Default::default()
    })
    .prepare(&g);
    assert!(!candidates.is_empty());
}

#[test]
#[ignore = "long-running statistical stress; run explicitly with --ignored"]
fn cross_solver_stress_on_many_random_graphs() {
    use rand::Rng;
    use rand::SeedableRng;
    // 50 random instances, all four estimates vs exact.
    for seed in 0..50u64 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                if rng.random::<f64>() < 0.6 {
                    let w = rng.random_range(1..=40) as f64 / 4.0;
                    let p = rng.random_range(1..=9) as f64 / 10.0;
                    b.add_edge(Left(u), Right(v), w, p).unwrap();
                }
            }
        }
        let g = b.build().unwrap();
        let Ok(exact) = mpmb_core::exact_distribution(
            &g,
            ExactConfig {
                max_uncertain_edges: 25,
            },
        ) else {
            continue;
        };
        if exact.is_empty() {
            continue;
        }
        let trials = 50_000;
        let os = OrderingSampling::new(OsConfig {
            trials,
            seed,
            ..Default::default()
        })
        .run(&g);
        let ols = OrderingListingSampling::new(OlsConfig {
            prep_trials: 300,
            seed,
            estimator: EstimatorKind::Optimized { trials },
            ..Default::default()
        })
        .run(&g);
        for (bf, &p) in exact.iter() {
            assert!((os.prob(bf) - p).abs() < 0.015, "seed {seed} os {bf}");
            assert!(
                (ols.distribution.prob(bf) - p).abs() < 0.015,
                "seed {seed} ols {bf}"
            );
        }
    }
}
