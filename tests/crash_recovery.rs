//! Kill -9 and restart: the whole point of durable checkpoints.
//!
//! Runs the real `mpmb serve` binary as a subprocess, interrupts a
//! solve so a resumable partial lands in the cache, waits for a cadence
//! checkpoint to capture it, then SIGKILLs the process — no drain, no
//! shutdown snapshot. A fresh process pointed at the same directory
//! must restore the registry and the partial, finish the solve without
//! re-running a single trial, and produce a byte-identical response to
//! an uninterrupted run.

use mpmb_serve::client::call;
use mpmb_serve::json::Json;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TRIALS: u64 = 30_000;
const GRAPH_FLAG: &str = "g=dataset:abide:0.01:3";

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpmb-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A running `mpmb serve` subprocess; killed on drop so a failing
/// assertion never leaks a daemon.
struct ServerProc {
    child: Child,
    addr: String,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns the binary and blocks until it reports its ephemeral address
/// on stderr. Stderr keeps draining in a background thread so the child
/// never stalls on a full pipe.
fn spawn_server(dir: &Path, timeout_ms: u64, checkpoint_every_ms: u64) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mpmb"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--queue",
            "16",
            "--timeout-ms",
            &timeout_ms.to_string(),
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every-ms",
            &checkpoint_every_ms.to_string(),
            "--graph",
            GRAPH_FLAG,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mpmb serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = std::io::BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read server stderr");
        assert!(n > 0, "server exited before announcing its address");
        if let Some(rest) = line.trim().strip_prefix("mpmb-serve listening on ") {
            break rest.to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                break;
            }
        }
    });
    ServerProc { child, addr }
}

fn metric_value(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing:\n{metrics_text}"))
}

fn fetch_metric(addr: &str, name: &str) -> u64 {
    let (status, text) = call(addr, "GET", "/metrics", "").expect("GET /metrics");
    assert_eq!(status, 200);
    metric_value(&text, name)
}

fn solve_body(seed: u64) -> String {
    format!(
        "{{\"graph\":\"g\",\"method\":\"os\",\"trials\":{TRIALS},\"seed\":{seed},\"threads\":2}}"
    )
}

/// Re-issues `body` until the solve completes, returning the 200 body.
fn solve_to_completion(addr: &str, body: &str) -> String {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        assert!(attempts <= 2_000, "solve never completed");
        let (status, resp) = call(addr, "POST", "/v1/solve", body).expect("solve");
        match status {
            503 => continue,
            200 => return resp,
            other => panic!("unexpected status {other}: {resp}"),
        }
    }
}

#[test]
fn sigkill_and_restart_resumes_from_the_checkpoint() {
    let dir = scratch_dir("crash-recovery");

    // Process 1: a tight deadline interrupts the solve; its partial is
    // cached and, on the 50 ms cadence, checkpointed to disk.
    let server = spawn_server(&dir, 40, 50);
    let (status, resp) = call(server.addr.as_str(), "POST", "/v1/solve", &solve_body(33))
        .expect("first solve attempt");
    assert_eq!(status, 503, "{resp}");
    let done1 = Json::parse(&resp)
        .unwrap()
        .get("trials_done")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(0 < done1 && done1 < TRIALS, "done1 {done1}");

    // Wait for a checkpoint written strictly after the partial was
    // cached — earlier cadence writes may predate it.
    let baseline = fetch_metric(&server.addr, "mpmb_checkpoint_written_total");
    let deadline = Instant::now() + Duration::from_secs(10);
    while fetch_metric(&server.addr, "mpmb_checkpoint_written_total") <= baseline {
        assert!(Instant::now() < deadline, "no checkpoint written");
        std::thread::sleep(Duration::from_millis(20));
    }

    // SIGKILL: no drain, no shutdown snapshot. Only the cadence write
    // survives.
    drop(server);

    // Process 2: restores registry + partial, resumes, and finishes
    // having executed only the remaining trials.
    let server = spawn_server(&dir, 40, 50);
    assert!(
        fetch_metric(&server.addr, "mpmb_checkpoint_restored_total") >= 1,
        "restart must restore the checkpointed partial"
    );
    let recovered = solve_to_completion(&server.addr, &solve_body(33));
    assert_eq!(
        Json::parse(&recovered)
            .unwrap()
            .get("trials_done")
            .and_then(Json::as_u64),
        Some(TRIALS)
    );
    assert_eq!(
        fetch_metric(&server.addr, "mpmb_trials_executed_total"),
        TRIALS - done1,
        "no trial may run twice across the crash"
    );
    drop(server);

    // Process 3: a clean room (fresh directory, no deadline) computes
    // the same request uninterrupted. The recovered answer must be
    // byte-identical.
    let clean_dir = scratch_dir("crash-recovery-clean");
    let server = spawn_server(&clean_dir, 0, 3_600_000);
    let (status, uninterrupted) =
        call(server.addr.as_str(), "POST", "/v1/solve", &solve_body(33)).expect("clean solve");
    assert_eq!(status, 200, "{uninterrupted}");
    assert_eq!(
        recovered, uninterrupted,
        "resumed-across-crash response must match an uninterrupted run byte-for-byte"
    );
    drop(server);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}
