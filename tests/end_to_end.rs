//! Cross-crate integration: dataset stand-ins → solvers → rankings.

use datasets::Dataset;
use mpmb::prelude::*;
use mpmb_core::{Cancel, Distribution, Executor, OsTrials};

/// Small-scale instantiations that still contain butterflies.
fn small(dataset: Dataset) -> UncertainBipartiteGraph {
    let scale = match dataset {
        Dataset::Abide => 0.3,
        Dataset::MovieLens => 0.05,
        Dataset::Jester => 0.005,
        Dataset::Protein => 0.001,
    };
    dataset.generate(scale, 404)
}

#[test]
fn os_finds_butterflies_on_every_dataset() {
    for dataset in Dataset::all() {
        let g = small(dataset);
        let d = OrderingSampling::new(OsConfig {
            trials: 400,
            seed: 1,
            ..Default::default()
        })
        .run(&g);
        assert!(
            !d.is_empty(),
            "{}: no butterflies found at test scale",
            dataset.name()
        );
        let (b, p) = d.mpmb().unwrap();
        assert!(p > 0.0 && p <= 1.0);
        assert!(b.weight(&g).is_some(), "MPMB must be a backbone butterfly");
    }
}

#[test]
fn ols_and_os_agree_on_the_mpmb() {
    // With enough trials both methods converge on the same argmax for
    // datasets with a clear leader.
    let g = small(Dataset::Abide);
    let os = OrderingSampling::new(OsConfig {
        trials: 12_000,
        seed: 2,
        ..Default::default()
    })
    .run(&g);
    let ols = OrderingListingSampling::new(OlsConfig {
        prep_trials: 200,
        seed: 2,
        estimator: EstimatorKind::Optimized { trials: 12_000 },
        ..Default::default()
    })
    .run(&g);
    let (b_os, p_os) = os.mpmb().unwrap();
    let (b_ols, p_ols) = ols.distribution.mpmb().unwrap();
    // Probabilities agree even if close-running butterflies swap ranks.
    assert!(
        (p_os - p_ols).abs() < 0.05,
        "top probabilities diverged: {p_os} vs {p_ols}"
    );
    assert!(
        (os.prob(&b_ols) - p_ols).abs() < 0.05
            && (ols.distribution.prob(&b_os) - p_os).abs() < 0.05,
        "cross-method estimates diverged for {b_os} / {b_ols}"
    );
}

#[test]
fn parallel_executor_is_bit_identical_across_thread_counts() {
    let g = small(Dataset::MovieLens);
    let cfg = OsConfig {
        trials: 600,
        seed: 3,
        ..Default::default()
    };
    let reference = OrderingSampling::new(cfg).run(&g);
    for threads in [1, 2, 5, 11] {
        let par = Executor::new(threads)
            .run(&OsTrials::new(&g, &cfg), cfg.trials, &Cancel::never())
            .acc
            .into_distribution();
        assert_eq!(reference.max_abs_diff(&par), 0.0, "threads={threads}");
    }
}

#[test]
fn graph_io_roundtrip_preserves_solver_output() {
    let g = small(Dataset::Jester);
    let mut buf = Vec::new();
    bigraph::io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = bigraph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
    let cfg = OsConfig {
        trials: 300,
        seed: 4,
        ..Default::default()
    };
    let d1 = OrderingSampling::new(cfg).run(&g);
    let d2 = OrderingSampling::new(cfg).run(&g2);
    assert_eq!(d1.max_abs_diff(&d2), 0.0, "round-tripped graph diverged");
}

#[test]
fn top_k_ranking_is_consistent_with_probabilities() {
    let g = small(Dataset::Abide);
    let result = OrderingListingSampling::new(OlsConfig {
        prep_trials: 150,
        seed: 5,
        estimator: EstimatorKind::Optimized { trials: 5_000 },
        ..Default::default()
    })
    .run(&g);
    let top = result.top_k(10);
    assert!(!top.is_empty());
    for w in top.windows(2) {
        assert!(w[0].1 >= w[1].1, "ranking not sorted");
    }
    for (b, p) in &top {
        assert_eq!(result.distribution.prob(b), *p);
    }
}

#[test]
fn induced_scaling_preserves_solver_soundness() {
    let g = small(Dataset::MovieLens);
    for frac in [0.25, 0.5, 0.75] {
        let sub = datasets::scale::induced_vertex_sample(&g, frac, 6);
        let d: Distribution = OrderingSampling::new(OsConfig {
            trials: 200,
            seed: 7,
            ..Default::default()
        })
        .run(&sub);
        // Every reported butterfly must exist in the subgraph's backbone.
        for (b, _) in d.iter() {
            assert!(b.edges(&sub).is_some(), "{b} not in induced backbone");
        }
    }
}
