//! End-to-end tests of the `mpmb-serve` daemon: concurrency with
//! bit-for-bit result fidelity, cache hits observed through `/metrics`,
//! deadline 503s, and SIGTERM draining.
//!
//! Servers bind ephemeral ports (`127.0.0.1:0`). The SIGTERM test
//! latches a process-global flag that every server instance observes,
//! so all tests serialize on one mutex and clear the latch up front.

use mpmb_serve::client::{call, call_ext};
use mpmb_serve::json::Json;
use mpmb_serve::{signal, Server, ServerConfig};
use std::sync::{Barrier, Mutex, OnceLock};

/// Serializes the tests: the SIGTERM latch is process-global.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let m = GUARD.get_or_init(|| Mutex::new(()));
    let guard = m.lock().unwrap_or_else(|e| e.into_inner());
    signal::reset();
    guard
}

fn start(cfg: ServerConfig) -> (Server, String) {
    let server = Server::start(cfg).expect("bind ephemeral port");
    let addr = server.addr.to_string();
    (server, addr)
}

fn default_cfg() -> ServerConfig {
    ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        threads: 8,
        queue: 64,
        timeout_ms: 0,
        cache_capacity: 64,
        max_solver_threads: 0,
    }
}

/// The graph every test registers: tiny, deterministic, non-trivial.
const GRAPH_SPEC: &str = "dataset:abide:0.01:3";

fn register_graph(addr: &str) {
    let (status, body) = call(
        addr,
        "POST",
        "/v1/graphs",
        &format!("{{\"name\":\"g\",\"spec\":\"{GRAPH_SPEC}\"}}"),
    )
    .expect("register graph");
    assert_eq!(status, 200, "register failed: {body}");
}

fn reference_graph() -> bigraph::UncertainBipartiteGraph {
    datasets::Dataset::Abide.generate(0.01, 3)
}

fn metric_value(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing:\n{metrics_text}"))
}

#[test]
fn concurrent_solves_match_direct_calls_bit_for_bit() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);
    let g = reference_graph();

    // 32 clients fire simultaneously: 8 are in service, the rest sit in
    // the accept queue — all 32 in flight at once.
    const CLIENTS: u64 = 32;
    const TRIALS: u64 = 400;
    let barrier = Barrier::new(CLIENTS as usize);
    let responses: Vec<(u64, u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let (barrier, addr) = (&barrier, addr.as_str());
                scope.spawn(move || {
                    let seed = 1_000 + i;
                    let body = format!(
                        "{{\"graph\":\"g\",\"method\":\"os\",\"trials\":{TRIALS},\"seed\":{seed},\"k\":3}}"
                    );
                    barrier.wait();
                    let (status, resp) = call(addr, "POST", "/v1/solve", &body).expect("solve");
                    (seed, status, resp)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (seed, status, resp) in responses {
        assert_eq!(status, 200, "seed {seed}: {resp}");
        let json = Json::parse(&resp).expect("valid JSON");
        assert_eq!(json.get("trials_done").and_then(Json::as_u64), Some(TRIALS));

        // The direct library call with the same parameters.
        let cfg = mpmb_core::OsConfig {
            trials: TRIALS,
            seed,
            ..Default::default()
        };
        let direct = mpmb_core::OrderingSampling::new(cfg).run(&g);
        assert_eq!(
            json.get("support").and_then(Json::as_u64),
            Some(direct.len() as u64),
            "seed {seed}"
        );
        let (db, dp) = direct.mpmb().expect("non-empty distribution");
        let mpmb = json.get("mpmb").expect("mpmb field");
        // Rust renders f64 shortest-roundtrip, so parse-back equality is
        // bit equality.
        let served_p = mpmb.get("prob").and_then(Json::as_f64).unwrap();
        assert_eq!(served_p.to_bits(), dp.to_bits(), "seed {seed}");
        let ids: Vec<u64> = mpmb
            .get("butterfly")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(
            ids,
            vec![
                db.u1.0 as u64,
                db.u2.0 as u64,
                db.v1.0 as u64,
                db.v2.0 as u64
            ],
            "seed {seed}"
        );
        // Top-3 probabilities match bit-for-bit too.
        let top = json.get("top").and_then(Json::as_arr).unwrap();
        let direct_top = direct.top_k(3);
        assert_eq!(top.len(), direct_top.len());
        for (served, (_, p)) in top.iter().zip(&direct_top) {
            let sp = served.get("prob").and_then(Json::as_f64).unwrap();
            assert_eq!(sp.to_bits(), p.to_bits(), "seed {seed}");
        }
    }

    // The query endpoint matches estimate_prob_of bit-for-bit as well.
    let b = reference_graph();
    let some_bf = mpmb_core::enumerate_backbone_butterflies(&b)
        .into_iter()
        .next()
        .expect("graph has butterflies");
    let body = format!(
        "{{\"graph\":\"g\",\"butterfly\":[{},{},{},{}],\"trials\":500,\"seed\":7}}",
        some_bf.u1.0, some_bf.u2.0, some_bf.v1.0, some_bf.v2.0
    );
    let (status, resp) = call(addr.as_str(), "POST", "/v1/query", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    let direct = mpmb_core::estimate_prob_of(&g, &some_bf, 500, 7).unwrap();
    assert_eq!(
        json.get("prob").and_then(Json::as_f64).unwrap().to_bits(),
        direct.prob.to_bits()
    );

    server.begin_shutdown();
    server.join();
}

#[test]
fn repeated_request_hits_cache_observed_via_metrics() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":300,\"seed\":42}";
    let (s1, r1) = call(addr.as_str(), "POST", "/v1/solve", body).unwrap();
    let (s2, r2) = call(addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(r1, r2, "cached replay must be byte-identical");

    let (ms, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(ms, 200);
    assert_eq!(metric_value(&metrics, "mpmb_cache_hits_total"), 1);
    assert_eq!(metric_value(&metrics, "mpmb_cache_misses_total"), 1);
    // Only the miss executed trials.
    assert_eq!(metric_value(&metrics, "mpmb_trials_executed_total"), 300);

    // A different seed is a different key: no new hit.
    let body2 = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":300,\"seed\":43}";
    let (s3, _) = call(addr.as_str(), "POST", "/v1/solve", body2).unwrap();
    assert_eq!(s3, 200);
    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(metric_value(&metrics, "mpmb_cache_hits_total"), 1);
    assert_eq!(metric_value(&metrics, "mpmb_cache_misses_total"), 2);

    server.begin_shutdown();
    server.join();
}

#[test]
fn over_deadline_solve_returns_503_and_server_survives() {
    let _guard = lock();
    let cfg = ServerConfig {
        timeout_ms: 50,
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    register_graph(&addr);

    // Hundreds of millions of trials cannot finish in 50 ms; the workers
    // notice the deadline and return a partial count.
    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":200000000,\"seed\":1,\"threads\":2}";
    let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!(status, 503, "{resp}");
    let json = Json::parse(&resp).unwrap();
    assert_eq!(
        json.get("error").and_then(Json::as_str),
        Some("deadline exceeded")
    );
    let done = json.get("trials_done").and_then(Json::as_u64).unwrap();
    assert!(done < 200_000_000, "partial count expected, got {done}");
    assert_eq!(
        json.get("trials_requested").and_then(Json::as_u64),
        Some(200_000_000)
    );

    // The server is still healthy and still answers normal requests.
    let (hs, hb) = call(addr.as_str(), "GET", "/healthz", "").unwrap();
    assert_eq!(hs, 200, "{hb}");
    let (ss, _) = call(
        addr.as_str(),
        "POST",
        "/v1/solve",
        "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"seed\":2}",
    )
    .unwrap();
    assert_eq!(ss, 200);
    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(metric_value(&metrics, "mpmb_deadline_exceeded_total"), 1);

    server.begin_shutdown();
    server.join();
}

#[test]
fn timed_out_solve_is_refined_across_requests_to_the_exact_answer() {
    let _guard = lock();
    let cfg = ServerConfig {
        timeout_ms: 40,
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    register_graph(&addr);

    // Too many trials for one 40 ms deadline: the first request 503s and
    // caches its partial; every repeat resumes it with a fresh deadline
    // until the run completes. Progress must be monotone and no trial
    // may ever run twice.
    const TRIALS: u64 = 30_000;
    let body = format!(
        "{{\"graph\":\"g\",\"method\":\"os\",\"trials\":{TRIALS},\"seed\":11,\"threads\":2}}"
    );
    let mut last_done = 0u64;
    let mut attempts = 0u32;
    let final_resp = loop {
        attempts += 1;
        assert!(
            attempts <= 2_000,
            "solve never completed; stuck at {last_done}/{TRIALS}"
        );
        let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", &body).unwrap();
        let json = Json::parse(&resp).unwrap();
        let done = json.get("trials_done").and_then(Json::as_u64).unwrap();
        assert!(
            done >= last_done,
            "progress went backwards: {done} < {last_done}"
        );
        last_done = done;
        match status {
            503 => continue,
            200 => break resp,
            other => panic!("unexpected status {other}: {resp}"),
        }
    };
    assert!(
        attempts > 1,
        "deadline never fired; timeout_ms too generous"
    );

    // The refined answer equals one uninterrupted library run, bitwise.
    let json = Json::parse(&final_resp).unwrap();
    assert_eq!(json.get("trials_done").and_then(Json::as_u64), Some(TRIALS));
    let g = reference_graph();
    let direct = mpmb_core::OrderingSampling::new(mpmb_core::OsConfig {
        trials: TRIALS,
        seed: 11,
        ..Default::default()
    })
    .run(&g);
    let (_, dp) = direct.mpmb().expect("non-empty distribution");
    let served_p = json
        .get("mpmb")
        .and_then(|m| m.get("prob"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(
        served_p.to_bits(),
        dp.to_bits(),
        "refined answer must match the uninterrupted run bit-for-bit"
    );

    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert!(metric_value(&metrics, "mpmb_cache_refined_total") >= 1);
    assert!(metric_value(&metrics, "mpmb_deadline_exceeded_total") >= 1);
    assert_eq!(
        metric_value(&metrics, "mpmb_trials_executed_total"),
        TRIALS,
        "resumes must never re-execute a trial"
    );

    // A repeat is now a pure cache hit, byte-identical.
    let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(resp, final_resp);

    server.begin_shutdown();
    server.join();
}

#[test]
fn sigterm_drains_in_flight_request_then_exits() {
    let _guard = lock();
    signal::install();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    // A solve sized to run for a couple of seconds on one core.
    let slow = std::thread::spawn({
        let addr = addr.clone();
        move || {
            call(
                addr.as_str(),
                "POST",
                "/v1/solve",
                "{\"graph\":\"g\",\"method\":\"os\",\"trials\":3000000,\"seed\":9}",
            )
        }
    });
    // Let the request reach a worker, then deliver a real SIGTERM.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let status = std::process::Command::new("kill")
        .args(["-TERM", &std::process::id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success());

    // The in-flight request completes with a full answer…
    let (status, resp) = slow.join().unwrap().expect("in-flight request answered");
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    assert_eq!(
        json.get("trials_done").and_then(Json::as_u64),
        Some(3_000_000)
    );
    // …and the pool drains: join() returns instead of hanging.
    server.join();

    // The listener is gone — new connections are refused.
    assert!(std::net::TcpStream::connect(addr.as_str()).is_err());
    signal::reset();
}

#[test]
fn threads_above_cap_get_400_with_cap_in_body() {
    let _guard = lock();
    let cfg = ServerConfig {
        max_solver_threads: 4,
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    register_graph(&addr);

    // The cap is advertised in the graph listing.
    let (status, resp) = call(addr.as_str(), "GET", "/v1/graphs", "").unwrap();
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    assert_eq!(json.get("max_threads").and_then(Json::as_u64), Some(4));

    // At the cap: accepted, for every endpoint that takes `threads`.
    for (path, body) in [
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"ols\",\"trials\":200,\"prep\":20,\"threads\":4}",
        ),
        (
            "/v1/count",
            "{\"graph\":\"g\",\"trials\":100,\"threads\":4}",
        ),
    ] {
        let (status, resp) = call(addr.as_str(), "POST", path, body).unwrap();
        assert_eq!(status, 200, "{path}: {resp}");
    }

    // Above the cap (or zero): rejected with the cap in the error body.
    for (path, body, requested) in [
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"threads\":5}",
            Some(5),
        ),
        (
            "/v1/topk",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"threads\":1000000}",
            Some(1_000_000),
        ),
        (
            "/v1/count",
            "{\"graph\":\"g\",\"trials\":100,\"threads\":5}",
            Some(5),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"threads\":0}",
            None,
        ),
    ] {
        let (status, resp) = call(addr.as_str(), "POST", path, body).unwrap();
        assert_eq!(status, 400, "{path} {body}: {resp}");
        let json = Json::parse(&resp).unwrap();
        assert_eq!(json.get("max_threads").and_then(Json::as_u64), Some(4));
        assert_eq!(json.get("requested").and_then(Json::as_u64), requested);
    }

    server.begin_shutdown();
    server.join();
}

#[test]
fn default_cap_is_worker_pool_size_and_parallel_results_match() {
    let _guard = lock();
    // max_solver_threads: 0 resolves to the pool size (8 here).
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    let (status, resp) = call(addr.as_str(), "GET", "/v1/graphs", "").unwrap();
    assert_eq!(status, 200);
    let json = Json::parse(&resp).unwrap();
    assert_eq!(json.get("max_threads").and_then(Json::as_u64), Some(8));

    // Same request at 1 and 8 threads: byte-identical responses (the
    // cache key ignores threads precisely because of this).
    let r1 = call(
        addr.as_str(),
        "POST",
        "/v1/solve",
        "{\"graph\":\"g\",\"method\":\"mcvp\",\"trials\":301,\"seed\":6,\"threads\":1}",
    )
    .unwrap();
    assert_eq!(r1.0, 200, "{}", r1.1);
    // Evict nothing — but bypass the cache by restarting it: simplest is
    // to compare against the direct library call instead.
    let g = reference_graph();
    let mcvp_cfg = mpmb_core::McVpConfig {
        trials: 301,
        seed: 6,
    };
    let direct = mpmb_core::Executor::new(8)
        .run(
            &mpmb_core::McVpTrials::new(&g, &mcvp_cfg),
            301,
            &mpmb_core::Cancel::never(),
        )
        .acc
        .into_distribution();
    let json = Json::parse(&r1.1).unwrap();
    let (_, dp) = direct.mpmb().expect("non-empty");
    let served_p = json
        .get("mpmb")
        .and_then(|m| m.get("prob"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(served_p.to_bits(), dp.to_bits());

    server.begin_shutdown();
    server.join();
}

#[test]
fn unknown_graph_and_bad_requests_are_4xx() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    let cases = [
        (
            "POST",
            "/v1/solve",
            "{\"graph\":\"nope\",\"trials\":10}",
            404,
        ),
        ("POST", "/v1/solve", "not json", 400),
        (
            "POST",
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"bogus\"}",
            400,
        ),
        ("POST", "/v1/solve", "{\"graph\":\"g\",\"trials\":0}", 400),
        ("GET", "/v1/nope", "", 404),
        ("DELETE", "/v1/solve", "", 405),
        (
            "POST",
            "/v1/query",
            "{\"graph\":\"g\",\"butterfly\":[1,1,2,3]}",
            400,
        ),
        (
            "POST",
            "/v1/graphs",
            "{\"name\":\"g\",\"spec\":\"dataset:abide:0.01\"}",
            409,
        ),
        (
            "POST",
            "/v1/graphs",
            "{\"name\":\"x\",\"spec\":\"dataset:zzz\"}",
            400,
        ),
    ];
    for (method, path, body, expected) in cases {
        let (status, resp) = call(addr.as_str(), method, path, body).unwrap();
        assert_eq!(status, expected, "{method} {path} {body}: {resp}");
    }

    server.begin_shutdown();
    server.join();
}

#[test]
fn request_ids_are_echoed_and_minted() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    // A client-supplied X-Request-Id is honored and echoed verbatim.
    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"seed\":42}";
    let (status, headers, _) = call_ext(
        addr.as_str(),
        "POST",
        "/v1/solve",
        body,
        &[("X-Request-Id", "trace-test-42")],
    )
    .unwrap();
    assert_eq!(status, 200);
    let echoed = headers
        .iter()
        .find(|(k, _)| k == "x-request-id")
        .map(|(_, v)| v.as_str());
    assert_eq!(echoed, Some("trace-test-42"));

    // Without one, the server mints a non-empty id.
    let (status, headers, _) = call_ext(addr.as_str(), "GET", "/healthz", "", &[]).unwrap();
    assert_eq!(status, 200);
    let minted = headers
        .iter()
        .find(|(k, _)| k == "x-request-id")
        .map(|(_, v)| v.as_str())
        .expect("server mints an id when none is supplied");
    assert!(!minted.is_empty());

    server.begin_shutdown();
    server.join();
}

#[test]
fn debug_trace_records_solve_summaries_with_phases() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":200,\"seed\":9}";
    let (status, _, _) = call_ext(
        addr.as_str(),
        "POST",
        "/v1/solve",
        body,
        &[("X-Request-Id", "debug-trace-probe")],
    )
    .unwrap();
    assert_eq!(status, 200);

    let (status, resp) = call(addr.as_str(), "GET", "/debug/trace", "").unwrap();
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    assert!(json.get("count").and_then(Json::as_u64).unwrap() >= 1);
    let traces = json.get("traces").and_then(Json::as_arr).unwrap();
    let entry = traces
        .iter()
        .find(|t| t.get("trace_id").and_then(Json::as_str) == Some("debug-trace-probe"))
        .expect("solve summary retained in the ring");
    assert_eq!(entry.get("graph").and_then(Json::as_str), Some("g"));
    assert_eq!(
        entry.get("endpoint").and_then(Json::as_str),
        Some("/v1/solve")
    );
    assert_eq!(entry.get("status").and_then(Json::as_u64), Some(200));
    // The solve ran under a request-scoped profile: phase timings exist.
    match entry.get("phases").expect("phases object") {
        Json::Obj(phases) => assert!(
            !phases.is_empty(),
            "solve summary should carry at least one phase"
        ),
        other => panic!("phases should be an object, got {other:?}"),
    }

    // The graph filter matches and excludes.
    let (status, resp) = call(addr.as_str(), "GET", "/debug/trace?graph=g", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        Json::parse(&resp)
            .unwrap()
            .get("count")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    let (status, resp) = call(addr.as_str(), "GET", "/debug/trace?graph=absent", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        Json::parse(&resp)
            .unwrap()
            .get("count")
            .and_then(Json::as_u64),
        Some(0)
    );

    server.begin_shutdown();
    server.join();
}
