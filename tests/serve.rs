//! End-to-end tests of the `mpmb-serve` daemon: concurrency with
//! bit-for-bit result fidelity, cache hits observed through `/metrics`,
//! deadline 503s, and SIGTERM draining.
//!
//! Servers bind ephemeral ports (`127.0.0.1:0`). The SIGTERM test
//! latches a process-global flag that every server instance observes,
//! so all tests serialize on one mutex and clear the latch up front.

use mpmb_serve::client::{call, call_ext};
use mpmb_serve::json::Json;
use mpmb_serve::{signal, LoadgenConfig, RetryPolicy, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Barrier, Mutex, OnceLock};
use std::time::Duration;

/// Serializes the tests: the SIGTERM latch is process-global.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let m = GUARD.get_or_init(|| Mutex::new(()));
    let guard = m.lock().unwrap_or_else(|e| e.into_inner());
    signal::reset();
    guard
}

fn start(cfg: ServerConfig) -> (Server, String) {
    let server = Server::start(cfg).expect("bind ephemeral port");
    let addr = server.addr.to_string();
    (server, addr)
}

fn default_cfg() -> ServerConfig {
    ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        threads: 8,
        queue: 64,
        timeout_ms: 0,
        cache_capacity: 64,
        max_solver_threads: 0,
        ..ServerConfig::default()
    }
}

/// The graph every test registers: tiny, deterministic, non-trivial.
const GRAPH_SPEC: &str = "dataset:abide:0.01:3";

fn register_graph(addr: &str) {
    let (status, body) = call(
        addr,
        "POST",
        "/v1/graphs",
        &format!("{{\"name\":\"g\",\"spec\":\"{GRAPH_SPEC}\"}}"),
    )
    .expect("register graph");
    assert_eq!(status, 200, "register failed: {body}");
}

fn reference_graph() -> bigraph::UncertainBipartiteGraph {
    datasets::Dataset::Abide.generate(0.01, 3)
}

fn metric_value(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing:\n{metrics_text}"))
}

#[test]
fn concurrent_solves_match_direct_calls_bit_for_bit() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);
    let g = reference_graph();

    // 32 clients fire simultaneously: 8 are in service, the rest sit in
    // the accept queue — all 32 in flight at once.
    const CLIENTS: u64 = 32;
    const TRIALS: u64 = 400;
    let barrier = Barrier::new(CLIENTS as usize);
    let responses: Vec<(u64, u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let (barrier, addr) = (&barrier, addr.as_str());
                scope.spawn(move || {
                    let seed = 1_000 + i;
                    let body = format!(
                        "{{\"graph\":\"g\",\"method\":\"os\",\"trials\":{TRIALS},\"seed\":{seed},\"k\":3}}"
                    );
                    barrier.wait();
                    let (status, resp) = call(addr, "POST", "/v1/solve", &body).expect("solve");
                    (seed, status, resp)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (seed, status, resp) in responses {
        assert_eq!(status, 200, "seed {seed}: {resp}");
        let json = Json::parse(&resp).expect("valid JSON");
        assert_eq!(json.get("trials_done").and_then(Json::as_u64), Some(TRIALS));

        // The direct library call with the same parameters.
        let cfg = mpmb_core::OsConfig {
            trials: TRIALS,
            seed,
            ..Default::default()
        };
        let direct = mpmb_core::OrderingSampling::new(cfg).run(&g);
        assert_eq!(
            json.get("support").and_then(Json::as_u64),
            Some(direct.len() as u64),
            "seed {seed}"
        );
        let (db, dp) = direct.mpmb().expect("non-empty distribution");
        let mpmb = json.get("mpmb").expect("mpmb field");
        // Rust renders f64 shortest-roundtrip, so parse-back equality is
        // bit equality.
        let served_p = mpmb.get("prob").and_then(Json::as_f64).unwrap();
        assert_eq!(served_p.to_bits(), dp.to_bits(), "seed {seed}");
        let ids: Vec<u64> = mpmb
            .get("butterfly")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(
            ids,
            vec![
                db.u1.0 as u64,
                db.u2.0 as u64,
                db.v1.0 as u64,
                db.v2.0 as u64
            ],
            "seed {seed}"
        );
        // Top-3 probabilities match bit-for-bit too.
        let top = json.get("top").and_then(Json::as_arr).unwrap();
        let direct_top = direct.top_k(3);
        assert_eq!(top.len(), direct_top.len());
        for (served, (_, p)) in top.iter().zip(&direct_top) {
            let sp = served.get("prob").and_then(Json::as_f64).unwrap();
            assert_eq!(sp.to_bits(), p.to_bits(), "seed {seed}");
        }
    }

    // The query endpoint matches estimate_prob_of bit-for-bit as well.
    let b = reference_graph();
    let some_bf = mpmb_core::enumerate_backbone_butterflies(&b)
        .into_iter()
        .next()
        .expect("graph has butterflies");
    let body = format!(
        "{{\"graph\":\"g\",\"butterfly\":[{},{},{},{}],\"trials\":500,\"seed\":7}}",
        some_bf.u1.0, some_bf.u2.0, some_bf.v1.0, some_bf.v2.0
    );
    let (status, resp) = call(addr.as_str(), "POST", "/v1/query", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    let direct = mpmb_core::estimate_prob_of(&g, &some_bf, 500, 7).unwrap();
    assert_eq!(
        json.get("prob").and_then(Json::as_f64).unwrap().to_bits(),
        direct.prob.to_bits()
    );

    server.begin_shutdown();
    server.join();
}

#[test]
fn repeated_request_hits_cache_observed_via_metrics() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":300,\"seed\":42}";
    let (s1, r1) = call(addr.as_str(), "POST", "/v1/solve", body).unwrap();
    let (s2, r2) = call(addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(r1, r2, "cached replay must be byte-identical");

    let (ms, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(ms, 200);
    assert_eq!(metric_value(&metrics, "mpmb_cache_hits_total"), 1);
    assert_eq!(metric_value(&metrics, "mpmb_cache_misses_total"), 1);
    // Only the miss executed trials.
    assert_eq!(metric_value(&metrics, "mpmb_trials_executed_total"), 300);

    // A different seed is a different key: no new hit.
    let body2 = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":300,\"seed\":43}";
    let (s3, _) = call(addr.as_str(), "POST", "/v1/solve", body2).unwrap();
    assert_eq!(s3, 200);
    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(metric_value(&metrics, "mpmb_cache_hits_total"), 1);
    assert_eq!(metric_value(&metrics, "mpmb_cache_misses_total"), 2);

    server.begin_shutdown();
    server.join();
}

#[test]
fn over_deadline_solve_returns_503_and_server_survives() {
    let _guard = lock();
    let cfg = ServerConfig {
        timeout_ms: 50,
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    register_graph(&addr);

    // Hundreds of millions of trials cannot finish in 50 ms; the workers
    // notice the deadline and return a partial count.
    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":200000000,\"seed\":1,\"threads\":2}";
    let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!(status, 503, "{resp}");
    let json = Json::parse(&resp).unwrap();
    assert_eq!(
        json.get("error").and_then(Json::as_str),
        Some("deadline exceeded")
    );
    let done = json.get("trials_done").and_then(Json::as_u64).unwrap();
    assert!(done < 200_000_000, "partial count expected, got {done}");
    assert_eq!(
        json.get("trials_requested").and_then(Json::as_u64),
        Some(200_000_000)
    );

    // The server is still healthy and still answers normal requests.
    let (hs, hb) = call(addr.as_str(), "GET", "/healthz", "").unwrap();
    assert_eq!(hs, 200, "{hb}");
    let (ss, _) = call(
        addr.as_str(),
        "POST",
        "/v1/solve",
        "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"seed\":2}",
    )
    .unwrap();
    assert_eq!(ss, 200);
    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(metric_value(&metrics, "mpmb_deadline_exceeded_total"), 1);

    server.begin_shutdown();
    server.join();
}

#[test]
fn timed_out_solve_is_refined_across_requests_to_the_exact_answer() {
    let _guard = lock();
    let cfg = ServerConfig {
        timeout_ms: 40,
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    register_graph(&addr);

    // Too many trials for one 40 ms deadline: the first request 503s and
    // caches its partial; every repeat resumes it with a fresh deadline
    // until the run completes. Progress must be monotone and no trial
    // may ever run twice.
    const TRIALS: u64 = 30_000;
    let body = format!(
        "{{\"graph\":\"g\",\"method\":\"os\",\"trials\":{TRIALS},\"seed\":11,\"threads\":2}}"
    );
    let mut last_done = 0u64;
    let mut attempts = 0u32;
    let final_resp = loop {
        attempts += 1;
        assert!(
            attempts <= 2_000,
            "solve never completed; stuck at {last_done}/{TRIALS}"
        );
        let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", &body).unwrap();
        let json = Json::parse(&resp).unwrap();
        let done = json.get("trials_done").and_then(Json::as_u64).unwrap();
        assert!(
            done >= last_done,
            "progress went backwards: {done} < {last_done}"
        );
        last_done = done;
        match status {
            503 => continue,
            200 => break resp,
            other => panic!("unexpected status {other}: {resp}"),
        }
    };
    assert!(
        attempts > 1,
        "deadline never fired; timeout_ms too generous"
    );

    // The refined answer equals one uninterrupted library run, bitwise.
    let json = Json::parse(&final_resp).unwrap();
    assert_eq!(json.get("trials_done").and_then(Json::as_u64), Some(TRIALS));
    let g = reference_graph();
    let direct = mpmb_core::OrderingSampling::new(mpmb_core::OsConfig {
        trials: TRIALS,
        seed: 11,
        ..Default::default()
    })
    .run(&g);
    let (_, dp) = direct.mpmb().expect("non-empty distribution");
    let served_p = json
        .get("mpmb")
        .and_then(|m| m.get("prob"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(
        served_p.to_bits(),
        dp.to_bits(),
        "refined answer must match the uninterrupted run bit-for-bit"
    );

    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert!(metric_value(&metrics, "mpmb_cache_refined_total") >= 1);
    assert!(metric_value(&metrics, "mpmb_deadline_exceeded_total") >= 1);
    assert_eq!(
        metric_value(&metrics, "mpmb_trials_executed_total"),
        TRIALS,
        "resumes must never re-execute a trial"
    );

    // A repeat is now a pure cache hit, byte-identical.
    let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(resp, final_resp);

    server.begin_shutdown();
    server.join();
}

#[test]
fn fast_tier_answers_within_a_deadline_that_503s_os_and_escalates_to_exact() {
    let _guard = lock();
    // Container-backed graph: the fast tier has to work against the
    // mmap-served storage path, not just in-memory registrations.
    let dir = scratch_dir("fast-tier");
    let container = dir.join("g.ubgc");
    bigraph::write_container_path(&reference_graph(), &container).expect("write container");
    let cfg = ServerConfig {
        timeout_ms: 80,
        fast_escalate: true,
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    let (status, body) = call(
        addr.as_str(),
        "POST",
        "/v1/graphs",
        &format!("{{\"name\":\"g\",\"path\":\"{}\"}}", container.display()),
    )
    .unwrap();
    assert_eq!(status, 200, "container register failed: {body}");

    // The exact tier cannot finish this budget inside one 80 ms
    // deadline — its first attempt 503s with a cached partial.
    const TRIALS: u64 = 30_000;
    let os_body = format!("{{\"graph\":\"g\",\"method\":\"os\",\"trials\":{TRIALS},\"seed\":7}}");
    let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", &os_body).unwrap();
    assert_eq!(status, 503, "os should blow the deadline: {resp}");

    // The fast tier answers the same trial budget within the same
    // deadline, and its CI covers the closed-form expected count. The
    // tiny epsilon guarantees the certified error misses the target,
    // so the answer escalates: the cached os partial advances with the
    // request's remaining deadline.
    let fast_body = format!(
        "{{\"graph\":\"g\",\"method\":\"fast\",\"trials\":{TRIALS},\"seed\":7,\"epsilon\":0.0001}}"
    );
    let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", &fast_body).unwrap();
    assert_eq!(
        status, 200,
        "fast should answer within the deadline: {resp}"
    );
    let json = Json::parse(&resp).unwrap();
    let exact = bigraph::expected::expected_butterfly_count(&reference_graph());
    let lo = json.get("ci_low").and_then(Json::as_f64).unwrap();
    let hi = json.get("ci_high").and_then(Json::as_f64).unwrap();
    assert!(
        lo <= exact && exact <= hi,
        "CI [{lo}, {hi}] misses the exact count {exact}"
    );
    let rel = json.get("relative_error").and_then(Json::as_f64).unwrap();
    assert!(rel.is_finite(), "relative_error must be JSON-finite: {rel}");
    assert!(
        matches!(json.get("escalated"), Some(Json::Bool(true))),
        "{resp}"
    );

    // A fast repeat is a pure cache hit, byte-identical.
    let (status, replay) = call(addr.as_str(), "POST", "/v1/solve", &fast_body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(replay, resp);

    // method=os retries refine the escalation-advanced partial to
    // completion. The final body must match an uninterrupted library
    // run bit-for-bit — escalation changed *when* trials ran, never
    // what they computed.
    let mut attempts = 0u32;
    let final_os = loop {
        attempts += 1;
        assert!(attempts <= 2_000, "os refinement never completed");
        let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", &os_body).unwrap();
        match status {
            503 => continue,
            200 => break resp,
            other => panic!("unexpected status {other}: {resp}"),
        }
    };
    let json = Json::parse(&final_os).unwrap();
    assert_eq!(json.get("trials_done").and_then(Json::as_u64), Some(TRIALS));
    let direct = mpmb_core::OrderingSampling::new(mpmb_core::OsConfig {
        trials: TRIALS,
        seed: 7,
        ..Default::default()
    })
    .run(&reference_graph());
    let (_, dp) = direct.mpmb().expect("non-empty distribution");
    let served = json
        .get("mpmb")
        .and_then(|m| m.get("prob"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(
        served.to_bits(),
        dp.to_bits(),
        "escalated os answer must be bit-identical to a direct run"
    );

    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(metric_value(&metrics, "mpmb_fast_requests_total"), 1);
    assert_eq!(metric_value(&metrics, "mpmb_fast_escalations_total"), 1);
    assert_eq!(metric_value(&metrics, "mpmb_fast_relative_error_count"), 1);
    assert_eq!(
        metric_value(&metrics, "mpmb_trials_executed_total"),
        2 * TRIALS,
        "fast {TRIALS} + os {TRIALS}; resumes must never re-execute a trial"
    );

    server.begin_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn count_fast_covers_the_closed_form_and_replays_from_cache() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    let body = "{\"graph\":\"g\",\"method\":\"fast\",\"trials\":20000,\"seed\":7,\"delta\":0.05}";
    let (status, resp) = call(addr.as_str(), "POST", "/v1/count", body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    let exact = bigraph::expected::expected_butterfly_count(&reference_graph());
    let lo = json.get("ci_low").and_then(Json::as_f64).unwrap();
    let hi = json.get("ci_high").and_then(Json::as_f64).unwrap();
    assert!(
        lo <= exact && exact <= hi,
        "CI [{lo}, {hi}] misses the exact count {exact}"
    );
    assert_eq!(json.get("trials_done").and_then(Json::as_u64), Some(20_000));

    // The estimate equals the direct library call bit-for-bit, and a
    // repeat replays the cached body.
    let direct = mpmb_core::estimate_fast(
        &reference_graph(),
        &mpmb_core::SublinearConfig {
            trials: 20_000,
            seed: 7,
            delta: 0.05,
        },
        2,
    );
    let served = json.get("estimate").and_then(Json::as_f64).unwrap();
    assert_eq!(served.to_bits(), direct.estimate.to_bits());
    let (status, replay) = call(addr.as_str(), "POST", "/v1/count", body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(replay, resp);

    // An unknown method is rejected, not silently defaulted.
    let (status, resp) = call(
        addr.as_str(),
        "POST",
        "/v1/count",
        "{\"graph\":\"g\",\"method\":\"bogus\",\"trials\":100}",
    )
    .unwrap();
    assert_eq!(status, 400, "{resp}");

    server.begin_shutdown();
    server.join();
}

#[test]
fn sigterm_drains_in_flight_request_then_exits() {
    let _guard = lock();
    signal::install();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    // A solve sized to run for a couple of seconds on one core.
    let slow = std::thread::spawn({
        let addr = addr.clone();
        move || {
            call(
                addr.as_str(),
                "POST",
                "/v1/solve",
                "{\"graph\":\"g\",\"method\":\"os\",\"trials\":3000000,\"seed\":9}",
            )
        }
    });
    // Let the request reach a worker, then deliver a real SIGTERM.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let status = std::process::Command::new("kill")
        .args(["-TERM", &std::process::id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success());

    // The in-flight request completes with a full answer…
    let (status, resp) = slow.join().unwrap().expect("in-flight request answered");
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    assert_eq!(
        json.get("trials_done").and_then(Json::as_u64),
        Some(3_000_000)
    );
    // …and the pool drains: join() returns instead of hanging.
    server.join();

    // The listener is gone — new connections are refused.
    assert!(std::net::TcpStream::connect(addr.as_str()).is_err());
    signal::reset();
}

#[test]
fn threads_above_cap_get_400_with_cap_in_body() {
    let _guard = lock();
    let cfg = ServerConfig {
        max_solver_threads: 4,
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    register_graph(&addr);

    // The cap is advertised in the graph listing.
    let (status, resp) = call(addr.as_str(), "GET", "/v1/graphs", "").unwrap();
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    assert_eq!(json.get("max_threads").and_then(Json::as_u64), Some(4));

    // At the cap: accepted, for every endpoint that takes `threads`.
    for (path, body) in [
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"ols\",\"trials\":200,\"prep\":20,\"threads\":4}",
        ),
        (
            "/v1/count",
            "{\"graph\":\"g\",\"trials\":100,\"threads\":4}",
        ),
    ] {
        let (status, resp) = call(addr.as_str(), "POST", path, body).unwrap();
        assert_eq!(status, 200, "{path}: {resp}");
    }

    // Above the cap (or zero): rejected with the cap in the error body.
    for (path, body, requested) in [
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"threads\":5}",
            Some(5),
        ),
        (
            "/v1/topk",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"threads\":1000000}",
            Some(1_000_000),
        ),
        (
            "/v1/count",
            "{\"graph\":\"g\",\"trials\":100,\"threads\":5}",
            Some(5),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"threads\":0}",
            None,
        ),
    ] {
        let (status, resp) = call(addr.as_str(), "POST", path, body).unwrap();
        assert_eq!(status, 400, "{path} {body}: {resp}");
        let json = Json::parse(&resp).unwrap();
        assert_eq!(json.get("max_threads").and_then(Json::as_u64), Some(4));
        assert_eq!(json.get("requested").and_then(Json::as_u64), requested);
    }

    server.begin_shutdown();
    server.join();
}

#[test]
fn default_cap_is_worker_pool_size_and_parallel_results_match() {
    let _guard = lock();
    // max_solver_threads: 0 resolves to the pool size (8 here).
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    let (status, resp) = call(addr.as_str(), "GET", "/v1/graphs", "").unwrap();
    assert_eq!(status, 200);
    let json = Json::parse(&resp).unwrap();
    assert_eq!(json.get("max_threads").and_then(Json::as_u64), Some(8));

    // Same request at 1 and 8 threads: byte-identical responses (the
    // cache key ignores threads precisely because of this).
    let r1 = call(
        addr.as_str(),
        "POST",
        "/v1/solve",
        "{\"graph\":\"g\",\"method\":\"mcvp\",\"trials\":301,\"seed\":6,\"threads\":1}",
    )
    .unwrap();
    assert_eq!(r1.0, 200, "{}", r1.1);
    // Evict nothing — but bypass the cache by restarting it: simplest is
    // to compare against the direct library call instead.
    let g = reference_graph();
    let mcvp_cfg = mpmb_core::McVpConfig {
        trials: 301,
        seed: 6,
    };
    let direct = mpmb_core::Executor::new(8)
        .run(
            &mpmb_core::McVpTrials::new(&g, &mcvp_cfg),
            301,
            &mpmb_core::Cancel::never(),
        )
        .acc
        .into_distribution();
    let json = Json::parse(&r1.1).unwrap();
    let (_, dp) = direct.mpmb().expect("non-empty");
    let served_p = json
        .get("mpmb")
        .and_then(|m| m.get("prob"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(served_p.to_bits(), dp.to_bits());

    server.begin_shutdown();
    server.join();
}

#[test]
fn unknown_graph_and_bad_requests_are_4xx() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    let cases = [
        (
            "POST",
            "/v1/solve",
            "{\"graph\":\"nope\",\"trials\":10}",
            404,
        ),
        ("POST", "/v1/solve", "not json", 400),
        (
            "POST",
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"bogus\"}",
            400,
        ),
        ("POST", "/v1/solve", "{\"graph\":\"g\",\"trials\":0}", 400),
        ("GET", "/v1/nope", "", 404),
        ("DELETE", "/v1/solve", "", 405),
        (
            "POST",
            "/v1/query",
            "{\"graph\":\"g\",\"butterfly\":[1,1,2,3]}",
            400,
        ),
        (
            "POST",
            "/v1/graphs",
            "{\"name\":\"g\",\"spec\":\"dataset:abide:0.01\"}",
            409,
        ),
        (
            "POST",
            "/v1/graphs",
            "{\"name\":\"x\",\"spec\":\"dataset:zzz\"}",
            400,
        ),
    ];
    for (method, path, body, expected) in cases {
        let (status, resp) = call(addr.as_str(), method, path, body).unwrap();
        assert_eq!(status, expected, "{method} {path} {body}: {resp}");
    }

    server.begin_shutdown();
    server.join();
}

#[test]
fn request_ids_are_echoed_and_minted() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    // A client-supplied X-Request-Id is honored and echoed verbatim.
    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"seed\":42}";
    let (status, headers, _) = call_ext(
        addr.as_str(),
        "POST",
        "/v1/solve",
        body,
        &[("X-Request-Id", "trace-test-42")],
    )
    .unwrap();
    assert_eq!(status, 200);
    let echoed = headers
        .iter()
        .find(|(k, _)| k == "x-request-id")
        .map(|(_, v)| v.as_str());
    assert_eq!(echoed, Some("trace-test-42"));

    // Without one, the server mints a non-empty id.
    let (status, headers, _) = call_ext(addr.as_str(), "GET", "/healthz", "", &[]).unwrap();
    assert_eq!(status, 200);
    let minted = headers
        .iter()
        .find(|(k, _)| k == "x-request-id")
        .map(|(_, v)| v.as_str())
        .expect("server mints an id when none is supplied");
    assert!(!minted.is_empty());

    server.begin_shutdown();
    server.join();
}

#[test]
fn debug_trace_records_solve_summaries_with_phases() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());
    register_graph(&addr);

    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":200,\"seed\":9}";
    let (status, _, _) = call_ext(
        addr.as_str(),
        "POST",
        "/v1/solve",
        body,
        &[("X-Request-Id", "debug-trace-probe")],
    )
    .unwrap();
    assert_eq!(status, 200);

    let (status, resp) = call(addr.as_str(), "GET", "/debug/trace", "").unwrap();
    assert_eq!(status, 200, "{resp}");
    let json = Json::parse(&resp).unwrap();
    assert!(json.get("count").and_then(Json::as_u64).unwrap() >= 1);
    let traces = json.get("traces").and_then(Json::as_arr).unwrap();
    let entry = traces
        .iter()
        .find(|t| t.get("trace_id").and_then(Json::as_str) == Some("debug-trace-probe"))
        .expect("solve summary retained in the ring");
    assert_eq!(entry.get("graph").and_then(Json::as_str), Some("g"));
    assert_eq!(
        entry.get("endpoint").and_then(Json::as_str),
        Some("/v1/solve")
    );
    assert_eq!(entry.get("status").and_then(Json::as_u64), Some(200));
    // The solve ran under a request-scoped profile: phase timings exist.
    match entry.get("phases").expect("phases object") {
        Json::Obj(phases) => assert!(
            !phases.is_empty(),
            "solve summary should carry at least one phase"
        ),
        other => panic!("phases should be an object, got {other:?}"),
    }

    // The graph filter matches and excludes.
    let (status, resp) = call(addr.as_str(), "GET", "/debug/trace?graph=g", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        Json::parse(&resp)
            .unwrap()
            .get("count")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    let (status, resp) = call(addr.as_str(), "GET", "/debug/trace?graph=absent", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        Json::parse(&resp)
            .unwrap()
            .get("count")
            .and_then(Json::as_u64),
        Some(0)
    );

    server.begin_shutdown();
    server.join();
}

/// A scratch directory under the system temp dir, empty on return.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpmb-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Reads one HTTP response off a raw stream: `(status, lowercased
/// header block, body)`, or `None` on immediate EOF.
fn read_raw_response(reader: &mut BufReader<TcpStream>) -> Option<(u16, String, String)> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
    let mut headers = String::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).ok()?;
        let trimmed = h.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
        headers.push_str(&trimmed.to_ascii_lowercase());
        headers.push('\n');
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, headers, String::from_utf8(body).ok()?))
}

#[test]
fn http10_closes_by_default_and_keep_alive_is_honored() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());

    // Bare HTTP/1.0: answered, then the server closes the connection —
    // read_to_string returning at all proves the close happened.
    let mut s = TcpStream::connect(addr.as_str()).unwrap();
    s.write_all(b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(
        raw.to_ascii_lowercase().contains("connection: close"),
        "{raw}"
    );
    drop(s);

    // HTTP/1.0 with an explicit `Connection: keep-alive` opt-in: two
    // requests ride one socket.
    let s = TcpStream::connect(addr.as_str()).unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut s = s;
    for i in 0..2 {
        s.write_all(b"GET /healthz HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        let (status, headers, _) = read_raw_response(&mut reader)
            .unwrap_or_else(|| panic!("keep-alive request {i} went unanswered"));
        assert_eq!(status, 200);
        assert!(headers.contains("connection: keep-alive"), "{headers}");
    }
    drop((s, reader));

    // HTTP/1.1 still defaults to keep-alive with no Connection header.
    let s = TcpStream::connect(addr.as_str()).unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut s = s;
    for _ in 0..2 {
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, headers, _) =
            read_raw_response(&mut reader).expect("HTTP/1.1 default keep-alive reply");
        assert_eq!(status, 200);
        assert!(headers.contains("connection: keep-alive"), "{headers}");
    }
    drop((s, reader));

    server.begin_shutdown();
    server.join();
}

#[test]
fn oversized_request_head_is_cut_off_with_431() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());

    let mut s = TcpStream::connect(addr.as_str()).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    // One endless header line, sent in paced chunks so the server's
    // budget accounting drains each chunk fully. The fourth chunk tips
    // the cumulative head past 16 KiB, and the 431 must fire *mid-line*
    // — before the attacker ever supplies a newline.
    let chunk = vec![b'x'; 4096];
    for _ in 0..4 {
        s.write_all(&chunk).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 431"), "{raw}");
    assert!(raw.contains("request head too large"), "{raw}");
    drop(s);

    // The server shrugged it off.
    let (hs, _) = call(addr.as_str(), "GET", "/healthz", "").unwrap();
    assert_eq!(hs, 200);

    server.begin_shutdown();
    server.join();
}

#[test]
fn conflicting_content_length_is_rejected_but_agreeing_duplicates_pass() {
    let _guard = lock();
    let (server, addr) = start(default_cfg());

    // Two different Content-Length values: the smuggling vector. The
    // body is deliberately not sent — the reject must come from the
    // headers alone.
    let mut s = TcpStream::connect(addr.as_str()).unwrap();
    s.write_all(
        b"POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\n",
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    assert!(raw.contains("conflicting Content-Length"), "{raw}");
    drop(s);

    // Duplicates that agree are harmless.
    let mut s = TcpStream::connect(addr.as_str()).unwrap();
    s.write_all(
        b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    drop(s);

    server.begin_shutdown();
    server.join();
}

#[test]
fn shed_and_deadline_responses_carry_retry_after() {
    let _guard = lock();

    // 503 deadline: `Retry-After: 0` — the partial was cached, so an
    // immediate retry refines rather than restarts.
    let cfg = ServerConfig {
        timeout_ms: 40,
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    register_graph(&addr);
    let (status, headers, _) = call_ext(
        addr.as_str(),
        "POST",
        "/v1/solve",
        "{\"graph\":\"g\",\"method\":\"os\",\"trials\":200000000,\"seed\":5,\"threads\":2}",
        &[],
    )
    .unwrap();
    assert_eq!(status, 503);
    let ra = headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .map(|(_, v)| v.as_str());
    assert_eq!(ra, Some("0"), "503 must invite an immediate resume");
    server.begin_shutdown();
    server.join();
    signal::reset();

    // 429 shed: `Retry-After: 1`. One worker, one queue slot; a slow
    // solve plus one queued filler leave nothing for the burst.
    let cfg = ServerConfig {
        threads: 1,
        queue: 1,
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    register_graph(&addr);
    let slow = std::thread::spawn({
        let addr = addr.clone();
        move || {
            call(
                addr.as_str(),
                "POST",
                "/v1/solve",
                "{\"graph\":\"g\",\"method\":\"os\",\"trials\":2000000,\"seed\":8}",
            )
        }
    });
    std::thread::sleep(Duration::from_millis(300)); // slow solve owns the worker
    let filler = std::thread::spawn({
        let addr = addr.clone();
        move || call(addr.as_str(), "GET", "/healthz", "")
    });
    std::thread::sleep(Duration::from_millis(100)); // filler occupies the queue slot
    let mut shed = 0;
    for _ in 0..4 {
        let (status, headers, _) = call_ext(addr.as_str(), "GET", "/healthz", "", &[]).unwrap();
        if status == 429 {
            shed += 1;
            let ra = headers
                .iter()
                .find(|(n, _)| n == "retry-after")
                .map(|(_, v)| v.as_str());
            assert_eq!(ra, Some("1"), "429 must say when to come back");
        }
    }
    assert!(shed >= 1, "bounded queue never shed under overload");
    assert_eq!(slow.join().unwrap().unwrap().0, 200);
    assert_eq!(filler.join().unwrap().unwrap().0, 200);

    server.begin_shutdown();
    server.join();
}

#[test]
fn loadgen_with_retries_survives_fault_injection() {
    let _guard = lock();
    let cfg = ServerConfig {
        fault_plan: Some("seed=7,reset=0.15,slow=0.03,partial=0.1,panic_at=3".to_string()),
        ..default_cfg()
    };
    let (server, addr) = start(cfg);

    // Registration runs under the fault plan too: retry until it lands.
    // A lost *response* still registers the graph, so 409 is success.
    let policy = RetryPolicy {
        attempts: 10,
        base_ms: 5,
        cap_ms: 50,
        seed: 1,
    };
    let reg = mpmb_serve::call_retry(
        &addr,
        "POST",
        "/v1/graphs",
        &format!("{{\"name\":\"g\",\"spec\":\"{GRAPH_SPEC}\"}}"),
        &policy,
    )
    .expect("register through faults");
    assert!(
        reg.status == 200 || reg.status == 409,
        "register: {} {}",
        reg.status,
        reg.body
    );

    // Resets, garbled bodies, slow writes, and one forced worker panic
    // — the retrying load generator must still land every request.
    let report = mpmb_serve::loadgen::run(&LoadgenConfig {
        targets: vec![addr.clone()],
        requests: 40,
        concurrency: 4,
        graphs: vec!["g".to_string()],
        method: "os".to_string(),
        trials: 200,
        seed: 77,
        vary_seed: true,
        retries: 8,
    });
    assert_eq!(report.failed, 0, "{}", report.render());
    assert_eq!(report.ok, report.sent, "{}", report.render());
    assert!(report.retried >= 1, "{}", report.render());

    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert!(metric_value(&metrics, "mpmb_faults_injected_total") >= 1);
    assert_eq!(
        metric_value(&metrics, "mpmb_worker_panics_total"),
        1,
        "panic_at=3 forces exactly one worker panic"
    );

    server.begin_shutdown();
    server.join();
}

#[test]
fn checkpoint_restores_partials_and_graphs_across_restart() {
    let _guard = lock();
    let dir = scratch_dir("ckpt-restart");
    const TRIALS: u64 = 30_000;
    let body = format!(
        "{{\"graph\":\"g\",\"method\":\"os\",\"trials\":{TRIALS},\"seed\":21,\"threads\":2}}"
    );
    let cfg = ServerConfig {
        timeout_ms: 40,
        checkpoint_dir: Some(dir.clone()),
        // No cadence writes: this test exercises the shutdown snapshot.
        checkpoint_every_ms: 3_600_000,
        ..default_cfg()
    };

    // Server 1: the solve misses its 40 ms deadline and caches a
    // partial; shutdown snapshots the registry and that partial.
    let (server, addr) = start(cfg.clone());
    register_graph(&addr);
    let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", &body).unwrap();
    assert_eq!(status, 503, "{resp}");
    let done1 = Json::parse(&resp)
        .unwrap()
        .get("trials_done")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(0 < done1 && done1 < TRIALS, "done1 {done1}");
    server.begin_shutdown();
    server.join();
    signal::reset();

    // Server 2: registry and partial come back from disk — the graph is
    // listed without re-registering.
    let (server, addr) = start(cfg);
    let (s, listing) = call(addr.as_str(), "GET", "/v1/graphs", "").unwrap();
    assert_eq!(s, 200);
    assert!(listing.contains("\"g\""), "{listing}");
    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert!(metric_value(&metrics, "mpmb_checkpoint_restored_total") >= 1);

    // Re-issuing the same request resumes the restored partial.
    let mut attempts = 0u32;
    let final_resp = loop {
        attempts += 1;
        assert!(attempts <= 2_000, "restored solve never completed");
        let (status, resp) = call(addr.as_str(), "POST", "/v1/solve", &body).unwrap();
        match status {
            503 => continue,
            200 => break resp,
            other => panic!("unexpected status {other}: {resp}"),
        }
    };

    // No trial ran twice: this process only executed the remainder.
    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(
        metric_value(&metrics, "mpmb_trials_executed_total"),
        TRIALS - done1,
        "restart must resume exactly where the snapshot left off"
    );

    // And the stitched-together answer matches one uninterrupted
    // library run bit-for-bit.
    let json = Json::parse(&final_resp).unwrap();
    assert_eq!(json.get("trials_done").and_then(Json::as_u64), Some(TRIALS));
    let direct = mpmb_core::OrderingSampling::new(mpmb_core::OsConfig {
        trials: TRIALS,
        seed: 21,
        ..Default::default()
    })
    .run(&reference_graph());
    let (_, dp) = direct.mpmb().expect("non-empty distribution");
    let served_p = json
        .get("mpmb")
        .and_then(|m| m.get("prob"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(served_p.to_bits(), dp.to_bits());

    server.begin_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_is_skipped_not_fatal() {
    let _guard = lock();
    let dir = scratch_dir("ckpt-corrupt");
    // Right magic, garbage after it — the checksum must catch it.
    std::fs::write(dir.join("state.ckpt"), b"MPMBCKP1 this is not a checkpoint").unwrap();

    let cfg = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        ..default_cfg()
    };
    let (server, addr) = start(cfg);

    // The server came up anyway and serves normally.
    let (hs, _) = call(addr.as_str(), "GET", "/healthz", "").unwrap();
    assert_eq!(hs, 200);
    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(metric_value(&metrics, "mpmb_checkpoint_corrupt_total"), 1);
    assert_eq!(metric_value(&metrics, "mpmb_checkpoint_restored_total"), 0);
    register_graph(&addr);
    let (status, _) = call(
        addr.as_str(),
        "POST",
        "/v1/solve",
        "{\"graph\":\"g\",\"method\":\"os\",\"trials\":100,\"seed\":1}",
    )
    .unwrap();
    assert_eq!(status, 200);

    // Shutdown replaces the garbage with a valid snapshot.
    server.begin_shutdown();
    server.join();
    signal::reset();
    let cfg = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        ..default_cfg()
    };
    let (server, addr) = start(cfg);
    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(metric_value(&metrics, "mpmb_checkpoint_corrupt_total"), 0);
    let (s, listing) = call(addr.as_str(), "GET", "/v1/graphs", "").unwrap();
    assert_eq!(s, 200);
    assert!(listing.contains("\"g\""), "{listing}");

    server.begin_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Cluster: coordinator + workers scatter-gather.
// ---------------------------------------------------------------------------

/// Starts `n` worker servers plus a coordinator pointed at all of them.
/// Returns (workers, coordinator, coordinator addr).
fn start_cluster(n: usize) -> (Vec<Server>, Server, String) {
    let mut workers = Vec::new();
    let mut worker_addrs = Vec::new();
    for _ in 0..n {
        let (s, a) = start(ServerConfig {
            role: mpmb_serve::Role::Worker,
            ..default_cfg()
        });
        workers.push(s);
        worker_addrs.push(a);
    }
    let (coord, addr) = start(ServerConfig {
        role: mpmb_serve::Role::Coordinator,
        workers: worker_addrs,
        probe_interval_ms: 100,
        ..default_cfg()
    });
    (workers, coord, addr)
}

fn shutdown(server: Server) {
    server.begin_shutdown();
    server.join();
}

/// Every request a cluster test replays against single-node and each
/// worker count: every solve method (fast included) plus the count
/// endpoint.
fn cluster_request_matrix() -> Vec<(&'static str, String)> {
    vec![
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"os\",\"trials\":2000,\"seed\":7,\"k\":3}".into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"fast\",\"trials\":2500,\"seed\":23,\"delta\":0.1}"
                .into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"mcvp\",\"trials\":1000,\"seed\":11}".into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"ols\",\"trials\":3000,\"prep\":150,\"seed\":13}".into(),
        ),
        (
            "/v1/solve",
            "{\"graph\":\"g\",\"method\":\"ols-kl\",\"trials\":200,\"prep\":150,\"seed\":17}"
                .into(),
        ),
        (
            "/v1/count",
            "{\"graph\":\"g\",\"trials\":1500,\"seed\":19}".into(),
        ),
    ]
}

#[test]
fn cluster_answers_are_byte_identical_to_single_node_at_any_worker_count() {
    let _guard = lock();

    // Single-node baseline bodies.
    let (single, single_addr) = start(default_cfg());
    register_graph(&single_addr);
    let matrix = cluster_request_matrix();
    let baselines: Vec<(u16, String)> = matrix
        .iter()
        .map(|(path, body)| call(single_addr.as_str(), "POST", path, body).expect("baseline"))
        .collect();
    for (status, body) in &baselines {
        assert_eq!(*status, 200, "baseline failed: {body}");
    }
    shutdown(single);

    for n in 1..=3usize {
        signal::reset();
        let (workers, coord, addr) = start_cluster(n);
        // Registration through the coordinator fans out to every worker.
        register_graph(&addr);
        for ((path, body), (_, want)) in matrix.iter().zip(&baselines) {
            let (status, got) = call(addr.as_str(), "POST", path, body).expect("cluster request");
            assert_eq!(status, 200, "{n} workers, {path} {body}: {got}");
            assert_eq!(&got, want, "{n} workers, {path} {body}");
        }
        let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
        assert!(
            metric_value(&metrics, "mpmb_cluster_ranges_dispatched_total") >= matrix.len() as u64,
            "coordinator never dispatched ranges:\n{metrics}"
        );
        assert_eq!(
            metric_value(&metrics, "mpmb_cluster_workers"),
            n as u64,
            "{metrics}"
        );
        shutdown(coord);
        workers.into_iter().for_each(shutdown);
    }
}

#[test]
fn dead_address_in_the_worker_list_is_marked_down_and_skipped() {
    let _guard = lock();

    let (single, single_addr) = start(default_cfg());
    register_graph(&single_addr);
    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":4000,\"seed\":23,\"k\":2}";
    let (bs, baseline) = call(single_addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!(bs, 200, "{baseline}");
    shutdown(single);
    signal::reset();

    // One live worker plus one address nothing listens on: round 0
    // dispatches to both, the dead half fails transport, and the gap is
    // redispatched to the survivor.
    let (worker, worker_addr) = start(ServerConfig {
        role: mpmb_serve::Role::Worker,
        ..default_cfg()
    });
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let (coord, addr) = start(ServerConfig {
        role: mpmb_serve::Role::Coordinator,
        workers: vec![worker_addr, dead_addr],
        probe_interval_ms: 60_000, // never revives the dead slot mid-test
        ..default_cfg()
    });
    // Registration through the coordinator 502s on the dead worker (it
    // was optimistically up), registering the live worker on the way.
    let (rs, rbody) = call(
        addr.as_str(),
        "POST",
        "/v1/graphs",
        &format!("{{\"name\":\"g\",\"spec\":\"{GRAPH_SPEC}\"}}"),
    )
    .unwrap();
    assert_eq!(rs, 502, "broadcast register must fail fast: {rbody}");
    // The dead worker is now marked down, so the retry skips it: the
    // live worker answers 409 (already has the graph) and the
    // coordinator registers locally.
    register_graph(&addr);

    let (status, got) = call(addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, baseline, "dead worker changed the answer");

    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert_eq!(metric_value(&metrics, "mpmb_cluster_workers"), 2);
    shutdown(coord);
    shutdown(worker);
}

#[test]
fn coordinator_redispatches_when_a_worker_dies_mid_membership() {
    let _guard = lock();

    let (single, single_addr) = start(default_cfg());
    register_graph(&single_addr);
    let body = "{\"graph\":\"g\",\"method\":\"os\",\"trials\":4000,\"seed\":29,\"k\":2}";
    let (bs, baseline) = call(single_addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!(bs, 200, "{baseline}");
    shutdown(single);
    signal::reset();

    // Two live workers; one dies *after* registration, while the
    // coordinator still believes it is up. Round 0 dispatches half the
    // trial space to the corpse, fails transport, and the gap is
    // redispatched to the survivor — the answer must not change. The
    // probe interval is long so the prober cannot mark the corpse down
    // before the solve observes the mid-range failure itself.
    let mut workers = Vec::new();
    let mut worker_addrs = Vec::new();
    for _ in 0..2 {
        let (s, a) = start(ServerConfig {
            role: mpmb_serve::Role::Worker,
            ..default_cfg()
        });
        workers.push(s);
        worker_addrs.push(a);
    }
    let (coord, addr) = start(ServerConfig {
        role: mpmb_serve::Role::Coordinator,
        workers: worker_addrs,
        probe_interval_ms: 60_000,
        ..default_cfg()
    });
    register_graph(&addr);
    let mut workers = workers.into_iter();
    let survivor = workers.next().unwrap();
    shutdown(workers.next().unwrap());

    let (status, got) = call(addr.as_str(), "POST", "/v1/solve", body).unwrap();
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, baseline, "worker death changed the answer");

    let (_, metrics) = call(addr.as_str(), "GET", "/metrics", "").unwrap();
    assert!(
        metric_value(&metrics, "mpmb_cluster_redispatch_total") >= 1,
        "no redispatch recorded:\n{metrics}"
    );
    assert!(
        metric_value(&metrics, "mpmb_cluster_worker_errors_total") >= 1,
        "no worker error recorded:\n{metrics}"
    );
    shutdown(coord);
    shutdown(survivor);
}

#[test]
fn coordinator_with_no_live_workers_returns_503_and_recovers() {
    let _guard = lock();

    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let (coord, addr) = start(ServerConfig {
        role: mpmb_serve::Role::Coordinator,
        workers: vec![dead_addr],
        probe_interval_ms: 60_000,
        ..default_cfg()
    });
    // Registration cannot reach any worker.
    let (rs, _) = call(
        addr.as_str(),
        "POST",
        "/v1/graphs",
        &format!("{{\"name\":\"g\",\"spec\":\"{GRAPH_SPEC}\"}}"),
    )
    .unwrap();
    assert_eq!(rs, 502);
    shutdown(coord);
}
