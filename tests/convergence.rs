//! Statistical integration tests: the solvers honor the paper's
//! approximation guarantees on graphs where exact answers are computable.

use mpmb::prelude::*;
use mpmb_core::{bounds, ConvergenceTracker};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random 4×4 uncertain graph with quantized weights and coarse probs.
fn random_graph(seed: u64) -> UncertainBipartiteGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for u in 0..4u32 {
        for v in 0..4u32 {
            if rng.random::<f64>() < 0.75 {
                let w = rng.random_range(1..=32) as f64 / 4.0;
                let p = rng.random_range(1..=9) as f64 / 10.0;
                b.add_edge(Left(u), Right(v), w, p).unwrap();
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn theorem_iv1_bound_delivers_epsilon_delta() {
    // For each random instance, run OS with the Theorem IV.1 trial count
    // for the exact P(B*) at ε=δ=0.25 and check the relative error. With
    // δ=0.25 an individual failure is possible; across 8 instances the
    // expected failures are 2 — we allow 3 before declaring the bound
    // violated (P(>3 failures) < 4% under the guarantee).
    let mut failures = 0;
    let mut checked = 0;
    for seed in 0..8u64 {
        let g = random_graph(seed);
        let exact = mpmb_core::exact_distribution(&g, ExactConfig::default()).unwrap();
        let Some((target, p_exact)) = exact.mpmb() else {
            continue;
        };
        if p_exact < 0.02 {
            continue; // bound would demand enormous trial counts
        }
        checked += 1;
        let (eps, delta) = (0.25, 0.25);
        let n = bounds::mc_trial_lower_bound(p_exact, eps, delta).ceil() as u64;
        let d = OrderingSampling::new(OsConfig {
            trials: n,
            seed: seed ^ 0xFEED,
            ..Default::default()
        })
        .run(&g);
        let rel_err = (d.prob(&target) - p_exact).abs() / p_exact;
        if rel_err > eps {
            failures += 1;
        }
    }
    assert!(checked >= 5, "too few usable instances: {checked}");
    assert!(failures <= 3, "{failures}/{checked} exceeded the ε bound");
}

#[test]
fn all_solvers_converge_to_exact_on_random_instances() {
    for seed in [3u64, 17, 99] {
        let g = random_graph(seed);
        let exact = mpmb_core::exact_distribution(&g, ExactConfig::default()).unwrap();
        if exact.is_empty() {
            continue;
        }
        let trials = 30_000;
        let mc = McVp::new(McVpConfig { trials, seed }).run(&g);
        let os = OrderingSampling::new(OsConfig {
            trials,
            seed,
            ..Default::default()
        })
        .run(&g);
        let ols = OrderingListingSampling::new(OlsConfig {
            prep_trials: 300,
            seed,
            estimator: EstimatorKind::Optimized { trials },
            ..Default::default()
        })
        .run(&g);
        let kl = OrderingListingSampling::new(OlsConfig {
            prep_trials: 300,
            seed,
            estimator: EstimatorKind::KarpLuby {
                policy: KlTrialPolicy::Fixed(trials),
            },
            ..Default::default()
        })
        .run(&g);
        for (b, &p) in exact.iter() {
            for (name, est) in [
                ("mcvp", mc.prob(b)),
                ("os", os.prob(b)),
                ("ols", ols.distribution.prob(b)),
                ("ols-kl", kl.distribution.prob(b)),
            ] {
                assert!(
                    (est - p).abs() < 0.02,
                    "seed {seed} {name} {b}: {est} vs exact {p}"
                );
            }
        }
    }
}

#[test]
fn convergence_tracker_stabilizes_within_band() {
    let g = random_graph(5);
    let exact = mpmb_core::exact_distribution(&g, ExactConfig::default()).unwrap();
    let (target, p_exact) = exact.mpmb().unwrap();
    let trials = 40_000;
    let mut tracker = ConvergenceTracker::new(target, trials / 8);
    OrderingSampling::new(OsConfig {
        trials,
        seed: 8,
        ..Default::default()
    })
    .run_with_observer(&g, &mut tracker);
    // The paper's Fig. 11 criterion: the trace enters and stays in the 2ε
    // band over the second half of the budget.
    let eps = 0.1;
    for &(n, est) in tracker.points().iter().filter(|(n, _)| *n >= trials / 2) {
        assert!(
            (est - p_exact).abs() <= 2.0 * eps * p_exact + 0.01,
            "N={n}: {est} outside the 2ε band around {p_exact}"
        );
    }
}

#[test]
fn lemma_vi5_truncation_error_is_bounded() {
    // Build candidate sets that *deliberately* drop butterflies and check
    // the observed over-estimate against the Lemma VI.5 bound.
    for seed in [2u64, 9, 31] {
        let g = random_graph(seed);
        let exact = mpmb_core::exact_distribution(&g, ExactConfig::default()).unwrap();
        let all = mpmb_core::enumerate_backbone_butterflies(&g);
        if all.len() < 3 {
            continue;
        }
        let full = mpmb_core::CandidateSet::from_butterflies(&g, all.clone());
        // Drop every other candidate (keep the heaviest so L(i) indexes
        // stay meaningful).
        let kept: Vec<_> = (0..full.len())
            .filter(|i| *i == 0 || i % 2 == 0)
            .map(|i| full.get(i).butterfly)
            .collect();
        let truncated = mpmb_core::CandidateSet::from_butterflies(&g, kept.clone());
        let est = mpmb_core::estimate_optimized(&g, &truncated, 60_000, seed);
        for i in 0..truncated.len() {
            let b = truncated.get(i).butterfly;
            let p_exact = exact.prob(&b);
            // Lemma VI.5: the over-estimate is at most the summed exact
            // probabilities of skipped, strictly heavier butterflies.
            let bound: f64 = (0..full.len())
                .filter(|&j| {
                    full.get(j).weight > truncated.get(i).weight
                        && !kept.contains(&full.get(j).butterfly)
                })
                .map(|j| exact.prob(&full.get(j).butterfly))
                .sum();
            let over = est.prob(&b) - p_exact;
            assert!(
                over <= bound + 0.02,
                "seed {seed} {b}: over-estimate {over} exceeds Lemma VI.5 bound {bound}"
            );
        }
    }
}
