//! Regression guard: the core `Executor` is the workspace's only
//! trial-loop owner.
//!
//! After the trial-engine unification, every sampler's Monte-Carlo loop
//! runs through `mpmb_core::engine::Executor`. Hand-rolled loops have a
//! way of creeping back in (a quick `for t in 0..trials` in a new
//! endpoint, a private `thread::scope` fan-out in a bench), and each one
//! silently forfeits the determinism contract — cancellation, resume,
//! and thread-count independence. This test scans the workspace sources
//! and pins down where the low-level primitives may appear.

use std::path::{Path, PathBuf};

/// Rust sources under `dir`, recursively.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read_dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Library sources of the named workspace crates (tests/benches/bins
/// excluded — they may orchestrate threads for harness purposes).
fn crate_lib_sources(crates: &[&str]) -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for c in crates {
        rust_sources(&root.join("crates").join(c).join("src"), &mut files);
    }
    files
}

fn rel(path: &Path) -> String {
    path.strip_prefix(env!("CARGO_MANIFEST_DIR"))
        .unwrap_or(path)
        .display()
        .to_string()
        .replace('\\', "/")
}

/// `thread::scope` — the data-parallel fan-out — is allowed in exactly
/// five places: the executor itself, the (separately verified) listing
/// kernel, the load generator's request workers, the cluster
/// coordinator's scatter threads (which block on worker HTTP calls —
/// the trials themselves still run through remote `Executor`s), and
/// the container reader's section decode/validate fan-out (pure
/// functions of on-disk bytes, no trials and no RNG — bit-identical to
/// its serial path by construction). A new use anywhere else means a
/// trial loop grew outside the engine.
#[test]
fn thread_scope_is_owned_by_the_executor() {
    let allowed = [
        "crates/mpmb-core/src/engine.rs",
        "crates/mpmb-core/src/listing.rs",
        "crates/mpmb-serve/src/loadgen.rs",
        "crates/mpmb-serve/src/cluster/coordinator.rs",
        "crates/bigraph/src/storage.rs",
    ];
    let mut offenders = Vec::new();
    for path in crate_lib_sources(&["mpmb-core", "mpmb-serve", "bench", "bigraph", "datasets"]) {
        let src = std::fs::read_to_string(&path).expect("read source");
        if src.contains("thread::scope") && !allowed.contains(&rel(&path).as_str()) {
            offenders.push(rel(&path));
        }
    }
    assert!(
        offenders.is_empty(),
        "`thread::scope` outside the engine/listing/loadgen: {offenders:?}\n\
         route trial fan-out through `mpmb_core::Executor` instead"
    );
}

/// The serving layer must never reach for per-trial RNG streams — it
/// drives solvers exclusively through `advance_*` + `Executor::resume`.
#[test]
fn serve_layer_has_no_trial_rng() {
    for path in crate_lib_sources(&["mpmb-serve"]) {
        let src = std::fs::read_to_string(&path).expect("read source");
        assert!(
            !src.contains("trial_rng"),
            "{} touches trial_rng; solver execution belongs to mpmb-core's Executor",
            rel(&path)
        );
    }
}
