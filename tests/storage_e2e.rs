//! End-to-end tests for out-of-core graph serving (docs/STORAGE.md).
//!
//! Two guarantees get proven against the real `mpmb serve` binary:
//!
//! 1. **Eviction cannot perturb results.** A server holding two
//!    container-backed graphs under a `--mem-budget` far smaller than
//!    their sum — so every alternating request evicts one graph and
//!    re-materializes the other — answers every `os`/`mcvp`/`ols`/
//!    `ols-kl`/count request byte-identically to a server with no
//!    budget at all, and `mpmb_graph_evictions_total` proves churn
//!    actually happened.
//!
//! 2. **Crash restart re-attaches containers, not text.** After
//!    SIGKILL, a fresh process restores container-backed graphs from
//!    the checkpoint manifest alone: `/v1/graphs` reports them as
//!    `container`-backed and *not yet resident* (attach is a header
//!    read, no parse), the checkpointed partial resumes
//!    (`mpmb_checkpoint_restored_total` > 0), and the finished answer
//!    is byte-identical to an uninterrupted run.

use datasets::Dataset;
use mpmb_serve::client::call;
use mpmb_serve::json::Json;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpmb-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes two distinct datasets as container files under `dir`. The
/// pair is deliberately lopsided (a handful of edges vs. a few
/// thousand) so the eviction matrix churns between a cheap and a
/// non-trivial materialization; MovieLens is used for the big one
/// because its wedge structure keeps debug-build solves affordable
/// where Jester's skew (one hub of degree ~4000) does not.
fn write_containers(dir: &Path) -> (PathBuf, PathBuf) {
    let a = dir.join("a.ubgc");
    let b = dir.join("b.ubgc");
    bigraph::write_container_path(&Dataset::Abide.generate(0.01, 3), &a).expect("write a.ubgc");
    bigraph::write_container_path(&Dataset::MovieLens.generate(0.05, 7), &b).expect("write b.ubgc");
    (a, b)
}

/// A running `mpmb serve` subprocess; killed on drop so a failing
/// assertion never leaks a daemon.
struct ServerProc {
    child: Child,
    addr: String,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `mpmb serve` with the given extra flags and blocks until it
/// announces its ephemeral address on stderr.
fn spawn_server(extra: &[&str]) -> ServerProc {
    let mut args = vec!["serve", "--listen", "127.0.0.1:0", "--threads", "2"];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_mpmb"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mpmb serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = std::io::BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read server stderr");
        assert!(n > 0, "server exited before announcing its address");
        if let Some(rest) = line.trim().strip_prefix("mpmb-serve listening on ") {
            break rest.to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                break;
            }
        }
    });
    ServerProc { child, addr }
}

fn metric_value(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing:\n{metrics_text}"))
}

fn fetch_metric(addr: &str, name: &str) -> u64 {
    let (status, text) = call(addr, "GET", "/metrics", "").expect("GET /metrics");
    assert_eq!(status, 200);
    metric_value(&text, name)
}

fn post_200(addr: &str, path: &str, body: &str) -> String {
    let (status, resp) = call(addr, "POST", path, body).expect("request");
    assert_eq!(status, 200, "{path} {body}: {resp}");
    resp
}

/// The request matrix of guarantee 1: every solver method plus count,
/// alternating between the two graphs so a small budget must thrash.
fn request_matrix() -> Vec<(&'static str, String)> {
    let mut reqs = Vec::new();
    for (method, trials, prep) in [
        ("os", 400, 1),
        ("mcvp", 150, 1),
        ("ols", 800, 60),
        ("ols-kl", 200, 60),
    ] {
        for graph in ["a", "b"] {
            reqs.push((
                "/v1/solve",
                format!(
                    "{{\"graph\":\"{graph}\",\"method\":\"{method}\",\"trials\":{trials},\
                     \"prep\":{prep},\"seed\":77,\"threads\":2}}"
                ),
            ));
        }
    }
    for graph in ["a", "b"] {
        reqs.push((
            "/v1/count",
            format!("{{\"graph\":\"{graph}\",\"trials\":200,\"seed\":77,\"threads\":2}}"),
        ));
    }
    reqs
}

#[test]
fn eviction_under_mem_budget_is_invisible_in_responses() {
    let dir = scratch_dir("storage-evict");
    let (a, b) = write_containers(&dir);
    let graph_a = format!("a={}", a.display());
    let graph_b = format!("b={}", b.display());

    // Budgeted server: 1 byte forces every request over budget, so each
    // solve evicts whatever cold graph is resident.
    let budgeted = spawn_server(&[
        "--graph",
        &graph_a,
        "--graph",
        &graph_b,
        "--mem-budget",
        "1",
    ]);
    let budgeted_answers: Vec<String> = request_matrix()
        .iter()
        .map(|(path, body)| post_200(&budgeted.addr, path, body))
        .collect();
    let evictions = fetch_metric(&budgeted.addr, "mpmb_graph_evictions_total");
    assert!(
        evictions > 0,
        "alternating two graphs under a 1-byte budget must evict (got {evictions})"
    );
    // Cross-check the other residency metric: every eviction forces a
    // later re-materialization.
    let mats = fetch_metric(&budgeted.addr, "mpmb_graph_materializations_total");
    assert!(
        mats >= evictions,
        "materializations {mats} < evictions {evictions}"
    );
    drop(budgeted);

    // Unbudgeted server: both graphs stay resident for the whole run.
    let resident = spawn_server(&["--graph", &graph_a, "--graph", &graph_b]);
    let resident_answers: Vec<String> = request_matrix()
        .iter()
        .map(|(path, body)| post_200(&resident.addr, path, body))
        .collect();
    assert_eq!(
        fetch_metric(&resident.addr, "mpmb_graph_evictions_total"),
        0,
        "no budget, no evictions"
    );
    drop(resident);

    for (i, (req, (budgeted, resident))) in request_matrix()
        .iter()
        .zip(budgeted_answers.iter().zip(&resident_answers))
        .enumerate()
    {
        assert_eq!(
            budgeted, resident,
            "request {i} ({req:?}) diverged between budgeted and unbudgeted servers"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /v1/graphs` entries keyed by name.
fn graphs_by_name(addr: &str) -> Vec<(String, Json)> {
    let (status, text) = call(addr, "GET", "/v1/graphs", "").expect("GET /v1/graphs");
    assert_eq!(status, 200);
    let parsed = Json::parse(&text).unwrap();
    parsed
        .get("graphs")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|g| {
            (
                g.get("name").and_then(Json::as_str).unwrap().to_string(),
                g.clone(),
            )
        })
        .collect()
}

#[test]
fn sigkill_restart_reattaches_containers_from_the_manifest() {
    const TRIALS: u64 = 30_000;
    let dir = scratch_dir("storage-crash");
    let (a, _) = write_containers(&dir);
    let ckpt = dir.join("ckpt");
    let graph_flag = format!("g={}", a.display());
    let solve_body = format!(
        "{{\"graph\":\"g\",\"method\":\"os\",\"trials\":{TRIALS},\"seed\":33,\"threads\":2}}"
    );

    // Process 1: tight deadline interrupts the solve; the cadence
    // checkpoint captures the partial and the container-backed manifest.
    let server = spawn_server(&[
        "--graph",
        &graph_flag,
        "--timeout-ms",
        "40",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--checkpoint-every-ms",
        "50",
    ]);
    let (status, resp) =
        call(server.addr.as_str(), "POST", "/v1/solve", &solve_body).expect("first attempt");
    assert_eq!(status, 503, "{resp}");
    let baseline = fetch_metric(&server.addr, "mpmb_checkpoint_written_total");
    let deadline = Instant::now() + Duration::from_secs(10);
    while fetch_metric(&server.addr, "mpmb_checkpoint_written_total") <= baseline {
        assert!(Instant::now() < deadline, "no checkpoint written");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(server); // SIGKILL: no drain, no shutdown snapshot.

    // Process 2: no --graph flag — the graph can only come back through
    // the checkpoint manifest, which re-attaches the container file.
    let server = spawn_server(&[
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--checkpoint-every-ms",
        "3600000",
    ]);
    let graphs = graphs_by_name(&server.addr);
    let (_, g) = graphs
        .iter()
        .find(|(name, _)| name == "g")
        .expect("manifest graph restored");
    assert_eq!(
        g.get("backing").and_then(Json::as_str),
        Some("container"),
        "restored graph must be container-backed: {g:?}"
    );
    // Attach is a header read: nothing materialized until the solve.
    assert_eq!(g.get("resident"), Some(&Json::Bool(false)), "{g:?}");
    assert!(
        fetch_metric(&server.addr, "mpmb_checkpoint_restored_total") >= 1,
        "restart must restore the checkpointed partial"
    );
    let mut recovered = None;
    for _ in 0..2_000 {
        let (status, resp) =
            call(server.addr.as_str(), "POST", "/v1/solve", &solve_body).expect("resume");
        match status {
            503 => continue,
            200 => {
                recovered = Some(resp);
                break;
            }
            other => panic!("unexpected status {other}: {resp}"),
        }
    }
    let recovered = recovered.expect("solve never completed");
    drop(server);

    // Clean room: same request, no crash, no deadline.
    let clean = spawn_server(&["--graph", &graph_flag]);
    let uninterrupted = post_200(&clean.addr, "/v1/solve", &solve_body);
    assert_eq!(
        recovered, uninterrupted,
        "answer resumed across the crash must match an uninterrupted run byte-for-byte"
    );
    drop(clean);
    let _ = std::fs::remove_dir_all(&dir);
}
