//! §III-B live: model counting through butterfly search.
//!
//! Lemma III.1 reduces Monotone #2-SAT to computing `P(B)`: the reference
//! butterfly of the constructed network is the maximum-weighted butterfly
//! in exactly the possible worlds whose variable assignments satisfy the
//! formula, so `P(B) = #SAT(F)/2ⁿ`. This demo builds the reduction for a
//! small formula, verifies the equality with the exact engine, and then
//! *approximately counts models* with the Ordering Sampling solver — the
//! #P-hardness argument running in the forward direction.
//!
//! ```text
//! cargo run --release --example hardness_demo
//! ```

use mpmb::prelude::*;
use mpmb_core::{Monotone2Sat, Reduction};

fn main() {
    // F = (y1 ∨ y2) ∧ (y2 ∨ y3) ∧ (y4 ∨ y4) ∧ (y5 ∨ y6) over 6 variables.
    let formula = Monotone2Sat::new(6, vec![(1, 2), (2, 3), (4, 4), (5, 6)]);
    let true_count = formula.count_satisfying();
    println!(
        "formula: {} clauses over {} variables; #SAT = {true_count} / {}",
        formula.clauses().len(),
        formula.num_vars(),
        1u64 << formula.num_vars()
    );

    let reduction = Reduction::build(formula);
    println!(
        "reduction graph: {} (uncertain edges = variables)",
        GraphStats::compute(&reduction.graph)
    );
    println!(
        "reference butterfly {} with weight {} and Pr[E] = {}",
        reduction.target,
        reduction.target.weight(&reduction.graph).unwrap(),
        reduction.target.existence_prob(&reduction.graph).unwrap()
    );
    assert!(
        reduction.is_exactly_sound(),
        "this formula has no clause triangles, so the equality holds"
    );

    // Exact check: P(B) = #SAT / 2^n.
    let exact = reduction.exact_target_prob().unwrap();
    println!(
        "\nexact P(B) = {exact:.6}  (claimed #SAT/2^n = {:.6})",
        reduction.claimed_prob()
    );
    assert!((exact - reduction.claimed_prob()).abs() < 1e-12);

    // Approximate model counting by sampling.
    let trials = 60_000;
    let dist = OrderingSampling::new(OsConfig {
        trials,
        seed: 2025,
        ..Default::default()
    })
    .run(&reduction.graph);
    let est = dist.prob(&reduction.target);
    let est_count = est * (1u64 << reduction.formula.num_vars()) as f64;
    println!(
        "sampled P(B) ≈ {est:.6} over {trials} trials → estimated #SAT ≈ {est_count:.1} \
         (true {true_count})"
    );
    assert!((est_count - true_count as f64).abs() < 1.5);

    // The flip side: the paper's caveat case. Clause triangles create
    // accidental butterflies and the equality degrades to ≤.
    let triangle = Monotone2Sat::new(3, vec![(1, 2), (1, 3), (2, 3)]);
    let r2 = Reduction::build(triangle);
    let exact2 = r2.exact_target_prob().unwrap();
    println!(
        "\nclause-triangle instance: sound = {}, exact P(B) = {exact2:.4} ≤ claimed {:.4}",
        r2.is_exactly_sound(),
        r2.claimed_prob()
    );
    assert!(!r2.is_exactly_sound());
    assert!(exact2 <= r2.claimed_prob() + 1e-12);
    println!("(see mpmb_core::hardness docs for the analysis of this gap)");
}
