//! Use case 2 (§I, Fig. 3): top-10 MPMBs on the ABIDE brain-network
//! stand-in, contrasting Typical Controls (TC) with the Autism Spectrum
//! Disorder (ASD) cohort.
//!
//! The paper's observation: TC brains keep strong long-range
//! (hemisphere-crossing) connections, so their top MPMBs span *far* ROI
//! pairs and carry roughly twice the activation intensity of the ASD
//! group's. We reproduce both effects on the synthetic cohort pair.
//!
//! ```text
//! cargo run --release --example brain_network
//! ```

use datasets::abide::{self, Group};
use mpmb::prelude::*;

/// Runs top-10 MPMB on one cohort and returns (mean weight, mean P).
fn analyze(group: Group, label: &str) -> (f64, f64) {
    let g = abide::generate(1.0, group, 2026);
    let result = OrderingListingSampling::new(OlsConfig {
        prep_trials: 300,
        seed: 11,
        estimator: EstimatorKind::Optimized { trials: 30_000 },
        ..Default::default()
    })
    .run(&g);

    let top = result.top_k(10);
    println!("top-10 MPMBs, {label}:");
    let mut w_sum = 0.0;
    let mut p_sum = 0.0;
    for (i, (butterfly, p)) in top.iter().enumerate() {
        let w = butterfly.weight(&g).unwrap();
        w_sum += w;
        p_sum += p;
        let (u1, u2, v1, v2) = butterfly.vertices();
        println!(
            "  #{:<2} ROIs L{{{},{}}} × R{{{},{}}}  total distance {w:7.2}  P≈{p:.4}",
            i + 1,
            u1.index(),
            u2.index(),
            v1.index(),
            v2.index()
        );
    }
    (w_sum / top.len() as f64, p_sum / top.len() as f64)
}

fn main() {
    let (tc_w, tc_p) = analyze(Group::TypicalControls, "Typical Controls (TC)");
    println!();
    let (asd_w, asd_p) = analyze(Group::Asd, "Autism Spectrum Disorder (ASD)");

    println!("\ncohort contrast:");
    println!("  mean top-10 butterfly distance: TC {tc_w:.1} vs ASD {asd_w:.1}");
    println!("  mean top-10 probability:        TC {tc_p:.4} vs ASD {asd_p:.4}");
    println!(
        "  activation (P-weighted span):   TC/ASD ratio = {:.2}",
        (tc_w * tc_p) / (asd_w * asd_p)
    );
    // The §I claim: intensity "on average twice as high in TC compared to
    // ASD, since patients generally have weak connections between long
    // regions".
    assert!(
        tc_w * tc_p > asd_w * asd_p,
        "TC cohort should dominate long-range activation"
    );
}
