//! Uncertainty quantification around the MPMB answer: the distribution of
//! the per-world maximum butterfly weight (threshold/reliability queries)
//! and ensemble error bars on the reported probabilities.
//!
//! ```text
//! cargo run --release --example risk_analysis
//! ```

use datasets::abide::{self, Group};
use mpmb::prelude::*;
use mpmb_core::{max_weight_distribution, run_os_ensemble};

fn main() {
    let g = abide::generate(0.5, Group::TypicalControls, 11);
    println!("dataset: {}", GraphStats::compute(&g));
    println!(
        "expected butterflies per world (closed form): {:.1}",
        bigraph::expected::expected_butterfly_count(&g)
    );

    // 1. How heavy does the strongest connection pattern get?
    let dist = max_weight_distribution(&g, 20_000, 3);
    println!("\nmax butterfly weight across possible worlds:");
    println!(
        "  Pr[no butterfly at all] = {:.4}",
        dist.prob_no_butterfly()
    );
    println!("  mean w_max              = {:.1}", dist.mean());
    for q in [0.5, 0.9, 0.99] {
        match dist.quantile(q) {
            Some(w) => println!("  {:>4.0}% quantile         = {w:.1}", q * 100.0),
            None => println!("  {:>4.0}% quantile         = (no butterfly)", q * 100.0),
        }
    }
    // Threshold query: probability that some butterfly reaches 90% of the
    // heaviest possible total.
    let heavy = dist.support().last().map(|&(w, _)| w).unwrap_or(0.0);
    let t = heavy * 0.9;
    println!(
        "  Pr[w_max ≥ {t:.0} (90% of observed max)] = {:.4}",
        dist.tail_prob(t)
    );

    // 2. Error bars: how stable is the reported P(B) across replicas?
    let ensemble = run_os_ensemble(
        &g,
        &OsConfig {
            trials: 5_000,
            seed: 40,
            ..Default::default()
        },
        8,
    );
    let mean_dist = ensemble.mean_distribution();
    println!("\nensemble of {} replicas × 5,000 trials:", ensemble.runs());
    for (b, p) in mean_dist.top_k(5) {
        let e = ensemble.get(&b).unwrap();
        println!(
            "  {b}  P = {p:.4} ± {:.4}  (seen in {}/{} replicas)",
            e.std_dev,
            e.support_runs,
            ensemble.runs()
        );
    }
    println!(
        "  worst per-butterfly std dev = {:.4} — if this is too wide, raise trials \
         (Theorem IV.1) or check with mpmb_core::validate_accuracy",
        ensemble.max_std_dev()
    );
    assert!(
        ensemble.max_std_dev() < 0.05,
        "replicas unexpectedly unstable"
    );
}
