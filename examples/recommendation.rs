//! Use case 1 (§I, Fig. 2): recommendation via MPMB on a user–item
//! network, showing why cold-item weighting changes the answer.
//!
//! Alice and Bob both like two *hot* items (football, Harry Potter) with
//! high probability — the unweighted most-probable butterfly. Carol and
//! Dave share two *cold* items (skating, chess): lower probability, but
//! once cold items get a reward weight (optimized UserCF), their butterfly
//! becomes the **most probable maximum weighted** butterfly, exactly the
//! diversity effect Fig. 2 illustrates.
//!
//! ```text
//! cargo run --release --example recommendation
//! ```

use mpmb::prelude::*;

const USERS: [&str; 4] = ["Alice", "Bob", "Carol", "Dave"];
const ITEMS: [&str; 4] = ["football", "harry-potter", "skating", "chess"];

fn show(name: &str, dist: &mpmb_core::Distribution, g: &UncertainBipartiteGraph) {
    println!("{name}:");
    for (butterfly, p) in dist.top_k(3) {
        let (u1, u2, v1, v2) = butterfly.vertices();
        println!(
            "  {} & {} over {{{}, {}}}  w={}  P≈{p:.4}",
            USERS[u1.index()],
            USERS[u2.index()],
            ITEMS[v1.index()],
            ITEMS[v2.index()],
            butterfly.weight(g).unwrap(),
        );
    }
}

fn build(cold_reward: f64) -> UncertainBipartiteGraph {
    // (user, item, like-probability); hot items have high probabilities
    // because "millions of other users are also interested".
    let likes = [
        (0u32, 0u32, 0.9), // Alice–football
        (0, 1, 0.8),       // Alice–harry potter
        (1, 0, 0.8),       // Bob–football
        (1, 1, 0.9),       // Bob–harry potter
        (2, 2, 0.8),       // Carol–skating
        (2, 3, 0.8),       // Carol–chess
        (3, 2, 0.8),       // Dave–skating
        (3, 3, 0.8),       // Dave–chess
        // Cross edges making the graph connected and realistic.
        (2, 0, 0.6), // Carol also likes football
        (3, 1, 0.5), // Dave read Harry Potter
    ];
    // Item popularity = number of fans; cold items get the reward.
    let fans = |item: u32| likes.iter().filter(|&&(_, v, _)| v == item).count() as f64;
    let max_fans = (0..4).map(&fans).fold(0.0, f64::max);
    let mut b = GraphBuilder::new();
    for &(u, v, p) in &likes {
        let w = 1.0 + cold_reward * (1.0 - fans(v) / max_fans);
        b.add_edge(Left(u), Right(v), (w * 64.0).round() / 64.0, p)
            .unwrap();
    }
    b.build().unwrap()
}

fn main() {
    let cfg = OsConfig {
        trials: 60_000,
        seed: 7,
        ..Default::default()
    };

    // Unweighted: every like counts 1.0 — the hot-item butterfly wins on
    // probability (Fig. 2(a)).
    let flat = build(0.0);
    let d_flat = OrderingSampling::new(cfg).run(&flat);
    show("unweighted (hot items win)", &d_flat, &flat);
    let (top_flat, _) = d_flat.mpmb().unwrap();
    assert_eq!(
        (top_flat.u1.index(), top_flat.u2.index()),
        (0, 1),
        "expected the Alice–Bob hot butterfly"
    );

    // Cold-item reward: unpopular items weigh more (Fig. 2(b)); the
    // Carol–Dave butterfly over skating+chess becomes the MPMB despite
    // its lower probability.
    let weighted = build(1.4);
    let d_weighted = OrderingSampling::new(cfg).run(&weighted);
    show(
        "\ncold-item reward (diverse recommendation wins)",
        &d_weighted,
        &weighted,
    );
    let (top_w, p_w) = d_weighted.mpmb().unwrap();
    assert_eq!(
        (top_w.u1.index(), top_w.u2.index()),
        (2, 3),
        "expected the Carol–Dave cold butterfly"
    );

    println!(
        "\n=> recommend to {} what {} uniquely likes (and vice versa); P≈{p_w:.4}",
        USERS[top_w.u1.index()],
        USERS[top_w.u2.index()],
    );
}
