//! §VI head-to-head: the optimized shared-trial estimator (Algorithm 5)
//! vs Karp-Luby (Algorithm 4) on one candidate set — same accuracy
//! target, measured work, and the Eq. 8 ratio that predicts the outcome.
//!
//! ```text
//! cargo run --release --example estimator_duel
//! ```

use datasets::abide::{self, Group};
use mpmb::prelude::*;
use mpmb_core::{bounds, estimate_karp_luby, estimate_optimized};
use std::time::Instant;

fn main() {
    let g = abide::generate(1.0, Group::TypicalControls, 7);
    println!("dataset: {}", GraphStats::compute(&g));

    // Shared preparing phase.
    let ols = OrderingListingSampling::new(OlsConfig {
        prep_trials: 200,
        seed: 3,
        ..Default::default()
    });
    let candidates = ols.prepare(&g);
    println!("|C_MB| = {} candidates\n", candidates.len());

    // Eq. 8 prediction per candidate (mu = 0.1, like Fig. 10).
    let mu = 0.1;
    println!("Eq. 8 prediction (mu={mu}):");
    println!(
        "  balanced ratio 1/|C_MB| = {:.4}",
        bounds::balanced_ratio(candidates.len())
    );
    let mut above = 0;
    for i in 0..candidates.len() {
        let c = candidates.get(i);
        let s_i: f64 = (0..candidates.larger_count(i))
            .map(|j| g.edges_existence_prob(&candidates.residual(j, i)))
            .sum();
        let ratio = bounds::kl_over_op_ratio(c.existence_prob, s_i, mu).max(0.0);
        if ratio > bounds::balanced_ratio(candidates.len()) {
            above += 1;
        }
        if i < 8 {
            println!(
                "  cand {i}: w={:7.2} Pr[E]={:.3} S={:.3} -> N_kl/N_op = {ratio:.3}",
                c.weight, c.existence_prob, s_i
            );
        }
    }
    println!(
        "  {above}/{} candidates above the balanced line => optimized should win\n",
        candidates.len()
    );

    // The duel at equal ε–δ accuracy: optimized gets the Theorem IV.1
    // count; Karp-Luby the Eq. 8-derived dynamic counts.
    let n_op = 20_000;
    let t = Instant::now();
    let d_opt = estimate_optimized(&g, &candidates, n_op, 9);
    let opt_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let report = estimate_karp_luby(
        &g,
        &candidates,
        KlTrialPolicy::Dynamic {
            mu,
            base: n_op,
            min: 1_000,
            cap: 200_000,
        },
        9,
    );
    let kl_secs = t.elapsed().as_secs_f64();

    println!("optimized (Alg. 5): {n_op} shared trials in {opt_secs:.3}s");
    println!(
        "karp-luby (Alg. 4): {} total trials in {kl_secs:.3}s  ({:.1}x slower)",
        report.total_trials(),
        kl_secs / opt_secs.max(1e-9)
    );

    // Agreement check: the two estimates coincide within MC noise.
    let max_diff = d_opt.max_abs_diff(&report.distribution);
    println!("max |P_opt − P_kl| over candidates = {max_diff:.4}");
    assert!(max_diff < 0.05, "estimators disagree beyond tolerance");

    let (b_opt, p_opt) = d_opt.mpmb().unwrap();
    println!("\nagreed MPMB: {b_opt} with P ≈ {p_opt:.4}");
}
