//! §VII: top-k MPMB search on the MovieLens stand-in, plus a convergence
//! trace showing the Theorem IV.1 trial bound at work.
//!
//! ```text
//! cargo run --release --example topk_analysis
//! ```

use datasets::Dataset;
use mpmb::prelude::*;
use mpmb_core::ConvergenceTracker;

fn main() {
    let g = Dataset::MovieLens.generate(0.1, 99);
    println!("dataset: {}", GraphStats::compute(&g));

    // One OLS run provides both the candidate set and the ranking.
    let result = OrderingListingSampling::new(OlsConfig {
        prep_trials: 200,
        seed: 5,
        estimator: EstimatorKind::Optimized { trials: 20_000 },
        ..Default::default()
    })
    .run(&g);

    println!(
        "\ncandidate set |C_MB| = {}, top-10 MPMBs:",
        result.candidates.len()
    );
    for (i, (butterfly, p)) in result.top_k(10).iter().enumerate() {
        println!(
            "  #{:<2} {butterfly}  w={:5.1}  Pr[E]={:.4}  P≈{p:.4}",
            i + 1,
            butterfly.weight(&g).unwrap(),
            butterfly.existence_prob(&g).unwrap(),
        );
    }

    // Convergence of the top butterfly's estimate under OS, against the
    // Theorem IV.1 bound for its probability level.
    let (target, p_ref) = result.mpmb().expect("nonempty");
    let eps = 0.1;
    let delta = 0.1;
    let bound = mpmb_core::bounds::mc_trial_lower_bound(p_ref.max(1e-3), eps, delta);
    println!("\ntracking {target} (P≈{p_ref:.4}); Theorem IV.1 bound for ε=δ=0.1: N ≥ {bound:.0}");

    let trials = (bound as u64).clamp(2_000, 200_000);
    let mut tracker = ConvergenceTracker::new(target, trials / 10);
    OrderingSampling::new(OsConfig {
        trials,
        seed: 17,
        ..Default::default()
    })
    .run_with_observer(&g, &mut tracker);
    for &(n, est) in tracker.points() {
        let bar_len = (est / p_ref.max(1e-9) * 30.0).min(60.0) as usize;
        println!("  N={n:>7}  P̂={est:.4}  {}", "#".repeat(bar_len));
    }
    let final_est = tracker.estimate();
    println!(
        "final relative error at N={} : {:.1}% (ε target was {:.0}%)",
        tracker.trials(),
        (final_est - p_ref).abs() / p_ref.max(1e-9) * 100.0,
        eps * 100.0
    );
}
