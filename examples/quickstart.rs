//! Quickstart: the paper's Figure 1 network, end to end.
//!
//! Builds the 2×3 uncertain bipartite network of Fig. 1(a), computes the
//! exact `P(B)` for every butterfly (feasible here: 2⁶ worlds), and shows
//! that all three sampling solvers converge to the same MPMB.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpmb::prelude::*;

fn main() {
    // Figure 1(a): edges with (weight, probability).
    let mut b = GraphBuilder::new();
    b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap(); // (u1, v1)
    b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap(); // (u1, v2)
    b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap(); // (u1, v3)
    b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap(); // (u2, v1)
    b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap(); // (u2, v2)
    b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap(); // (u2, v3)
    let g = b.build().unwrap();
    println!("network: {}", GraphStats::compute(&g));

    // The Fig. 1(b) possible world: everything except (u1, v1).
    let mut world = PossibleWorld::full(&g);
    world.remove(g.find_edge(Left(0), Right(0)).unwrap());
    println!(
        "Fig. 1(b) world probability = {:.5} (paper: 0.02016)",
        world.probability(&g)
    );

    // Exact ground truth by possible-world enumeration (#P-hard in
    // general; fine for 6 edges).
    let exact = mpmb::mpmb_core::exact_distribution(&g, ExactConfig::default()).unwrap();
    println!("\nexact P(B) per butterfly:");
    for (butterfly, p) in exact.sorted() {
        println!(
            "  {butterfly}  w={}  P={p:.5}",
            butterfly.weight(&g).unwrap()
        );
    }

    // The three sampling solvers.
    let trials = 50_000;
    let mc = McVp::new(McVpConfig { trials, seed: 42 }).run(&g);
    let os = OrderingSampling::new(OsConfig {
        trials,
        seed: 42,
        ..Default::default()
    })
    .run(&g);
    let ols = OrderingListingSampling::new(OlsConfig {
        prep_trials: 100,
        seed: 42,
        estimator: EstimatorKind::Optimized { trials },
        ..Default::default()
    })
    .run(&g);

    let (b_exact, p_exact) = exact.mpmb().unwrap();
    println!("\nMPMB comparison (exact = {b_exact}, P = {p_exact:.5}):");
    for (name, got) in [
        ("MC-VP", mc.mpmb()),
        ("OS   ", os.mpmb()),
        ("OLS  ", ols.distribution.mpmb()),
    ] {
        let (butterfly, p) = got.expect("solver found butterflies");
        println!(
            "  {name}: {butterfly}  P ≈ {p:.5}  (abs err {:.5})",
            (p - p_exact).abs()
        );
        assert_eq!(butterfly, b_exact, "{name} disagrees with exact MPMB");
    }
    println!("\nall solvers agree with exact enumeration ✓");
}
