//! `any::<T>()` — the canonical full-domain strategy per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}
