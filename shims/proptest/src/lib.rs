//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, numeric-range and
//! tuple strategies, [`Just`], `any::<T>()`, `collection::{vec,
//! btree_set}`, and the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros. Each test runs `PROPTEST_CASES` random cases (default 32)
//! from a seed derived deterministically from the test name, so failures
//! reproduce run-to-run. Unlike real proptest there is **no shrinking**:
//! a failing case reports its case index and seed instead.

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod test_runner;

/// The imports property tests conventionally glob in.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: `#[test] fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        // `#[test]` at the call site is captured by this repetition and
        // re-emitted verbatim (capturing it separately would be ambiguous).
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), |__pt_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                let mut __pt_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                __pt_case()
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the runner can report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, with both operands in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}
