//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive size span for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a *target* size drawn from
/// `size`. Like real proptest, the target may be missed when the element
/// domain is too small to supply enough distinct values — generation
/// stops after a bounded number of duplicate draws rather than spinning.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut misses = 0usize;
        while set.len() < target && misses < 16 * target + 64 {
            if !set.insert(self.element.generate(rng)) {
                misses += 1;
            }
        }
        set
    }
}
