//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Produces random values of an output type from a [`TestRng`].
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly yields one value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
