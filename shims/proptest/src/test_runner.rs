//! Deterministic case runner and RNG for the proptest shim.

use std::fmt;

/// A failed property case (carried, not panicked, so the runner can
/// attach the case index and seed before failing the test).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64-seeded xoshiro256** — fast, solid equidistribution, and
/// fully deterministic per `(test name, case index)`.
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds all four lanes from one 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw from `[0, span)`; `span` must be positive.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let wide = x as u128 * span as u128;
            if (wide as u64) >= zone {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases per property (`PROPTEST_CASES` env override).
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// FNV-1a, so case seeds depend on the test's name but not on link order.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` for each of the configured number of cases, panicking with
/// the case index and seed on the first failure.
pub fn run(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let base = fnv1a(name);
    let n = cases();
    for i in 0..n {
        let seed = base ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::new(seed);
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}/{n} (seed {seed:#x}):\n{e}");
        }
    }
}
