//! Offline stand-in for `criterion`.
//!
//! Supports the benchmark surface this workspace uses — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `sample_size` —
//! with plain wall-clock timing and a one-line report per benchmark
//! (min/mean over samples). No statistics, no plots, no regression
//! tracking; the criterion benches stay runnable and comparable run to
//! run, which is all the repo's tier-2 flow needs offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    samples: usize,
    /// (total elapsed, iterations) recorded by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, running it `samples` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.measured = Some((start.elapsed(), self.samples as u64));
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut b);
        self.criterion.report(&self.name, &id.name, b.measured);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut b, input);
        self.criterion.report(&self.name, &id.name, b.measured);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// No-op (criterion parses CLI filters here; the shim runs everything).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: 10,
            measured: None,
        };
        f(&mut b);
        self.report("", &id.name, b.measured);
        self
    }

    fn report(&self, group: &str, name: &str, measured: Option<(Duration, u64)>) {
        let full = if group.is_empty() {
            name.to_string()
        } else {
            format!("{group}/{name}")
        };
        match measured {
            Some((total, iters)) if iters > 0 => {
                let per = total / iters as u32;
                println!("bench {full:<60} {per:>12.2?}/iter ({iters} iters)");
            }
            _ => println!("bench {full:<60} (no measurement)"),
        }
    }
}

/// Binds benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
