//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream RNG.
//!
//! This is the full ChaCha quarter-round construction (Bernstein 2008)
//! with 8 double-rounds, keyed by the 32-byte seed, zero nonce, 64-bit
//! block counter. The statistical quality is the real cipher's; only the
//! exact word-consumption order is allowed to differ from upstream
//! `rand_chacha` (nothing in this workspace depends on upstream streams).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const WORDS_PER_BLOCK: usize = 16;

/// ChaCha with 8 rounds, seeded with 32 bytes.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and counter/nonce words 12..16 of the input block.
    state: [u32; WORDS_PER_BLOCK],
    /// Keystream of the current block.
    buf: [u32; WORDS_PER_BLOCK],
    /// Next unconsumed index into `buf` (16 ⇒ exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate().take(WORDS_PER_BLOCK) {
            self.buf[i] = w.wrapping_add(self.state[i]);
        }
        // 64-bit little-endian block counter in words 12/13.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.buf[self.cursor];
        self.cursor += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; WORDS_PER_BLOCK];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            buf: [0; WORDS_PER_BLOCK],
            cursor: WORDS_PER_BLOCK,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        // 40 u32 words = 2.5 blocks; all draws must differ somewhere.
        let words: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        assert!(distinct.len() > 35, "keystream suspiciously repetitive");
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn matches_chacha_structure_not_constant() {
        // The first block of seed 0 must not be all-zero (the constants
        // guarantee diffusion even for a zero key).
        let mut r = ChaCha8Rng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
