//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the *exact* API subset it consumes: `RngCore`/`Rng`
//! with `random`/`random_range`/`random_bool`, `SeedableRng` with the
//! SplitMix64-expanded `seed_from_u64`, and the `StandardUniform`
//! distribution for primitives. Semantics follow rand 0.9 (half-open
//! float ranges, unbiased Lemire integer ranges); bit-streams are not
//! guaranteed to match upstream, and nothing in the workspace relies on
//! upstream streams — all statistical tests assert distributional
//! properties only.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution (`[0,1)` for
    /// floats, full range for integers, fair coin for `bool`).
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
        Self: Sized,
    {
        StandardUniform.sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A deterministic RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed through SplitMix64 into full seed material —
    /// same construction as `rand_core`, so low-entropy seeds (0, 1, 2…)
    /// still produce well-separated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over `[0,1)` for floats, the full
/// value range for integers, a fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardUniform;

impl Distribution<f64> for StandardUniform {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits: uniform on the 2^-53 grid of [0,1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for StandardUniform {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for StandardUniform {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Distribution<u128> for StandardUniform {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

/// Range-sampling machinery (mirrors `rand::distr::uniform`).
pub mod distr {
    /// Uniform range sampling traits.
    pub mod uniform {
        use crate::RngCore;

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            ///
            /// # Panics
            /// Panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Unbiased integer in `[0, span)` via Lemire's method.
        #[inline]
        pub(crate) fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            // Rejection zone: values below `2^64 mod span` would bias the
            // widening-multiply bucketing.
            let zone = span.wrapping_neg() % span;
            loop {
                let x = rng.next_u64();
                let wide = x as u128 * span as u128;
                if (wide as u64) >= zone {
                    return (wide >> 64) as u64;
                }
            }
        }

        macro_rules! int_range {
            ($($t:ty),* $(,)?) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample from empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(below_u64(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample from empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        if span > u64::MAX as u128 {
                            // Full 64-bit domain: every value is fair.
                            return lo.wrapping_add(rng.next_u64() as $t);
                        }
                        lo.wrapping_add(below_u64(rng, span as u64) as $t)
                    }
                }
            )*};
        }

        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range {
            ($($t:ty),* $(,)?) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample from empty range");
                        let unit = crate::unit_f64(rng) as $t;
                        let v = self.start + (self.end - self.start) * unit;
                        // Rounding can land exactly on `end`; nudge back in.
                        if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample from empty range");
                        lo + (hi - lo) * crate::unit_f64(rng) as $t
                    }
                }
            )*};
        }

        float_range!(f32, f64);
    }
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step: decorrelated enough for these tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y = r.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&y));
            let z = r.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut r = Counter(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        let mut seen_incl = [false; 3];
        for _ in 0..100 {
            seen_incl[r.random_range(0u32..=2) as usize] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut r = Counter(3);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.random_range(0u64..8) as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.125).abs() < 0.01, "bucket freq {f}");
        }
    }
}
