#![warn(missing_docs)]

//! Synthetic stand-ins for the MPMB paper's evaluation datasets.
//!
//! The paper (§VIII-A, Table III) evaluates on four uncertain bipartite
//! networks that cannot be redistributed here. Each module generates a
//! synthetic analog preserving the published *shape* — vertex/edge counts,
//! weight and probability semantics, and the degree structure the
//! algorithms' costs depend on (see DESIGN.md §3 for the substitution
//! argument):
//!
//! | Paper (Table III) | `|E|` | `|L|` | `|R|` | Stand-in |
//! |---|---|---|---|---|
//! | ABIDE | 3,364 | 58 | 58 | [`abide`] |
//! | MovieLens | 100,836 | 610 | 9,724 | [`movielens`] |
//! | Jester | 4,136,360 | 100 | 73,421 | [`jester`] |
//! | Protein | 39,471,870 | 186,773 | 186,772 | [`protein`] |
//!
//! All generators take `scale ∈ (0, 1]` (1.0 = Table III size) and a seed,
//! and are fully deterministic.

pub mod abide;
pub mod jester;
pub mod movielens;
pub mod protein;
pub mod scale;

use bigraph::UncertainBipartiteGraph;

/// The four evaluation datasets, as an enumerable handle for harnesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dataset {
    /// Brain-network stand-in (complete 58×58, distance/correlation).
    Abide,
    /// Rating network with Zipf item popularity.
    MovieLens,
    /// Extremely asymmetric dense-column rating network.
    Jester,
    /// Web-scale near-regular interaction network.
    Protein,
}

/// Published Table III sizes, used for reporting and for scaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperStats {
    /// `|E|` in Table III.
    pub edges: usize,
    /// `|L|` in Table III.
    pub left: usize,
    /// `|R|` in Table III.
    pub right: usize,
}

impl Dataset {
    /// All four datasets in the paper's order.
    pub fn all() -> [Dataset; 4] {
        [
            Dataset::Abide,
            Dataset::MovieLens,
            Dataset::Jester,
            Dataset::Protein,
        ]
    }

    /// The dataset's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Abide => "ABIDE",
            Dataset::MovieLens => "MovieLens",
            Dataset::Jester => "Jester",
            Dataset::Protein => "Protein",
        }
    }

    /// The published Table III sizes.
    pub fn paper_stats(&self) -> PaperStats {
        match self {
            Dataset::Abide => PaperStats {
                edges: 3_364,
                left: 58,
                right: 58,
            },
            Dataset::MovieLens => PaperStats {
                edges: 100_836,
                left: 610,
                right: 9_724,
            },
            Dataset::Jester => PaperStats {
                edges: 4_136_360,
                left: 100,
                right: 73_421,
            },
            Dataset::Protein => PaperStats {
                edges: 39_471_870,
                left: 186_773,
                right: 186_772,
            },
        }
    }

    /// Generates the stand-in at `scale` (1.0 = full Table III size).
    pub fn generate(&self, scale: f64, seed: u64) -> UncertainBipartiteGraph {
        match self {
            Dataset::Abide => abide::generate(scale, abide::Group::TypicalControls, seed),
            Dataset::MovieLens => movielens::generate(scale, seed),
            Dataset::Jester => jester::generate(scale, seed),
            Dataset::Protein => protein::generate(scale, seed),
        }
    }
}

/// Scales a Table III count by `scale`, flooring at `min`.
pub(crate) fn scaled(count: usize, scale: f64, min: usize) -> usize {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
    ((count as f64 * scale).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_order() {
        let names: Vec<&str> = Dataset::all().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["ABIDE", "MovieLens", "Jester", "Protein"]);
    }

    #[test]
    fn paper_stats_match_table3() {
        assert_eq!(Dataset::Jester.paper_stats().right, 73_421);
        assert_eq!(Dataset::Protein.paper_stats().edges, 39_471_870);
    }

    #[test]
    fn scaled_floors_and_rounds() {
        assert_eq!(scaled(100, 0.5, 1), 50);
        assert_eq!(scaled(3, 0.01, 2), 2);
        assert_eq!(scaled(100, 1.0, 1), 100);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn rejects_zero_scale() {
        let _ = scaled(10, 0.0, 1);
    }

    #[test]
    fn generate_dispatches_every_dataset_small() {
        for d in Dataset::all() {
            let g = d.generate(0.01, 7);
            assert!(g.num_edges() > 0, "{} empty at scale 0.01", d.name());
        }
    }
}
