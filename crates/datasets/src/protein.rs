//! STRING protein-interaction stand-in.
//!
//! The paper's largest dataset: 186,773 × 186,772 vertices and 39.5 M
//! edges derived from the STRING protein network, bipartitioned by odd/even
//! protein ids. Notably, the paper's own preprocessing *already
//! synthesizes the probabilities* — "we preprocessed this dataset to
//! randomly generate probabilities with normal distribution"
//! Normal(0.5, 0.2) — so this stand-in uses the identical probability
//! model.
//!
//! Interaction weights follow STRING's well-known **bimodal** combined-
//! score shape: a broad body of low/medium-confidence scores plus a
//! saturated high-confidence tier clustered at the top of the scale
//! (experimentally-validated interactions pile up near the 1000 cap).
//! That saturated tier produces many weight ties at the maximum — the
//! property that lets the §V-B edge-ordering pruning cut each Ordering
//! Sampling trial down to the top weight class, as the paper's Fig. 7
//! Protein results (OS finishing while MC-VP times out) require.
//!
//! Scaling keeps the paper's **average degree (~211)** constant: vertices
//! and edges both scale linearly, because the solvers' per-trial costs are
//! degree-driven (Lemmas IV.1, V.1) and a density-collapsed subsample
//! would not reproduce the paper's cost regime.

use bigraph::fx::FxHashSet;
use bigraph::generators::quantize_weight;
use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::scaled;

/// Fraction of edges in the saturated high-confidence tier.
const TOP_TIER_FRACTION: f64 = 0.04;
/// The saturated score (top of the 0–10 scale).
const TOP_SCORE: f64 = 10.0;

/// Generates the Protein stand-in at `scale` (1.0 = full Table III size:
/// 39.5 M edges — ~1.3 GB of graph; prefer small scales on laptops).
pub fn generate(scale: f64, seed: u64) -> UncertainBipartiteGraph {
    let left = scaled(186_773, scale, 8) as u32;
    let right = scaled(186_772, scale, 8) as u32;
    let edges = scaled(39_471_870, scale, 16).min(left as usize * right as usize);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9207E14);
    let mut b = GraphBuilder::with_capacity(edges);
    b.reserve_vertices(left, right);
    let mut used: FxHashSet<u64> = FxHashSet::default();
    used.reserve(edges);
    while used.len() < edges {
        let u = rng.random_range(0..left);
        let v = rng.random_range(0..right);
        if !used.insert(u as u64 * right as u64 + v as u64) {
            continue;
        }
        // Bimodal STRING-like score: saturated top tier or broad body.
        let w = if rng.random::<f64>() < TOP_TIER_FRACTION {
            TOP_SCORE
        } else {
            quantize_weight(rng.random_range(1.0..8.5))
        };
        // The paper's own model: Normal(0.5, 0.2), clamped into (0,1).
        let p = (0.5 + 0.2 * bigraph::generators::standard_normal(&mut rng)).clamp(0.01, 0.99);
        b.add_edge(Left(u), Right(v), w, p)
            .expect("pair uniqueness checked");
    }
    b.build().expect("valid Protein stand-in")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{Left, Right};

    #[test]
    fn scale_controls_size_with_constant_degree() {
        let g = generate(0.002, 1);
        assert_eq!(g.num_left(), 374);
        assert_eq!(g.num_right(), 374);
        // Edges scale linearly: average degree stays ≈ 211 like Table III.
        assert_eq!(g.num_edges(), 78_944);
        let avg_deg = g.num_edges() as f64 / g.num_left() as f64;
        assert!((avg_deg - 211.0).abs() < 10.0, "avg degree {avg_deg}");
    }

    #[test]
    fn weights_are_bimodal_with_saturated_top_tier() {
        let g = generate(0.001, 7);
        let top = g.edge_ids().filter(|&e| g.weight(e) == TOP_SCORE).count();
        let frac = top as f64 / g.num_edges() as f64;
        assert!((frac - TOP_TIER_FRACTION).abs() < 0.01, "top tier {frac}");
        // Body strictly below the saturated tier.
        assert!(g
            .edge_ids()
            .all(|e| g.weight(e) == TOP_SCORE || g.weight(e) < 8.6));
    }

    #[test]
    fn probabilities_follow_the_papers_normal_model() {
        let g = generate(0.001, 2);
        let n = g.num_edges() as f64;
        assert!(n > 5_000.0);
        let mean: f64 = g.edge_ids().map(|e| g.prob(e)).sum::<f64>() / n;
        let var: f64 = g
            .edge_ids()
            .map(|e| (g.prob(e) - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
        assert!((var.sqrt() - 0.2).abs() < 0.03, "sd={}", var.sqrt());
    }

    #[test]
    fn near_regular_degrees() {
        // Uniform edge placement ⇒ no heavy hubs (unlike MovieLens).
        let g = generate(0.001, 3);
        let max_l = (0..g.num_left())
            .map(|u| g.left_degree(Left(u as u32)))
            .max()
            .unwrap();
        let max_r = (0..g.num_right())
            .map(|v| g.right_degree(Right(v as u32)))
            .max()
            .unwrap();
        let avg = g.num_edges() as f64 / g.num_left() as f64;
        assert!(
            (max_l as f64) < avg * 8.0 + 8.0,
            "hub on left: {max_l} vs avg {avg}"
        );
        assert!((max_r as f64) < avg * 8.0 + 8.0, "hub on right: {max_r}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.0005, 4);
        let b = generate(0.0005, 4);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
            assert_eq!(a.prob(e), b.prob(e));
        }
    }
}
