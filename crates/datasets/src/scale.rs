//! Vertex-induced subsampling for the Fig. 9 scalability experiment.
//!
//! The paper evaluates scalability "by randomly choosing 25%, 50%, 75%,
//! 100% of vertices to form a new dataset": sample that fraction of each
//! side, keep the induced edges, and remap ids densely.

use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Returns the subgraph induced by a random `frac` of each side's
/// vertices. `frac = 1.0` reproduces the input (with identical ids).
///
/// # Panics
/// Panics unless `0 < frac ≤ 1`.
pub fn induced_vertex_sample(
    g: &UncertainBipartiteGraph,
    frac: f64,
    seed: u64,
) -> UncertainBipartiteGraph {
    assert!(frac > 0.0 && frac <= 1.0, "frac must be in (0,1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5CA1E);

    let pick = |n: usize, rng: &mut ChaCha8Rng| -> Vec<u32> {
        let keep = ((n as f64 * frac).round() as usize).clamp(1.min(n), n);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        // Partial Fisher–Yates, then sort the kept prefix so remapping
        // preserves relative order (stable, deterministic ids).
        for i in 0..keep {
            let j = rng.random_range(i..n);
            ids.swap(i, j);
        }
        let mut kept = ids[..keep].to_vec();
        kept.sort_unstable();
        kept
    };

    let left_kept = pick(g.num_left(), &mut rng);
    let right_kept = pick(g.num_right(), &mut rng);

    // Old id -> new dense id (u32::MAX = dropped).
    let mut left_map = vec![u32::MAX; g.num_left()];
    for (new, &old) in left_kept.iter().enumerate() {
        left_map[old as usize] = new as u32;
    }
    let mut right_map = vec![u32::MAX; g.num_right()];
    for (new, &old) in right_kept.iter().enumerate() {
        right_map[old as usize] = new as u32;
    }

    let mut b = GraphBuilder::new();
    b.reserve_vertices(left_kept.len() as u32, right_kept.len() as u32);
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        let (nu, nv) = (left_map[u.index()], right_map[v.index()]);
        if nu != u32::MAX && nv != u32::MAX {
            b.add_edge(Left(nu), Right(nv), g.weight(e), g.prob(e))
                .expect("induced edges are unique");
        }
    }
    b.build().expect("induced subgraph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    #[test]
    fn full_fraction_is_identity() {
        let g = Dataset::MovieLens.generate(0.01, 1);
        let s = induced_vertex_sample(&g, 1.0, 7);
        assert_eq!(s.num_left(), g.num_left());
        assert_eq!(s.num_right(), g.num_right());
        assert_eq!(s.num_edges(), g.num_edges());
    }

    #[test]
    fn half_fraction_halves_vertices() {
        let g = Dataset::MovieLens.generate(0.02, 2);
        let s = induced_vertex_sample(&g, 0.5, 8);
        assert_eq!(s.num_left(), g.num_left() / 2 + g.num_left() % 2);
        assert!((s.num_right() as f64 - g.num_right() as f64 * 0.5).abs() <= 1.0);
        // Induced edges: roughly frac² of the original, very loosely.
        assert!(s.num_edges() < g.num_edges());
        assert!(s.num_edges() > 0);
    }

    #[test]
    fn induced_edges_keep_weights_and_probs() {
        let g = Dataset::Abide.generate(0.1, 3);
        let s = induced_vertex_sample(&g, 0.6, 9);
        // ABIDE is complete, so the induced graph is complete too and the
        // multiset of (weight, prob) pairs is a subset of the original's.
        assert_eq!(s.num_edges(), s.num_left() * s.num_right());
        let orig: std::collections::BTreeSet<(u64, u64)> = g
            .edge_ids()
            .map(|e| (g.weight(e).to_bits(), g.prob(e).to_bits()))
            .collect();
        for e in s.edge_ids() {
            assert!(orig.contains(&(s.weight(e).to_bits(), s.prob(e).to_bits())));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = Dataset::MovieLens.generate(0.02, 4);
        let a = induced_vertex_sample(&g, 0.25, 10);
        let b = induced_vertex_sample(&g, 0.25, 10);
        assert_eq!(a.num_edges(), b.num_edges());
        let c = induced_vertex_sample(&g, 0.25, 11);
        // Different seed: almost surely a different vertex sample.
        assert!(
            a.num_edges() != c.num_edges() || {
                a.edge_ids().any(|e| a.endpoints(e) != c.endpoints(e))
            }
        );
    }

    #[test]
    #[should_panic(expected = "frac must be in (0,1]")]
    fn rejects_bad_fraction() {
        let g = Dataset::Abide.generate(0.05, 5);
        let _ = induced_vertex_sample(&g, 0.0, 0);
    }
}
