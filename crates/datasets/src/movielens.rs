//! MovieLens-small stand-in.
//!
//! The paper uses the MovieLens 100K ratings graph: 610 users × 9,724
//! movies, 100,836 ratings. **Weight = rating** (the 0.5–5.0 half-star
//! grid) and **probability = reliability**, "the relative difference
//! between the user rating and the average rating".
//!
//! The stand-in draws edges with Zipf item popularity (a few blockbusters
//! dominate — the degree skew that makes vertex-priority/edge-ordering
//! optimizations bite), assigns grid ratings with a per-item bias, and
//! derives reliability as `1 − |rating − item_mean| / 4.5` (deviation over
//! the rating range) so consensus ratings carry high-probability edges —
//! real rating data concentrates reliability near 1, which is what gives
//! the paper's Fig. 10 its positive per-candidate trial ratios.

use bigraph::fx::FxHashMap;
use bigraph::generators::{zipf_bipartite, ValueDist};
use bigraph::{GraphBuilder, UncertainBipartiteGraph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::scaled;

/// The half-star rating grid.
pub const RATING_GRID: [f64; 10] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0];

/// Generates the MovieLens stand-in at `scale` (1.0 = 610×9,724 with
/// 100,836 edges).
pub fn generate(scale: f64, seed: u64) -> UncertainBipartiteGraph {
    let users = scaled(610, scale, 4) as u32;
    let movies = scaled(9_724, scale, 8) as u32;
    let ratings = scaled(100_836, scale, 16).min(users as usize * movies as usize);

    // First pass: structure from the Zipf generator (weights/probs are
    // placeholders, replaced below once item means are known).
    let skeleton = zipf_bipartite(
        users,
        movies,
        ratings,
        1.1,
        &ValueDist::Constant(1.0),
        &ValueDist::Constant(0.5),
        seed ^ 0x0071E5,
    );

    // Per-item rating bias. Capped below the scale top so 5.0 ratings are
    // a tail event: the maximum-weight butterfly class stays contested
    // (several weight classes populate the OLS candidate set) instead of
    // collapsing into one enormous tie at 4×5.0.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0000_71E5_0001);
    let item_bias: Vec<f64> = (0..movies).map(|_| rng.random_range(1.0..3.8)).collect();

    // Draw ratings around each item's bias, clamped to the grid.
    let mut edge_rating: Vec<f64> = Vec::with_capacity(skeleton.num_edges());
    let mut item_sum: FxHashMap<u32, (f64, u32)> = FxHashMap::default();
    for e in skeleton.edge_ids() {
        let (_, v) = skeleton.endpoints(e);
        let raw = item_bias[v.index()] + bigraph::generators::standard_normal(&mut rng) * 0.8;
        let idx = RATING_GRID
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (raw - **a).abs().total_cmp(&(raw - **b).abs()))
            .map(|(i, _)| i)
            .unwrap();
        let rating = RATING_GRID[idx];
        edge_rating.push(rating);
        let entry = item_sum.entry(v.0).or_insert((0.0, 0));
        entry.0 += rating;
        entry.1 += 1;
    }

    // Second pass: reliability = 1 − |rating − item mean| / 4.5.
    let mut b = GraphBuilder::with_capacity(skeleton.num_edges());
    b.reserve_vertices(users, movies);
    for e in skeleton.edge_ids() {
        let (u, v) = skeleton.endpoints(e);
        let rating = edge_rating[e.index()];
        let (sum, cnt) = item_sum[&v.0];
        let mean = sum / cnt as f64;
        let reliability = (1.0 - (rating - mean).abs() / 4.5).clamp(0.02, 0.98);
        b.add_edge(u, v, rating, reliability)
            .expect("skeleton has no duplicates");
    }
    b.build().expect("valid MovieLens stand-in")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::Right;

    #[test]
    fn small_scale_shape() {
        let g = generate(0.02, 5);
        assert_eq!(g.num_left(), 12); // 610 * 0.02
        assert_eq!(g.num_right(), 194);
        assert_eq!(g.num_edges(), 2_017);
    }

    #[test]
    fn weights_are_on_the_rating_grid() {
        let g = generate(0.02, 6);
        for e in g.edge_ids() {
            assert!(
                RATING_GRID.contains(&g.weight(e)),
                "off-grid rating {}",
                g.weight(e)
            );
        }
    }

    #[test]
    fn probabilities_are_valid_and_varied() {
        let g = generate(0.02, 7);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for e in g.edge_ids() {
            let p = g.prob(e);
            assert!((0.0..=1.0).contains(&p));
            min = min.min(p);
            max = max.max(p);
        }
        assert!(
            max - min > 0.2,
            "degenerate reliability spread [{min},{max}]"
        );
    }

    #[test]
    fn item_popularity_is_skewed() {
        let g = generate(0.05, 8);
        let mut degs: Vec<usize> = (0..g.num_right())
            .map(|v| g.right_degree(Right(v as u32)))
            .collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = degs[..g.num_right() / 10].iter().sum();
        assert!(
            head * 100 > g.num_edges() * 25,
            "top-10% items hold only {head}/{} edges",
            g.num_edges()
        );
    }

    #[test]
    fn consensus_ratings_are_more_reliable() {
        // An edge whose rating sits at its item's mean must beat one far
        // from the mean. Verify statistically: correlation between
        // |rating − mean| and probability is strongly negative by
        // construction, so the extremes suffice.
        let g = generate(0.05, 9);
        // Recover item means from the generated graph itself.
        let mut sums: std::collections::HashMap<u32, (f64, u32)> = Default::default();
        for e in g.edge_ids() {
            let (_, v) = g.endpoints(e);
            let s = sums.entry(v.0).or_insert((0.0, 0));
            s.0 += g.weight(e);
            s.1 += 1;
        }
        for e in g.edge_ids() {
            let (_, v) = g.endpoints(e);
            let (s, c) = sums[&v.0];
            let mean = s / c as f64;
            let expect = (1.0 - (g.weight(e) - mean).abs() / 4.5).clamp(0.02, 0.98);
            assert!((g.prob(e) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.02, 11);
        let b = generate(0.02, 11);
        for e in a.edge_ids() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
            assert_eq!(a.weight(e), b.weight(e));
            assert_eq!(a.prob(e), b.prob(e));
        }
        let c = generate(0.02, 12);
        assert!(a
            .edge_ids()
            .any(|e| a.endpoints(e) != c.endpoints(e) || a.weight(e) != c.weight(e)));
    }
}
