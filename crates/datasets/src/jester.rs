//! Jester stand-in.
//!
//! Jester is the paper's most asymmetric dataset: 100 jokes (`|L|`) ×
//! 73,421 users (`|R|`) with 4.1 M ratings — every user rates over half
//! the jokes on average, so the *left* side is a set of ultra-dense hubs.
//! **Weight = rating** (Jester's continuous −10..+10 scale, shifted to
//! 0..20 since MPMB weights are non-negative and the shift is rank-
//! preserving) and **probability = reliability** as for MovieLens.
//!
//! The stand-in quantizes ratings to a coarse 0.5 grid, which produces the
//! massive weight-tie structure the paper calls out in Fig. 10(c) ("many
//! same ratios … many butterflies with the same weights").

use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::scaled;

/// Generates the Jester stand-in at `scale` (1.0 = 100×73,421 with
/// ~4.1 M edges).
pub fn generate(scale: f64, seed: u64) -> UncertainBipartiteGraph {
    let jokes = scaled(100, scale.sqrt(), 4) as u32;
    let users = scaled(73_421, scale / scale.sqrt(), 8) as u32;
    let mean_deg = (4_136_360.0 / 73_421.0) * (jokes as f64 / 100.0);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7E57E2);
    // Per-joke funniness bias drives both rating level and tie structure.
    let joke_bias: Vec<f64> = (0..jokes).map(|_| rng.random_range(4.0..16.0)).collect();

    let mut b = GraphBuilder::with_capacity((users as f64 * mean_deg) as usize);
    b.reserve_vertices(jokes, users);
    let mut jokes_rated: Vec<u32> = (0..jokes).collect();
    for user in 0..users {
        // Each user rates d distinct jokes, d ≈ N(mean, mean/3).
        let d = (mean_deg + bigraph::generators::standard_normal(&mut rng) * mean_deg / 3.0)
            .round()
            .clamp(1.0, jokes as f64) as usize;
        // Partial Fisher–Yates over the joke list.
        for i in 0..d {
            let j = rng.random_range(i..jokes as usize);
            jokes_rated.swap(i, j);
            let joke = jokes_rated[i];
            let raw =
                joke_bias[joke as usize] + bigraph::generators::standard_normal(&mut rng) * 3.0;
            // Coarse 0.5-grid quantization in [0, 20] ⇒ heavy ties.
            let rating = (raw.clamp(0.0, 20.0) * 2.0).round() / 2.0;
            let reliability =
                (1.0 - (rating - joke_bias[joke as usize]).abs() / 16.0).clamp(0.05, 0.95);
            b.add_edge(Left(joke), Right(user), rating, reliability)
                .expect("per-user jokes are distinct");
        }
    }
    b.build().expect("valid Jester stand-in")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetry_matches_table3_shape() {
        let g = generate(0.01, 1);
        assert!(g.num_left() <= 12, "|L|={}", g.num_left());
        assert!(g.num_right() > 5_000, "|R|={}", g.num_right());
        // Edge count tracks scale: ~1% of 4.1M within generous slack
        // (degree draws are stochastic).
        let e = g.num_edges() as f64;
        assert!((20_000.0..65_000.0).contains(&e), "|E|={e}");
    }

    #[test]
    fn left_side_is_ultra_dense() {
        let g = generate(0.01, 2);
        let avg_left_deg = g.num_edges() as f64 / g.num_left() as f64;
        assert!(avg_left_deg > 1_000.0, "avg left degree {avg_left_deg}");
    }

    #[test]
    fn ratings_tie_heavily() {
        let g = generate(0.005, 3);
        let mut distinct: std::collections::BTreeSet<u64> = Default::default();
        for e in g.edge_ids() {
            distinct.insert((g.weight(e) * 2.0) as u64);
        }
        // ≤ 41 possible grid points for thousands of edges.
        assert!(distinct.len() <= 41);
        assert!(g.num_edges() > distinct.len() * 20);
    }

    #[test]
    fn users_rate_distinct_jokes() {
        let g = generate(0.005, 4);
        for v in 0..g.num_right() as u32 {
            let mut seen = std::collections::HashSet::new();
            for (l, _) in g.right_neighbors(Right(v)) {
                assert!(seen.insert(l), "user {v} rated joke {l:?} twice");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.005, 5);
        let b = generate(0.005, 5);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids().take(500) {
            assert_eq!(a.endpoints(e), b.endpoints(e));
            assert_eq!(a.weight(e), b.weight(e));
        }
    }
}
