//! ABIDE brain-network stand-in.
//!
//! The paper's ABIDE dataset connects the 58 left-hemisphere and 58
//! right-hemisphere AAL Regions of Interest, one edge per ROI pair
//! (58·58 = 3,364 = Table III's `|E|`): **weight = physical distance**
//! between the regions and **probability = functional correlation**.
//!
//! The stand-in places ROIs at deterministic pseudo-random 3-D coordinates
//! in two mirrored hemisphere boxes and derives:
//!
//! * weight = Euclidean distance, quantized to the 1/64 grid;
//! * probability = a correlation that *decays with distance* plus noise —
//!   matching the neurological prior that near regions co-activate.
//!
//! §I's use case contrasts Typical Controls (TC) with Autism Spectrum
//! Disorder (ASD): *"people in the TC group have more active connections
//! between far regions, while ASD patients are lacking in long
//! connections"*. [`Group::Asd`] therefore attenuates long-range
//! probabilities harder, which is what makes the Fig. 3 top-10 MPMB
//! contrast reproducible.

use bigraph::generators::quantize_weight;
use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which ABIDE cohort to synthesize.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Group {
    /// Typical Controls: long-range connections stay probable.
    TypicalControls,
    /// Autism Spectrum Disorder: long-range probabilities attenuated.
    Asd,
}

/// Linear long-range attenuation slope (per unit of `dist / DIST_NORM`).
/// Resting-state functional correlations decline with distance but stay
/// substantial across hemispheres in typical controls; ASD cohorts show a
/// markedly steeper long-range decline (§I use case 2).
fn attenuation(group: Group) -> f64 {
    match group {
        Group::TypicalControls => 0.3,
        Group::Asd => 0.6,
    }
}

/// Normalizing distance (≈ the maximal inter-ROI distance in the
/// coordinate boxes below).
const DIST_NORM: f64 = 250.0;

/// Generates the ABIDE stand-in: a complete bipartite graph over
/// `⌈58·√scale⌉` ROIs per hemisphere (complete ⇒ edges scale with
/// `scale`), with distance weights and correlation probabilities.
pub fn generate(scale: f64, group: Group, seed: u64) -> UncertainBipartiteGraph {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
    let n = ((58.0 * scale.sqrt()).round() as u32).max(2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xAB1D_E000);

    // Hemisphere boxes: mirrored across the x = 0 plane, ~140 mm apart at
    // the far ends like a human brain's extent in MNI coordinates.
    let coords = |rng: &mut ChaCha8Rng, sign: f64| -> Vec<[f64; 3]> {
        (0..n)
            .map(|_| {
                [
                    sign * rng.random_range(8.0..70.0),
                    rng.random_range(-100.0..70.0),
                    rng.random_range(-45.0..80.0),
                ]
            })
            .collect()
    };
    let left_rois = coords(&mut rng, -1.0);
    let right_rois = coords(&mut rng, 1.0);

    let slope = attenuation(group);
    let mut b = GraphBuilder::with_capacity((n * n) as usize);
    for (i, a) in left_rois.iter().enumerate() {
        for (j, c) in right_rois.iter().enumerate() {
            let dist =
                ((a[0] - c[0]).powi(2) + (a[1] - c[1]).powi(2) + (a[2] - c[2]).powi(2)).sqrt();
            let noise: f64 = rng.random_range(-0.08..0.08);
            let p = (0.9 - slope * (dist / DIST_NORM) + noise).clamp(0.05, 0.95);
            b.add_edge(Left(i as u32), Right(j as u32), quantize_weight(dist), p)
                .expect("complete bipartite has no duplicates");
        }
    }
    b.build().expect("valid ABIDE stand-in")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table3() {
        let g = generate(1.0, Group::TypicalControls, 1);
        assert_eq!(g.num_left(), 58);
        assert_eq!(g.num_right(), 58);
        assert_eq!(g.num_edges(), 3_364);
    }

    #[test]
    fn probability_anticorrelates_with_distance() {
        let g = generate(1.0, Group::TypicalControls, 2);
        // Bucket edges into near/far by median weight; near edges must be
        // substantially more probable on average.
        let mut ws: Vec<f64> = g.edge_ids().map(|e| g.weight(e)).collect();
        ws.sort_by(f64::total_cmp);
        let median = ws[ws.len() / 2];
        let (mut near, mut far) = ((0.0, 0usize), (0.0, 0usize));
        for e in g.edge_ids() {
            if g.weight(e) < median {
                near = (near.0 + g.prob(e), near.1 + 1);
            } else {
                far = (far.0 + g.prob(e), far.1 + 1);
            }
        }
        let near_avg = near.0 / near.1 as f64;
        let far_avg = far.0 / far.1 as f64;
        // TC attenuation is deliberately mild (long-range correlations
        // stay substantial in controls); require a clear but not extreme
        // gap.
        assert!(near_avg > far_avg + 0.05, "near={near_avg} far={far_avg}");
    }

    #[test]
    fn asd_attenuates_long_range_connections() {
        // Same seed ⇒ same coordinates/distances; only probabilities
        // differ. Average long-range probability must drop for ASD.
        let tc = generate(1.0, Group::TypicalControls, 3);
        let asd = generate(1.0, Group::Asd, 3);
        assert_eq!(tc.num_edges(), asd.num_edges());
        let mut ws: Vec<f64> = tc.edge_ids().map(|e| tc.weight(e)).collect();
        ws.sort_by(f64::total_cmp);
        let q75 = ws[ws.len() * 3 / 4];
        let (mut tc_far, mut asd_far, mut cnt) = (0.0, 0.0, 0usize);
        for e in tc.edge_ids() {
            if tc.weight(e) >= q75 {
                tc_far += tc.prob(e);
                asd_far += asd.prob(e);
                cnt += 1;
            }
        }
        assert!(cnt > 100);
        assert!(
            asd_far < tc_far * 0.8,
            "ASD long-range not attenuated: {asd_far} vs {tc_far}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.5, Group::Asd, 9);
        let b = generate(0.5, Group::Asd, 9);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids() {
            assert_eq!(a.weight(e), b.weight(e));
            assert_eq!(a.prob(e), b.prob(e));
        }
    }

    #[test]
    fn small_scale_still_complete() {
        let g = generate(0.05, Group::TypicalControls, 4);
        assert_eq!(g.num_edges(), g.num_left() * g.num_right());
        assert!(g.num_left() >= 2);
    }
}
