//! Zero-dependency structured observability for the MPMB workspace.
//!
//! Three cooperating layers, all branch-cheap when disabled:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]) —
//!   atomically updated instruments registered once and rendered in the
//!   Prometheus text exposition format. Registration takes a mutex;
//!   every update afterwards is a handful of relaxed atomic ops on an
//!   `Arc` handle, so hot paths never contend on the registry lock.
//! * **Tracing** ([`span`], [`event`], the global sink) — RAII spans
//!   that emit one JSON line per operation (monotonic start, duration,
//!   thread ordinal, propagated trace id) to a runtime-selectable sink:
//!   off (the default — spans are inert), stderr, or a file.
//! * **Context** ([`ObsCtx`], [`install`]) — a thread-local carrier for
//!   the current trace id, an optional [`Profile`] accumulating a
//!   per-request/per-solve phase table, and optional [`SolverMetrics`]
//!   histograms. Parallel workers snapshot and re-install the context
//!   so spans on worker threads land in the same profile and trace.
//!
//! The crate has no dependencies (like the `shims/` precedent) and no
//! feature flags: whether anything is observed is decided at runtime,
//! and the disabled path is a thread-local flag check plus one relaxed
//! atomic load.

#![warn(missing_docs)]

mod metrics;
mod profile;
mod promtext;
mod ring;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, Registry, SolverMetrics, DEFAULT_SECONDS_BUCKETS,
    PHASE_SECONDS_BUCKETS,
};
pub use profile::{render_table, PhaseStat, Profile};
pub use promtext::merge_prometheus;
pub use ring::Ring;
pub use trace::{
    current, event, install, next_span_id, next_trace_id, observing, set_sink_file,
    set_sink_file_capped, set_sink_off, set_sink_stderr, span, span_context, thread_ord,
    trace_enabled, trace_id, trace_rotations, with_solver, CtxGuard, FieldValue, ObsCtx, Span,
    SpanContext,
};
