//! Prometheus text-format parsing and cluster federation merge.
//!
//! A coordinator scrapes each healthy worker's `/metrics` and merges
//! the exposition streams into one: per family, an **aggregate** series
//! set (counters summed, gauges maxed, histograms merged bucket-wise —
//! bucket bounds are identical across nodes by construction, every node
//! registers the same fixed-bound families) followed by the per-node
//! series with a `node` label joined on. The parser accepts exactly the
//! dialect [`crate::Registry::render`] emits (`# HELP`/`# TYPE` lines,
//! `name{labels} value` samples, `\\`/`\"`/`\n` label escapes) and
//! skips anything it cannot read — a malformed scrape degrades, never
//! panics.

use std::fmt::Write as _;

/// One parsed sample line: the full sample name (including any
/// `_bucket`/`_sum`/`_count` suffix), its labels in source order, and
/// the value.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// A family parsed from one scrape: metadata plus its samples in
/// source order.
#[derive(Debug, Clone)]
struct ParsedFamily {
    name: String,
    help: String,
    kind: String,
    samples: Vec<Sample>,
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Parses `{k="v",…}` starting after the `{`; returns the labels and
/// the rest of the line after the closing `}`.
fn parse_labels(s: &str) -> Option<(Vec<(String, String)>, &str)> {
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start_matches(',');
        if let Some(after) = rest.strip_prefix('}') {
            return Some((labels, after));
        }
        let eq = rest.find("=\"")?;
        let key = rest[..eq].to_string();
        let mut value = String::new();
        let mut chars = rest[eq + 2..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    value = rest[eq + 2..eq + 2 + i].to_string();
                    end = Some(eq + 2 + i + 1);
                    break;
                }
                _ => {}
            }
        }
        rest = &rest[end?..];
        labels.push((key, unescape_label(&value)));
    }
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (name, labels, rest) = match line.find('{') {
        Some(brace) if brace < line.find(' ').unwrap_or(usize::MAX) => {
            let (labels, rest) = parse_labels(&line[brace + 1..])?;
            (line[..brace].to_string(), labels, rest)
        }
        _ => {
            let sp = line.find(' ')?;
            (line[..sp].to_string(), Vec::new(), &line[sp..])
        }
    };
    let value: f64 = rest.trim().parse().ok()?;
    Some(Sample {
        name,
        labels,
        value,
    })
}

/// Parses one exposition stream into families. Samples that precede
/// any `# TYPE` for their family land in an implicit `untyped` family.
fn parse(text: &str) -> Vec<ParsedFamily> {
    let mut families: Vec<ParsedFamily> = Vec::new();
    let find = |families: &mut Vec<ParsedFamily>, name: &str| -> usize {
        match families.iter().position(|f| f.name == name) {
            Some(i) => i,
            None => {
                families.push(ParsedFamily {
                    name: name.to_string(),
                    help: String::new(),
                    kind: "untyped".to_string(),
                    samples: Vec::new(),
                });
                families.len() - 1
            }
        }
    };
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some((name, help)) = rest.split_once(' ') {
                let i = find(&mut families, name);
                families[i].help = help.to_string();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                let i = find(&mut families, name);
                families[i].kind = kind.to_string();
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some(sample) = parse_sample(line) else {
            continue;
        };
        // A histogram sample's family is its name minus the suffix.
        let family_name = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let base = sample.name.strip_suffix(suf)?;
                families
                    .iter()
                    .any(|f| f.name == base && f.kind == "histogram")
                    .then(|| base.to_string())
            })
            .unwrap_or_else(|| sample.name.clone());
        let i = find(&mut families, &family_name);
        families[i].samples.push(sample);
    }
    families
}

/// Aggregated state of one family across every scraped node.
struct MergedFamily {
    name: String,
    help: String,
    kind: String,
    /// Aggregate scalar series (counters summed / gauges maxed), keyed
    /// by label set in first-seen order.
    scalars: Vec<(Vec<(String, String)>, f64)>,
    /// Aggregate histogram series keyed by label set minus `le`.
    hists: Vec<HistAgg>,
    /// Raw per-node samples, `(node, sample)`, in scrape order.
    per_node: Vec<(String, Sample)>,
}

struct HistAgg {
    labels: Vec<(String, String)>,
    /// Cumulative bucket values by `le` text, in first-seen order.
    buckets: Vec<(String, f64)>,
    sum: f64,
    count: f64,
}

fn labels_without_le(labels: &[(String, String)]) -> (Vec<(String, String)>, Option<String>) {
    let mut le = None;
    let rest = labels
        .iter()
        .filter(|(k, v)| {
            if k == "le" {
                le = Some(v.clone());
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    (rest, le)
}

fn fold_sample(merged: &mut MergedFamily, node: &str, sample: &Sample) {
    merged.per_node.push((node.to_string(), sample.clone()));
    match merged.kind.as_str() {
        "counter" => {
            match merged
                .scalars
                .iter_mut()
                .find(|(labels, _)| *labels == sample.labels)
            {
                Some((_, v)) => *v += sample.value,
                None => merged.scalars.push((sample.labels.clone(), sample.value)),
            }
        }
        "histogram" => {
            let (labels, le) = labels_without_le(&sample.labels);
            let agg = match merged.hists.iter_mut().position(|h| h.labels == labels) {
                Some(i) => &mut merged.hists[i],
                None => {
                    merged.hists.push(HistAgg {
                        labels,
                        buckets: Vec::new(),
                        sum: 0.0,
                        count: 0.0,
                    });
                    merged.hists.last_mut().unwrap()
                }
            };
            if sample.name.ends_with("_bucket") {
                let le = le.unwrap_or_else(|| "+Inf".to_string());
                match agg.buckets.iter_mut().find(|(b, _)| *b == le) {
                    Some((_, v)) => *v += sample.value,
                    None => agg.buckets.push((le, sample.value)),
                }
            } else if sample.name.ends_with("_sum") {
                agg.sum += sample.value;
            } else if sample.name.ends_with("_count") {
                agg.count += sample.value;
            }
        }
        // Gauges (and anything untyped) aggregate as a max: summing a
        // worker-count gauge across nodes would be nonsense, the peak is
        // the useful cluster-level reading.
        _ => {
            match merged
                .scalars
                .iter_mut()
                .find(|(labels, _)| *labels == sample.labels)
            {
                Some((_, v)) => *v = v.max(sample.value),
                None => merged.scalars.push((sample.labels.clone(), sample.value)),
            }
        }
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], node: Option<&str>) {
    if labels.is_empty() && node.is_none() {
        return;
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(n) = node {
        parts.push(format!("node=\"{}\"", escape_label(n)));
    }
    let _ = write!(out, "{{{}}}", parts.join(","));
}

/// Merges Prometheus text scrapes from several nodes into one
/// exposition stream.
///
/// `scrapes` is `(node, text)` in membership order. Per family (first
/// seen wins the ordering and metadata), the output carries the
/// cluster aggregate first — counters summed, gauges maxed, histograms
/// merged bucket-wise per `le` — followed by every node's own series
/// re-emitted with a `node="<node>"` label appended, so dashboards can
/// show both the cluster total and the per-node breakdown from one
/// scrape.
pub fn merge_prometheus(scrapes: &[(String, String)]) -> String {
    let mut families: Vec<MergedFamily> = Vec::new();
    for (node, text) in scrapes {
        for parsed in parse(text) {
            let merged = match families.iter_mut().position(|f| f.name == parsed.name) {
                Some(i) => &mut families[i],
                None => {
                    families.push(MergedFamily {
                        name: parsed.name.clone(),
                        help: parsed.help.clone(),
                        kind: parsed.kind.clone(),
                        scalars: Vec::new(),
                        hists: Vec::new(),
                        per_node: Vec::new(),
                    });
                    families.last_mut().unwrap()
                }
            };
            for sample in &parsed.samples {
                fold_sample(merged, node, sample);
            }
        }
    }

    let mut out = String::new();
    for f in &families {
        let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
        let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind);
        for (labels, value) in &f.scalars {
            out.push_str(&f.name);
            render_labels(&mut out, labels, None);
            let _ = writeln!(out, " {value}");
        }
        for h in &f.hists {
            for (le, value) in &h.buckets {
                let mut labels = h.labels.clone();
                labels.push(("le".to_string(), le.clone()));
                let _ = write!(out, "{}_bucket", f.name);
                render_labels(&mut out, &labels, None);
                let _ = writeln!(out, " {value}");
            }
            let _ = write!(out, "{}_sum", f.name);
            render_labels(&mut out, &h.labels, None);
            let _ = writeln!(out, " {}", h.sum);
            let _ = write!(out, "{}_count", f.name);
            render_labels(&mut out, &h.labels, None);
            let _ = writeln!(out, " {}", h.count);
        }
        for (node, sample) in &f.per_node {
            out.push_str(&sample.name);
            render_labels(&mut out, &sample.labels, Some(node));
            let _ = writeln!(out, " {}", sample.value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn worker_registry(requests: u64, inflight: i64, obs: &[f64]) -> Registry {
        let r = Registry::new();
        r.counter_with("mpmb_requests_total", "Requests.", &[("endpoint", "solve")])
            .add(requests);
        r.gauge("mpmb_inflight", "In-flight requests.")
            .set(inflight);
        let h = r.histogram("mpmb_request_seconds", "Latency.", &[0.01, 0.1, 1.0]);
        for &v in obs {
            h.observe(v);
        }
        r
    }

    #[test]
    fn round_trips_own_render_format() {
        let r = worker_registry(7, 3, &[0.005, 0.5]);
        let text = r.render();
        let families = parse(&text);
        let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "mpmb_requests_total",
                "mpmb_inflight",
                "mpmb_request_seconds"
            ]
        );
        assert_eq!(families[0].kind, "counter");
        assert_eq!(
            families[0].samples[0].labels,
            vec![("endpoint".to_string(), "solve".to_string())]
        );
        assert_eq!(families[0].samples[0].value, 7.0);
        assert_eq!(families[2].kind, "histogram");
        // 3 finite buckets + +Inf + _sum + _count.
        assert_eq!(families[2].samples.len(), 6);
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_and_adds_node_labels() {
        let a = worker_registry(7, 3, &[0.005]).render();
        let b = worker_registry(5, 9, &[0.5]).render();
        let merged = merge_prometheus(&[("w1:1".to_string(), a), ("w2:2".to_string(), b)]);
        assert!(
            merged.contains("mpmb_requests_total{endpoint=\"solve\"} 12\n"),
            "counters sum:\n{merged}"
        );
        assert!(
            merged.contains("mpmb_inflight 9\n"),
            "gauges max:\n{merged}"
        );
        assert!(
            merged.contains("mpmb_requests_total{endpoint=\"solve\",node=\"w1:1\"} 7\n"),
            "per-node counter:\n{merged}"
        );
        assert!(
            merged.contains("mpmb_inflight{node=\"w2:2\"} 9\n"),
            "per-node gauge:\n{merged}"
        );
    }

    #[test]
    fn merge_folds_histograms_bucket_wise() {
        let a = worker_registry(1, 1, &[0.005, 0.005]).render();
        let b = worker_registry(1, 1, &[0.5]).render();
        let merged = merge_prometheus(&[("w1:1".to_string(), a), ("w2:2".to_string(), b)]);
        // Cumulative per le, summed across nodes: 2 obs ≤0.01 on w1,
        // 1 obs ≤1 on w2.
        assert!(merged.contains("mpmb_request_seconds_bucket{le=\"0.01\"} 2\n"));
        assert!(merged.contains("mpmb_request_seconds_bucket{le=\"1\"} 3\n"));
        assert!(merged.contains("mpmb_request_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(merged.contains("mpmb_request_seconds_count 3\n"));
        assert!(merged.contains("mpmb_request_seconds_sum 0.51\n"));
        assert!(merged.contains("mpmb_request_seconds_bucket{le=\"+Inf\",node=\"w2:2\"} 1\n"));
    }

    #[test]
    fn hostile_text_degrades_instead_of_panicking() {
        let junk = "no value line\nname{unterminated 5\n# TYPE lonely\n{} 3\nok 1.5\n";
        let merged = merge_prometheus(&[("n".to_string(), junk.to_string())]);
        assert!(merged.contains("ok 1.5\n"));
        assert!(merged.contains("ok{node=\"n\"} 1.5\n"));
        // Label values with escapes survive the round trip.
        let tricky = "# TYPE t gauge\nt{p=\"a\\\\b\\\"c\\nd\"} 1\n";
        let merged = merge_prometheus(&[("n".to_string(), tricky.to_string())]);
        assert!(merged.contains("t{p=\"a\\\\b\\\"c\\nd\"} 1\n"), "{merged}");
        assert!(merged.contains("t{p=\"a\\\\b\\\"c\\nd\",node=\"n\"} 1\n"));
    }

    #[test]
    fn empty_scrape_list_renders_empty() {
        assert_eq!(merge_prometheus(&[]), "");
    }
}
