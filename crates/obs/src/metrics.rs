//! Atomic metric instruments and a Prometheus-text registry.
//!
//! Instruments are created through a [`Registry`] and come back as
//! `Arc` handles; lookups are idempotent (same name + labels returns
//! the same instrument), so callers can pre-create handles at startup
//! for a lock-free hot path or fetch lazily from cold paths. Rendering
//! walks families in registration order and series in creation order,
//! so the exposition text is deterministic.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Latency buckets for request-scale work, in seconds (1 ms – 10 s).
pub const DEFAULT_SECONDS_BUCKETS: &[f64] = &[0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0];

/// Finer buckets for solver phases, which can be far below a
/// millisecond on small graphs (100 µs – 10 s).
pub const PHASE_SECONDS_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a free-standing counter (not registered anywhere).
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (rendered as an integer).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a free-standing gauge (not registered anywhere).
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram with atomic storage.
///
/// `bounds` are the *upper* bounds of the finite buckets, strictly
/// increasing; one extra overflow bucket catches everything above the
/// last bound (`+Inf` in the exposition format). Counts are per-bucket
/// (not cumulative) internally; rendering accumulates.
pub struct Histogram {
    bounds: Box<[f64]>,
    counts: Box<[AtomicU64]>,
    /// Sum of observed values, stored as `f64::to_bits` and updated by
    /// compare-exchange so concurrent observers never lose an add.
    sum_bits: AtomicU64,
    total: AtomicU64,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.bounds)
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    /// Creates a free-standing histogram with the given finite upper
    /// bounds (must be non-empty and strictly increasing).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.into(),
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self.bounds.partition_point(|&ub| ub < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket holding the target rank — the same estimate
    /// Prometheus' `histogram_quantile` computes. Observations landing
    /// in the overflow bucket clamp to the largest finite bound.
    /// Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).clamp(1.0, total as f64);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= rank {
                let hi = match self.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: clamp to the largest finite bound.
                    None => return self.bounds[self.bounds.len() - 1],
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                return lo + (hi - lo) * ((rank - cum as f64) / n as f64);
            }
            cum = next;
        }
        self.bounds[self.bounds.len() - 1]
    }
}

/// One registered series: a label set plus its instrument.
enum Instrument {
    Counter(Arc<Counter>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    Gauge(Arc<Gauge>),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) | Instrument::CounterFn(_) => "counter",
            Instrument::Gauge(_) | Instrument::GaugeFn(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    series: Vec<Series>,
}

/// A set of metric families rendered together as Prometheus text.
///
/// All mutation (registration) goes through one mutex; instruments are
/// returned as `Arc` handles so updates never touch the lock.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.families.lock().map(|fs| fs.len()).unwrap_or(0);
        f.debug_struct("Registry").field("families", &n).finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
        extract: impl Fn(&Instrument) -> Option<T>,
    ) -> T {
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                let instrument = make();
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind: instrument.kind(),
                    series: vec![Series {
                        labels: own_labels(labels),
                        instrument,
                    }],
                });
                let f = families.last().unwrap();
                return extract(&f.series[0].instrument)
                    .expect("freshly inserted instrument has the requested type");
            }
        };
        if let Some(s) = family.series.iter().find(|s| label_eq(&s.labels, labels)) {
            return extract(&s.instrument).unwrap_or_else(|| {
                panic!("metric {name} already registered with kind {}", family.kind)
            });
        }
        let instrument = make();
        assert_eq!(
            family.kind,
            instrument.kind(),
            "metric {name} already registered with kind {}",
            family.kind
        );
        family.series.push(Series {
            labels: own_labels(labels),
            instrument,
        });
        extract(&family.series.last().unwrap().instrument)
            .expect("freshly inserted instrument has the requested type")
    }

    /// Gets or creates an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or creates a counter with the given label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            labels,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Gets or creates a gauge with the given label set (e.g. one
    /// `mpmb_cluster_worker_up` series per cluster member).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            labels,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers a counter whose value is computed by `f` at render
    /// time (e.g. reading a process-global atomic owned elsewhere).
    /// `f` must be monotonic for the series to behave as a counter.
    pub fn counter_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.get_or_insert(
            name,
            help,
            &[],
            || Instrument::CounterFn(Box::new(f)),
            |i| match i {
                Instrument::CounterFn(_) => Some(()),
                _ => None,
            },
        )
    }

    /// Registers a gauge whose value is computed by `f` at render time
    /// (e.g. reading an allocator's peak watermark).
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        self.get_or_insert(
            name,
            help,
            &[],
            || Instrument::GaugeFn(Box::new(f)),
            |i| match i {
                Instrument::GaugeFn(_) => Some(()),
                _ => None,
            },
        )
    }

    /// Gets or creates an unlabeled histogram with the given bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Gets or creates a histogram with the given bounds and label set.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::new(bounds))),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Renders every family in the Prometheus text exposition format,
    /// families in registration order, series in creation order.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for family in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind));
            for series in &family.series {
                render_series(&mut out, &family.name, series);
            }
        }
        out
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn label_eq(owned: &[(String, String)], given: &[(&str, &str)]) -> bool {
    owned.len() == given.len()
        && owned
            .iter()
            .zip(given)
            .all(|((ok, ov), (gk, gv))| ok == gk && ov == gv)
}

/// Formats `{k="v",…}` (empty string when there are no labels). An
/// extra label, if given, is appended last (used for `le`).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    let labels = label_block(&series.labels, None);
    match &series.instrument {
        Instrument::Counter(c) => {
            out.push_str(&format!("{name}{labels} {}\n", c.get()));
        }
        Instrument::CounterFn(f) => {
            out.push_str(&format!("{name}{labels} {}\n", f()));
        }
        Instrument::Gauge(g) => {
            out.push_str(&format!("{name}{labels} {}\n", g.get()));
        }
        Instrument::GaugeFn(f) => {
            out.push_str(&format!("{name}{labels} {}\n", f()));
        }
        Instrument::Histogram(h) => {
            let counts = h.bucket_counts();
            let mut cum = 0u64;
            for (i, &ub) in h.bounds().iter().enumerate() {
                cum += counts[i];
                let le = label_block(&series.labels, Some(("le", &format_bound(ub))));
                out.push_str(&format!("{name}_bucket{le} {cum}\n"));
            }
            cum += counts[counts.len() - 1];
            let le = label_block(&series.labels, Some(("le", "+Inf")));
            out.push_str(&format!("{name}_bucket{le} {cum}\n"));
            out.push_str(&format!("{name}_sum{labels} {}\n", h.sum()));
            out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
        }
    }
}

/// Shortest decimal form of a bucket bound (`0.005`, `1`, `2.5`).
fn format_bound(b: f64) -> String {
    format!("{b}")
}

/// Handles for the solver-side metrics the trial engine records into:
/// per-phase duration and trial-count families plus engine lifecycle
/// counters. Created against a [`Registry`] (typically the serve
/// layer's) and installed into the thread-local [`crate::ObsCtx`] so
/// `Executor::advance` can record without holding a registry reference.
pub struct SolverMetrics {
    registry: Arc<Registry>,
    /// Engine runs that started from a non-empty partial (cache refine).
    pub resumes: Arc<Counter>,
    /// Engine runs stopped by cancellation (deadline / budget).
    pub cancelled: Arc<Counter>,
    /// Cancellation probes performed inside trial loops.
    pub cancel_checks: Arc<Counter>,
}

impl fmt::Debug for SolverMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverMetrics").finish_non_exhaustive()
    }
}

impl SolverMetrics {
    /// Registers the solver metric families on `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        let resumes = registry.counter(
            "mpmb_engine_resumes_total",
            "Engine runs resumed from a cached partial accumulator",
        );
        let cancelled = registry.counter(
            "mpmb_engine_cancelled_total",
            "Engine runs stopped by a deadline or trial budget",
        );
        let cancel_checks = registry.counter(
            "mpmb_engine_cancel_checks_total",
            "Cancellation probes performed inside trial loops",
        );
        SolverMetrics {
            registry,
            resumes,
            cancelled,
            cancel_checks,
        }
    }

    /// Records one completed engine phase (one `Executor::advance`).
    pub fn record_phase(&self, phase: &str, secs: f64, trials: u64) {
        self.registry
            .histogram_with(
                "mpmb_solver_phase_seconds",
                "Wall time of one engine phase run",
                PHASE_SECONDS_BUCKETS,
                &[("phase", phase)],
            )
            .observe(secs);
        self.registry
            .counter_with(
                "mpmb_solver_phase_trials_total",
                "Trials executed, by engine phase",
                &[("phase", phase)],
            )
            .add(trials);
    }

    /// Records engine lifecycle facts for one phase run.
    pub fn record_run(&self, resumed: bool, cancelled: bool, checks: u64) {
        if resumed {
            self.resumes.inc();
        }
        if cancelled {
            self.cancelled.inc();
        }
        self.cancel_checks.add(checks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("jobs_total", "Jobs");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Idempotent lookup returns the same instrument.
        assert_eq!(r.counter("jobs_total", "Jobs").get(), 3);

        let g = r.gauge("inflight", "Inflight");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn histogram_bucket_math() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.1, 0.2, 1.0, 5.0, 100.0] {
            h.observe(v);
        }
        // Upper bounds are inclusive, like Prometheus `le`.
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 106.35).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..50 {
            h.observe(3.0);
        }
        // Median rank 50 lands exactly at the top of the first bucket.
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-9);
        // Rank 95 is 45/50 of the way through the (2,4] bucket.
        assert!((h.quantile(0.95) - (2.0 + 2.0 * 0.9)).abs() < 1e-9);
        // Overflow observations clamp to the largest finite bound.
        h.observe(1e9);
        assert_eq!(h.quantile(1.0), 4.0);
        // Empty histogram.
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_empty_bounds() {
        let _ = Histogram::new(&[]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_non_increasing_bounds() {
        let _ = Histogram::new(&[1.0, 1.0, 2.0]);
    }

    #[test]
    fn quantile_with_everything_in_overflow_clamps() {
        // Every observation beyond the largest bound: any quantile can
        // only honestly report that bound.
        let h = Histogram::new(&[1.0, 10.0]);
        for _ in 0..5 {
            h.observe(1e6);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 10.0, "q={q}");
        }
    }

    #[test]
    fn quantile_clamps_q_outside_unit_interval() {
        let h = Histogram::new(&[1.0, 2.0]);
        for _ in 0..10 {
            h.observe(0.5);
        }
        // Out-of-range q behaves like its clamped endpoint, and q=0
        // still targets rank 1 (the smallest observation), not rank 0.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        assert!(h.quantile(0.0) > 0.0);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn quantile_skips_empty_buckets() {
        // First and middle buckets empty: interpolation must land in
        // the only populated bucket for every q.
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..8 {
            h.observe(3.0);
        }
        for q in [0.0, 0.25, 1.0] {
            let v = h.quantile(q);
            assert!((2.0..=4.0).contains(&v), "q={q} gave {v}");
        }
    }

    #[test]
    fn render_matches_expected_text_exactly() {
        let r = Registry::new();
        r.counter("mpmb_cache_hits_total", "Cache hits").add(7);
        r.counter_with(
            "mpmb_requests_total",
            "Requests",
            &[("endpoint", "solve"), ("status", "200")],
        )
        .add(3);
        let h = r.histogram_with(
            "mpmb_request_duration_seconds",
            "Latency",
            &[0.001, 0.01],
            &[("endpoint", "solve")],
        );
        h.observe(0.0005);
        h.observe(0.0005);
        h.observe(0.5);
        r.gauge_fn("mpmb_peak_rss_bytes", "Peak RSS", || 4096);

        let expected = "\
# HELP mpmb_cache_hits_total Cache hits
# TYPE mpmb_cache_hits_total counter
mpmb_cache_hits_total 7
# HELP mpmb_requests_total Requests
# TYPE mpmb_requests_total counter
mpmb_requests_total{endpoint=\"solve\",status=\"200\"} 3
# HELP mpmb_request_duration_seconds Latency
# TYPE mpmb_request_duration_seconds histogram
mpmb_request_duration_seconds_bucket{endpoint=\"solve\",le=\"0.001\"} 2
mpmb_request_duration_seconds_bucket{endpoint=\"solve\",le=\"0.01\"} 2
mpmb_request_duration_seconds_bucket{endpoint=\"solve\",le=\"+Inf\"} 3
mpmb_request_duration_seconds_sum{endpoint=\"solve\"} 0.501
mpmb_request_duration_seconds_count{endpoint=\"solve\"} 3
# HELP mpmb_peak_rss_bytes Peak RSS
# TYPE mpmb_peak_rss_bytes gauge
mpmb_peak_rss_bytes 4096
";
        assert_eq!(r.render(), expected);
    }

    #[test]
    fn labeled_gauges_are_distinct_series() {
        let r = Registry::new();
        let a = r.gauge_with("mpmb_cluster_worker_up", "Up", &[("worker", "a:1")]);
        let b = r.gauge_with("mpmb_cluster_worker_up", "Up", &[("worker", "b:2")]);
        a.set(1);
        b.set(0);
        // Same name+labels returns the same series.
        r.gauge_with("mpmb_cluster_worker_up", "Up", &[("worker", "a:1")])
            .set(1);
        let text = r.render();
        assert!(text.contains("mpmb_cluster_worker_up{worker=\"a:1\"} 1"));
        assert!(text.contains("mpmb_cluster_worker_up{worker=\"b:2\"} 0"));
    }

    #[test]
    #[should_panic(expected = "already registered with kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x_total", "X");
        r.gauge("x_total", "X");
    }

    #[test]
    fn concurrent_histogram_sum_is_exact() {
        let h = std::sync::Arc::new(Histogram::new(&[10.0]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.observe(1.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4000.0);
    }
}
