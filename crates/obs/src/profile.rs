//! Per-solve phase profiles: a tiny mutex-guarded aggregation of span
//! durations, keyed by phase name, carried in the thread-local
//! [`crate::ObsCtx`] for the duration of one solve or one request.

use std::fmt;
use std::sync::Mutex;

/// Aggregate statistics for one named phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase (span) name, e.g. `"ols.prepare"`.
    pub name: String,
    /// Total wall time across all runs of this phase, seconds.
    pub secs: f64,
    /// Total items (trials, butterflies, …) processed by this phase.
    pub items: u64,
    /// Number of span closures recorded for this phase.
    pub calls: u64,
}

/// A phase table accumulating closed spans, in first-seen order.
///
/// Spans record into the profile carried by the active [`crate::ObsCtx`]
/// when they drop; one profile typically spans one CLI solve or one
/// HTTP request, including any parallel workers (the context is
/// re-installed on worker threads, and recording takes a short mutex).
#[derive(Debug, Default)]
pub struct Profile {
    phases: Mutex<Vec<PhaseStat>>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Folds one closed span into the table.
    pub fn record(&self, name: &str, secs: f64, items: u64) {
        let mut phases = self.phases.lock().unwrap();
        match phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.secs += secs;
                p.items += items;
                p.calls += 1;
            }
            None => phases.push(PhaseStat {
                name: name.to_string(),
                secs,
                items,
                calls: 1,
            }),
        }
    }

    /// Folds an already-aggregated stat into the table, merging its
    /// call count (unlike [`record`](Self::record), which counts one
    /// closure). Coordinators use this to stitch a worker's returned
    /// phase table into the request's own profile.
    pub fn absorb(&self, name: &str, secs: f64, items: u64, calls: u64) {
        let mut phases = self.phases.lock().unwrap();
        match phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.secs += secs;
                p.items += items;
                p.calls += calls;
            }
            None => phases.push(PhaseStat {
                name: name.to_string(),
                secs,
                items,
                calls,
            }),
        }
    }

    /// A copy of the current table, in first-seen order.
    pub fn snapshot(&self) -> Vec<PhaseStat> {
        self.phases.lock().unwrap().clone()
    }

    /// Sum of all phase durations, seconds.
    pub fn total_secs(&self) -> f64 {
        self.phases.lock().unwrap().iter().map(|p| p.secs).sum()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.lock().unwrap().is_empty()
    }
}

/// Renders the profile as an aligned table (for `--profile` stderr
/// output): one row per phase plus a totals row.
pub fn render_table(phases: &[PhaseStat], wall_secs: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>8} {:>7}\n",
        "phase", "seconds", "items", "calls", "%wall"
    ));
    let mut total = 0.0;
    for p in phases {
        total += p.secs;
        let pct = if wall_secs > 0.0 {
            100.0 * p.secs / wall_secs
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<16} {:>12.6} {:>12} {:>8} {:>6.1}%\n",
            p.name, p.secs, p.items, p.calls, pct
        ));
    }
    let pct = if wall_secs > 0.0 {
        100.0 * total / wall_secs
    } else {
        0.0
    };
    out.push_str(&format!(
        "{:<16} {:>12.6} {:>12} {:>8} {:>6.1}%\n",
        "total", total, "", "", pct
    ));
    out
}

impl fmt::Display for PhaseStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.6}s over {} calls ({} items)",
            self.name, self.secs, self.calls, self.items
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_by_name_in_first_seen_order() {
        let p = Profile::new();
        p.record("ols.prepare", 0.5, 100);
        p.record("ols.sample", 1.0, 2000);
        p.record("ols.prepare", 0.25, 50);
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "ols.prepare");
        assert_eq!(snap[0].calls, 2);
        assert_eq!(snap[0].items, 150);
        assert!((snap[0].secs - 0.75).abs() < 1e-12);
        assert_eq!(snap[1].name, "ols.sample");
        assert!((p.total_secs() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_call_counts() {
        let p = Profile::new();
        p.record("os.sample", 0.5, 100);
        p.absorb("os.sample", 0.25, 50, 3);
        p.absorb("w1/os.sample", 0.1, 10, 2);
        let snap = p.snapshot();
        assert_eq!(snap[0].calls, 4);
        assert_eq!(snap[0].items, 150);
        assert_eq!(snap[1].name, "w1/os.sample");
        assert_eq!(snap[1].calls, 2);
    }

    #[test]
    fn table_includes_every_phase_and_total() {
        let p = Profile::new();
        p.record("count", 0.1, 10);
        let table = render_table(&p.snapshot(), 0.2);
        assert!(table.contains("count"));
        assert!(table.contains("total"));
        assert!(table.contains("50.0%"));
    }
}
