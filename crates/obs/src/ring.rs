//! A fixed-capacity ring buffer behind a mutex, used by the serve
//! layer to keep the last N solve span summaries for `/debug/trace`.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Keeps the most recent `capacity` pushed values; older entries are
/// dropped. `Clone` snapshots are taken newest-first so debug
/// endpoints show fresh work at the top.
#[derive(Debug)]
pub struct Ring<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T: Clone> Ring<T> {
    /// Creates a ring holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Ring {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Appends, evicting the oldest entry when full.
    pub fn push(&self, value: T) {
        let mut q = self.inner.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(value);
    }

    /// The retained entries, newest first.
    pub fn snapshot(&self) -> Vec<T> {
        let q = self.inner.lock().unwrap();
        q.iter().rev().cloned().collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_and_snapshots_newest_first() {
        let r = Ring::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.snapshot(), vec![4, 3, 2]);
    }
}
