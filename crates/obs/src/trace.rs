//! JSON-lines tracing spans and the thread-local observability context.
//!
//! The global sink is runtime-selectable (off / stderr / file) and
//! process-wide; the context ([`ObsCtx`]) is thread-local and carries a
//! trace id plus optional [`Profile`] / [`SolverMetrics`] handles.
//! [`span`] is inert — no clock read, no allocation — unless a sink is
//! enabled or a context is installed, so instrumented hot paths cost
//! one thread-local flag check and one relaxed atomic load when
//! observability is off.

use crate::metrics::SolverMetrics;
use crate::profile::Profile;
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Sink

const SINK_OFF: u8 = 0;
const SINK_STDERR: u8 = 1;
const SINK_FILE: u8 = 2;

static SINK_KIND: AtomicU8 = AtomicU8::new(SINK_OFF);
static SINK_FILE_HANDLE: Mutex<Option<File>> = Mutex::new(None);

/// Disables trace emission (the default). Spans still feed profiles
/// and solver metrics when a context is installed.
pub fn set_sink_off() {
    SINK_KIND.store(SINK_OFF, Ordering::Release);
    *SINK_FILE_HANDLE.lock().unwrap() = None;
}

/// Emits trace JSON lines to stderr.
pub fn set_sink_stderr() {
    *SINK_FILE_HANDLE.lock().unwrap() = None;
    SINK_KIND.store(SINK_STDERR, Ordering::Release);
}

/// Emits trace JSON lines to `path` (appending; created if missing).
pub fn set_sink_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    *SINK_FILE_HANDLE.lock().unwrap() = Some(file);
    SINK_KIND.store(SINK_FILE, Ordering::Release);
    Ok(())
}

/// True when a trace sink (stderr or file) is enabled.
pub fn trace_enabled() -> bool {
    SINK_KIND.load(Ordering::Acquire) != SINK_OFF
}

fn emit_line(line: &str) {
    match SINK_KIND.load(Ordering::Acquire) {
        SINK_STDERR => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
        SINK_FILE => {
            let mut guard = SINK_FILE_HANDLE.lock().unwrap();
            if let Some(file) = guard.as_mut() {
                let _ = writeln!(file, "{line}");
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Monotonic clock origin + thread ordinals + trace ids

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn mono_us(at: Instant) -> u64 {
    at.duration_since(origin()).as_micros() as u64
}

static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

/// A small process-unique ordinal for the calling thread (stable for
/// the thread's lifetime; used in trace lines instead of opaque OS ids).
pub fn thread_ord() -> u64 {
    THREAD_ORD.with(|t| *t)
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh process-unique trace id (e.g. `"t1f4a-000003"`).
pub fn next_trace_id() -> Arc<str> {
    let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    Arc::from(format!("t{:x}-{:06x}", std::process::id(), n).as_str())
}

// ---------------------------------------------------------------------
// Context

/// The observability context carried by a thread while it works on one
/// logical operation (a CLI solve, an HTTP request).
#[derive(Clone, Default)]
pub struct ObsCtx {
    /// Trace/request id stamped onto every span and event.
    pub trace_id: Option<Arc<str>>,
    /// Phase table closed spans aggregate into.
    pub profile: Option<Arc<Profile>>,
    /// Solver metric handles closed engine spans record into.
    pub solver: Option<Arc<SolverMetrics>>,
}

impl ObsCtx {
    fn is_empty(&self) -> bool {
        self.trace_id.is_none() && self.profile.is_none() && self.solver.is_none()
    }
}

thread_local! {
    static CTX: RefCell<ObsCtx> = RefCell::new(ObsCtx::default());
    static CTX_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Restores the previously installed context when dropped.
pub struct CtxGuard {
    prev: ObsCtx,
    prev_active: bool,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX_ACTIVE.with(|a| a.set(self.prev_active));
        CTX.with(|c| *c.borrow_mut() = std::mem::take(&mut self.prev));
    }
}

/// Installs `ctx` on the current thread until the guard drops.
/// Parallel workers call this with a clone of the spawning thread's
/// [`current`] context so their spans join the same trace and profile.
pub fn install(ctx: ObsCtx) -> CtxGuard {
    // Pin the trace clock's origin before any span starts, so the first
    // span's start/duration are measured against an origin in the past.
    let _ = origin();
    let active = !ctx.is_empty();
    let prev_active = CTX_ACTIVE.with(|a| a.replace(active));
    let prev = CTX.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx));
    CtxGuard { prev, prev_active }
}

/// A clone of the current thread's context (empty if none installed).
pub fn current() -> ObsCtx {
    if !ctx_active() {
        return ObsCtx::default();
    }
    CTX.with(|c| c.borrow().clone())
}

fn ctx_active() -> bool {
    CTX_ACTIVE.with(|a| a.get())
}

/// The current trace id, if one is installed.
pub fn trace_id() -> Option<Arc<str>> {
    if !ctx_active() {
        return None;
    }
    CTX.with(|c| c.borrow().trace_id.clone())
}

/// Runs `f` with the installed [`SolverMetrics`], if any.
pub fn with_solver(f: impl FnOnce(&SolverMetrics)) {
    if !ctx_active() {
        return;
    }
    let solver = CTX.with(|c| c.borrow().solver.clone());
    if let Some(s) = solver {
        f(&s);
    }
}

/// True when spans would do work: a sink is enabled or a context is
/// installed on this thread. Instrumented code may use this to skip
/// building expensive field values.
pub fn observing() -> bool {
    ctx_active() || trace_enabled()
}

// ---------------------------------------------------------------------
// Spans and events

/// A field value attached to a span or event.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Float (rendered with `{}`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on emission).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field(out: &mut String, key: &str, value: &FieldValue) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) => {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        FieldValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::Str(v) => push_json_str(out, v),
    }
}

fn line_prologue(kind: &str, name: &str) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"type\":");
    push_json_str(&mut out, kind);
    out.push_str(",\"name\":");
    push_json_str(&mut out, name);
    if let Some(id) = trace_id() {
        out.push_str(",\"trace\":");
        push_json_str(&mut out, &id);
    }
    let _ = write!(out, ",\"tid\":{}", thread_ord());
    out
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    items: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An RAII span. On drop it records its duration into the installed
/// profile and solver metrics and, when a sink is enabled, emits one
/// JSON line. Obtained from [`span`]; inert (a no-op shell) when
/// nothing is observing.
pub struct Span(Option<ActiveSpan>);

/// Opens a span named `name`. Names are dotted lowercase phases, e.g.
/// `"ols.prepare"`, `"http.request"`.
pub fn span(name: &'static str) -> Span {
    if !observing() {
        return Span(None);
    }
    let _ = origin();
    Span(Some(ActiveSpan {
        name,
        start: Instant::now(),
        items: 0,
        fields: Vec::new(),
    }))
}

impl Span {
    /// True when the span will record on drop (observability is on).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the item count (trials, butterflies, …) this span covers;
    /// feeds the profile's `items` column and phase trial counters.
    pub fn items(&mut self, n: u64) {
        if let Some(s) = self.0.as_mut() {
            s.items = n;
        }
    }

    /// Attaches an extra field emitted on the span's JSON line.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(s) = self.0.as_mut() {
            s.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.0.take() else { return };
        let end = Instant::now();
        let secs = end.duration_since(s.start).as_secs_f64();
        if ctx_active() {
            let profile = CTX.with(|c| c.borrow().profile.clone());
            if let Some(p) = profile {
                p.record(s.name, secs, s.items);
            }
        }
        if trace_enabled() {
            let mut line = line_prologue("span", s.name);
            let _ = write!(
                &mut line,
                ",\"start_us\":{},\"dur_us\":{},\"items\":{}",
                mono_us(s.start),
                mono_us(end).saturating_sub(mono_us(s.start)),
                s.items
            );
            for (k, v) in &s.fields {
                push_field(&mut line, k, v);
            }
            line.push('}');
            emit_line(&line);
        }
    }
}

/// Emits a point-in-time event line (no duration) when a sink is
/// enabled; a no-op otherwise.
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !trace_enabled() {
        return;
    }
    let mut line = line_prologue("event", name);
    let _ = write!(&mut line, ",\"at_us\":{}", mono_us(Instant::now()));
    for (k, v) in fields {
        push_field(&mut line, k, v);
    }
    line.push('}');
    emit_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global; tests that enable it or assert it is
    /// off serialize through this lock so parallel test threads don't
    /// observe each other's sink state.
    fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inert_span_without_sink_or_ctx() {
        let _l = sink_lock();
        let sp = span("idle.phase");
        assert!(!sp.is_active());
    }

    #[test]
    fn span_records_into_installed_profile() {
        let _l = sink_lock();
        let profile = Arc::new(Profile::new());
        let guard = install(ObsCtx {
            trace_id: Some(next_trace_id()),
            profile: Some(profile.clone()),
            solver: None,
        });
        {
            let mut sp = span("unit.phase");
            assert!(sp.is_active());
            sp.items(42);
        }
        drop(guard);
        let snap = profile.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "unit.phase");
        assert_eq!(snap[0].items, 42);
        assert_eq!(snap[0].calls, 1);
        // Context restored: spans are inert again.
        assert!(!span("unit.phase").is_active());
    }

    #[test]
    fn nested_install_restores_outer_ctx() {
        let outer = Arc::new(Profile::new());
        let inner = Arc::new(Profile::new());
        let _g1 = install(ObsCtx {
            profile: Some(outer.clone()),
            ..Default::default()
        });
        {
            let _g2 = install(ObsCtx {
                profile: Some(inner.clone()),
                ..Default::default()
            });
            span("x.y").items(1);
        }
        span("x.y").items(2);
        assert_eq!(inner.snapshot()[0].items, 1);
        assert_eq!(outer.snapshot()[0].items, 2);
    }

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert!(a.starts_with('t'));
    }

    #[test]
    fn file_sink_emits_span_lines() {
        let _l = sink_lock();
        let dir = std::env::temp_dir().join(format!("obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        set_sink_file(&path).unwrap();
        let _g = install(ObsCtx {
            trace_id: Some(Arc::from("req-123")),
            ..Default::default()
        });
        {
            let mut sp = span("sink.phase");
            sp.items(7);
            sp.field("note", "hello");
        }
        event("sink.event", &[("ok", FieldValue::Bool(true))]);
        set_sink_off();
        let text = std::fs::read_to_string(&path).unwrap();
        let span_line = text
            .lines()
            .find(|l| l.contains("\"name\":\"sink.phase\""))
            .expect("span line present");
        assert!(span_line.starts_with("{\"type\":\"span\""));
        assert!(span_line.contains("\"trace\":\"req-123\""));
        assert!(span_line.contains("\"items\":7"));
        assert!(span_line.contains("\"note\":\"hello\""));
        assert!(span_line.contains("\"dur_us\":"));
        let event_line = text
            .lines()
            .find(|l| l.contains("\"name\":\"sink.event\""))
            .expect("event line present");
        assert!(event_line.contains("\"type\":\"event\""));
        assert!(event_line.contains("\"ok\":true"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
