//! JSON-lines tracing spans and the thread-local observability context.
//!
//! The global sink is runtime-selectable (off / stderr / file) and
//! process-wide; the context ([`ObsCtx`]) is thread-local and carries a
//! trace id plus optional [`Profile`] / [`SolverMetrics`] handles.
//! [`span`] is inert — no clock read, no allocation — unless a sink is
//! enabled or a context is installed, so instrumented hot paths cost
//! one thread-local flag check and one relaxed atomic load when
//! observability is off.

use crate::metrics::SolverMetrics;
use crate::profile::Profile;
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Sink

const SINK_OFF: u8 = 0;
const SINK_STDERR: u8 = 1;
const SINK_FILE: u8 = 2;

static SINK_KIND: AtomicU8 = AtomicU8::new(SINK_OFF);
static SINK_FILE_HANDLE: Mutex<Option<FileSink>> = Mutex::new(None);
static TRACE_ROTATIONS: AtomicU64 = AtomicU64::new(0);

/// The file sink plus the bookkeeping rotation needs: where the file
/// lives, how much this process has appended, and the size cap (if any).
struct FileSink {
    file: File,
    path: PathBuf,
    written: u64,
    max_bytes: Option<u64>,
}

/// Disables trace emission (the default). Spans still feed profiles
/// and solver metrics when a context is installed.
pub fn set_sink_off() {
    SINK_KIND.store(SINK_OFF, Ordering::Release);
    *SINK_FILE_HANDLE.lock().unwrap() = None;
}

/// Emits trace JSON lines to stderr.
pub fn set_sink_stderr() {
    *SINK_FILE_HANDLE.lock().unwrap() = None;
    SINK_KIND.store(SINK_STDERR, Ordering::Release);
}

/// Emits trace JSON lines to `path` (appending; created if missing).
pub fn set_sink_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    set_sink_file_capped(path, None)
}

/// Like [`set_sink_file`], but when `max_bytes` is set the sink rotates
/// once the file exceeds it: the file is atomically renamed to
/// `<path>.1` (replacing any previous rotation) and a fresh `<path>` is
/// started, so at most two generations exist on disk. Each rotation
/// increments the process-wide counter read by [`trace_rotations`].
pub fn set_sink_file_capped(path: impl AsRef<Path>, max_bytes: Option<u64>) -> std::io::Result<()> {
    let path = path.as_ref().to_path_buf();
    let file = OpenOptions::new().create(true).append(true).open(&path)?;
    let written = file.metadata().map(|m| m.len()).unwrap_or(0);
    *SINK_FILE_HANDLE.lock().unwrap() = Some(FileSink {
        file,
        path,
        written,
        max_bytes,
    });
    SINK_KIND.store(SINK_FILE, Ordering::Release);
    Ok(())
}

/// Number of trace-file rotations performed by this process.
pub fn trace_rotations() -> u64 {
    TRACE_ROTATIONS.load(Ordering::Relaxed)
}

fn rotated_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".1");
    PathBuf::from(name)
}

/// True when a trace sink (stderr or file) is enabled.
pub fn trace_enabled() -> bool {
    SINK_KIND.load(Ordering::Acquire) != SINK_OFF
}

fn emit_line(line: &str) {
    match SINK_KIND.load(Ordering::Acquire) {
        SINK_STDERR => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
        SINK_FILE => {
            let mut guard = SINK_FILE_HANDLE.lock().unwrap();
            if let Some(sink) = guard.as_mut() {
                let _ = writeln!(sink.file, "{line}");
                sink.written += line.len() as u64 + 1;
                if sink.max_bytes.is_some_and(|max| sink.written >= max) {
                    rotate(sink);
                }
            }
        }
        _ => {}
    }
}

/// Rotates under the sink lock: rename is atomic (same directory), and
/// any I/O failure leaves tracing best-effort rather than panicking a
/// request thread. `written` resets either way so a persistent failure
/// retries once per cap's worth of output, not once per line.
fn rotate(sink: &mut FileSink) {
    let _ = sink.file.flush();
    if std::fs::rename(&sink.path, rotated_path(&sink.path)).is_ok() {
        TRACE_ROTATIONS.fetch_add(1, Ordering::Relaxed);
    }
    if let Ok(fresh) = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&sink.path)
    {
        sink.file = fresh;
    }
    sink.written = 0;
}

// ---------------------------------------------------------------------
// Monotonic clock origin + thread ordinals + trace ids

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn mono_us(at: Instant) -> u64 {
    at.duration_since(origin()).as_micros() as u64
}

static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

/// A small process-unique ordinal for the calling thread (stable for
/// the thread's lifetime; used in trace lines instead of opaque OS ids).
pub fn thread_ord() -> u64 {
    THREAD_ORD.with(|t| *t)
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh process-unique trace id (e.g. `"t1f4a-000003"`).
pub fn next_trace_id() -> Arc<str> {
    let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    Arc::from(format!("t{:x}-{:06x}", std::process::id(), n).as_str())
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh span id, unique across the processes of one cluster:
/// the pid occupies the high 32 bits, so a coordinator hop and a worker
/// hop can never collide even though each process counts from 1.
pub fn next_span_id() -> u64 {
    let n = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    ((std::process::id() as u64) << 32) | (n & 0xffff_ffff)
}

/// Where the current operation sits in a (possibly cross-node) trace
/// tree: the shared trace id, this hop's span id, and the span id of
/// the hop that dispatched to this one (absent at the root). A
/// coordinator ships its context inside each range request; the worker
/// installs a [`SpanContext::child_of`] so its trace lines carry the
/// same trace id and link back via `parent`.
#[derive(Clone, Debug)]
pub struct SpanContext {
    /// Trace id shared by every hop of the request.
    pub trace_id: Arc<str>,
    /// This hop's process-unique span id.
    pub span_id: u64,
    /// Span id of the dispatching hop, if any.
    pub parent_span_id: Option<u64>,
}

impl SpanContext {
    /// A root context for a new trace (no parent hop).
    pub fn root(trace_id: Arc<str>) -> SpanContext {
        SpanContext {
            trace_id,
            span_id: next_span_id(),
            parent_span_id: None,
        }
    }

    /// A context for a hop dispatched by the remote span `parent` of
    /// the same trace (used when the parent arrived over the wire).
    pub fn child_of(trace_id: Arc<str>, parent: u64) -> SpanContext {
        SpanContext {
            trace_id,
            span_id: next_span_id(),
            parent_span_id: Some(parent),
        }
    }

    /// A child hop of this context (fresh span id, this hop as parent).
    pub fn child(&self) -> SpanContext {
        SpanContext::child_of(Arc::clone(&self.trace_id), self.span_id)
    }
}

// ---------------------------------------------------------------------
// Context

/// The observability context carried by a thread while it works on one
/// logical operation (a CLI solve, an HTTP request).
#[derive(Clone, Default)]
pub struct ObsCtx {
    /// Trace/request id stamped onto every span and event.
    pub trace_id: Option<Arc<str>>,
    /// This hop's position in the cross-node trace tree; when set, its
    /// span/parent ids are stamped onto every span and event line.
    pub span: Option<SpanContext>,
    /// Phase table closed spans aggregate into.
    pub profile: Option<Arc<Profile>>,
    /// Solver metric handles closed engine spans record into.
    pub solver: Option<Arc<SolverMetrics>>,
}

impl ObsCtx {
    fn is_empty(&self) -> bool {
        self.trace_id.is_none()
            && self.span.is_none()
            && self.profile.is_none()
            && self.solver.is_none()
    }
}

thread_local! {
    static CTX: RefCell<ObsCtx> = RefCell::new(ObsCtx::default());
    static CTX_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Restores the previously installed context when dropped.
pub struct CtxGuard {
    prev: ObsCtx,
    prev_active: bool,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX_ACTIVE.with(|a| a.set(self.prev_active));
        CTX.with(|c| *c.borrow_mut() = std::mem::take(&mut self.prev));
    }
}

/// Installs `ctx` on the current thread until the guard drops.
/// Parallel workers call this with a clone of the spawning thread's
/// [`current`] context so their spans join the same trace and profile.
pub fn install(ctx: ObsCtx) -> CtxGuard {
    // Pin the trace clock's origin before any span starts, so the first
    // span's start/duration are measured against an origin in the past.
    let _ = origin();
    let active = !ctx.is_empty();
    let prev_active = CTX_ACTIVE.with(|a| a.replace(active));
    let prev = CTX.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx));
    CtxGuard { prev, prev_active }
}

/// A clone of the current thread's context (empty if none installed).
pub fn current() -> ObsCtx {
    if !ctx_active() {
        return ObsCtx::default();
    }
    CTX.with(|c| c.borrow().clone())
}

fn ctx_active() -> bool {
    CTX_ACTIVE.with(|a| a.get())
}

/// The current trace id, if one is installed.
pub fn trace_id() -> Option<Arc<str>> {
    if !ctx_active() {
        return None;
    }
    CTX.with(|c| c.borrow().trace_id.clone())
}

/// The current span context, if one is installed.
pub fn span_context() -> Option<SpanContext> {
    if !ctx_active() {
        return None;
    }
    CTX.with(|c| c.borrow().span.clone())
}

/// Runs `f` with the installed [`SolverMetrics`], if any.
pub fn with_solver(f: impl FnOnce(&SolverMetrics)) {
    if !ctx_active() {
        return;
    }
    let solver = CTX.with(|c| c.borrow().solver.clone());
    if let Some(s) = solver {
        f(&s);
    }
}

/// True when spans would do work: a sink is enabled or a context is
/// installed on this thread. Instrumented code may use this to skip
/// building expensive field values.
pub fn observing() -> bool {
    ctx_active() || trace_enabled()
}

// ---------------------------------------------------------------------
// Spans and events

/// A field value attached to a span or event.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Float (rendered with `{}`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on emission).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field(out: &mut String, key: &str, value: &FieldValue) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) => {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        FieldValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::Str(v) => push_json_str(out, v),
    }
}

fn line_prologue(kind: &str, name: &str) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"type\":");
    push_json_str(&mut out, kind);
    out.push_str(",\"name\":");
    push_json_str(&mut out, name);
    if let Some(id) = trace_id() {
        out.push_str(",\"trace\":");
        push_json_str(&mut out, &id);
    }
    if let Some(sc) = span_context() {
        let _ = write!(out, ",\"span\":{}", sc.span_id);
        if let Some(parent) = sc.parent_span_id {
            let _ = write!(out, ",\"parent\":{parent}");
        }
    }
    let _ = write!(out, ",\"tid\":{}", thread_ord());
    out
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    items: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An RAII span. On drop it records its duration into the installed
/// profile and solver metrics and, when a sink is enabled, emits one
/// JSON line. Obtained from [`span`]; inert (a no-op shell) when
/// nothing is observing.
pub struct Span(Option<ActiveSpan>);

/// Opens a span named `name`. Names are dotted lowercase phases, e.g.
/// `"ols.prepare"`, `"http.request"`.
pub fn span(name: &'static str) -> Span {
    if !observing() {
        return Span(None);
    }
    let _ = origin();
    Span(Some(ActiveSpan {
        name,
        start: Instant::now(),
        items: 0,
        fields: Vec::new(),
    }))
}

impl Span {
    /// True when the span will record on drop (observability is on).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the item count (trials, butterflies, …) this span covers;
    /// feeds the profile's `items` column and phase trial counters.
    pub fn items(&mut self, n: u64) {
        if let Some(s) = self.0.as_mut() {
            s.items = n;
        }
    }

    /// Attaches an extra field emitted on the span's JSON line.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(s) = self.0.as_mut() {
            s.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.0.take() else { return };
        let end = Instant::now();
        let secs = end.duration_since(s.start).as_secs_f64();
        if ctx_active() {
            let profile = CTX.with(|c| c.borrow().profile.clone());
            if let Some(p) = profile {
                p.record(s.name, secs, s.items);
            }
        }
        if trace_enabled() {
            let mut line = line_prologue("span", s.name);
            let _ = write!(
                &mut line,
                ",\"start_us\":{},\"dur_us\":{},\"items\":{}",
                mono_us(s.start),
                mono_us(end).saturating_sub(mono_us(s.start)),
                s.items
            );
            for (k, v) in &s.fields {
                push_field(&mut line, k, v);
            }
            line.push('}');
            emit_line(&line);
        }
    }
}

/// Emits a point-in-time event line (no duration) when a sink is
/// enabled; a no-op otherwise.
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !trace_enabled() {
        return;
    }
    let mut line = line_prologue("event", name);
    let _ = write!(&mut line, ",\"at_us\":{}", mono_us(Instant::now()));
    for (k, v) in fields {
        push_field(&mut line, k, v);
    }
    line.push('}');
    emit_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global; tests that enable it or assert it is
    /// off serialize through this lock so parallel test threads don't
    /// observe each other's sink state.
    fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inert_span_without_sink_or_ctx() {
        let _l = sink_lock();
        let sp = span("idle.phase");
        assert!(!sp.is_active());
    }

    #[test]
    fn span_records_into_installed_profile() {
        let _l = sink_lock();
        let profile = Arc::new(Profile::new());
        let guard = install(ObsCtx {
            trace_id: Some(next_trace_id()),
            span: None,
            profile: Some(profile.clone()),
            solver: None,
        });
        {
            let mut sp = span("unit.phase");
            assert!(sp.is_active());
            sp.items(42);
        }
        drop(guard);
        let snap = profile.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "unit.phase");
        assert_eq!(snap[0].items, 42);
        assert_eq!(snap[0].calls, 1);
        // Context restored: spans are inert again.
        assert!(!span("unit.phase").is_active());
    }

    #[test]
    fn nested_install_restores_outer_ctx() {
        let outer = Arc::new(Profile::new());
        let inner = Arc::new(Profile::new());
        let _g1 = install(ObsCtx {
            profile: Some(outer.clone()),
            ..Default::default()
        });
        {
            let _g2 = install(ObsCtx {
                profile: Some(inner.clone()),
                ..Default::default()
            });
            span("x.y").items(1);
        }
        span("x.y").items(2);
        assert_eq!(inner.snapshot()[0].items, 1);
        assert_eq!(outer.snapshot()[0].items, 2);
    }

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert!(a.starts_with('t'));
    }

    #[test]
    fn file_sink_emits_span_lines() {
        let _l = sink_lock();
        let dir = std::env::temp_dir().join(format!("obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        set_sink_file(&path).unwrap();
        let _g = install(ObsCtx {
            trace_id: Some(Arc::from("req-123")),
            ..Default::default()
        });
        {
            let mut sp = span("sink.phase");
            sp.items(7);
            sp.field("note", "hello");
        }
        event("sink.event", &[("ok", FieldValue::Bool(true))]);
        set_sink_off();
        let text = std::fs::read_to_string(&path).unwrap();
        let span_line = text
            .lines()
            .find(|l| l.contains("\"name\":\"sink.phase\""))
            .expect("span line present");
        assert!(span_line.starts_with("{\"type\":\"span\""));
        assert!(span_line.contains("\"trace\":\"req-123\""));
        assert!(span_line.contains("\"items\":7"));
        assert!(span_line.contains("\"note\":\"hello\""));
        assert!(span_line.contains("\"dur_us\":"));
        let event_line = text
            .lines()
            .find(|l| l.contains("\"name\":\"sink.event\""))
            .expect("event line present");
        assert!(event_line.contains("\"type\":\"event\""));
        assert!(event_line.contains("\"ok\":true"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn span_context_links_hops_and_stamps_lines() {
        let _l = sink_lock();
        let root = SpanContext::root(Arc::from("trace-sc"));
        assert_eq!(root.parent_span_id, None);
        let hop = SpanContext::child_of(Arc::clone(&root.trace_id), root.span_id);
        assert_eq!(hop.parent_span_id, Some(root.span_id));
        assert_ne!(hop.span_id, root.span_id);
        let grand = hop.child();
        assert_eq!(grand.parent_span_id, Some(hop.span_id));

        let dir = std::env::temp_dir().join(format!("obs-sc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        set_sink_file(&path).unwrap();
        {
            let _g = install(ObsCtx {
                trace_id: Some(Arc::clone(&hop.trace_id)),
                span: Some(hop.clone()),
                profile: None,
                solver: None,
            });
            span("hop.phase").items(1);
        }
        set_sink_off();
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("\"name\":\"hop.phase\""))
            .expect("span line present");
        assert!(
            line.contains(&format!("\"span\":{}", hop.span_id)),
            "{line}"
        );
        assert!(
            line.contains(&format!("\"parent\":{}", root.span_id)),
            "{line}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_sink_rotates_at_cap_keeping_one_generation() {
        let _l = sink_lock();
        let dir = std::env::temp_dir().join(format!("obs-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let before = trace_rotations();
        set_sink_file_capped(&path, Some(256)).unwrap();
        let _g = install(ObsCtx {
            trace_id: Some(Arc::from("rot-test")),
            span: None,
            profile: None,
            solver: None,
        });
        for _ in 0..32 {
            span("rotate.phase").items(1);
        }
        set_sink_off();
        assert!(trace_rotations() > before, "cap of 256 B forces rotation");
        let rotated = rotated_path(&path);
        assert!(rotated.exists(), "previous generation kept as .1");
        assert!(path.exists(), "live file reopened after rename");
        assert!(
            std::fs::metadata(&rotated).unwrap().len() >= 256,
            "rotation happens only past the cap"
        );
        // Every line in both generations is intact (no torn writes).
        for p in [&path, &rotated] {
            for line in std::fs::read_to_string(p).unwrap().lines() {
                assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
