//! One module per table/figure of the paper's evaluation (§VIII).
//!
//! Each experiment is a function from datasets + options to [`Table`]s,
//! so the `repro` binary only parses flags and prints, and the logic is
//! unit-testable on tiny inputs.

pub mod ablation;
pub mod adaptive;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table3;
pub mod table4;

use crate::timing::{run_budgeted, BudgetedTime};
use crate::TrialPlan;
use bigraph::{
    trial_rng, LazyEdgeSampler, PossibleWorld, UncertainBipartiteGraph, VertexPriority,
    WorldSampler,
};
use mpmb_core::{mcvp::smb_of_world, Distribution, OsConfig, OsEngine, SamplingOracle, Tally};
use std::time::Duration;

/// Shared experiment options.
#[derive(Clone, Copy, Debug)]
pub struct ExpOptions {
    /// Base RNG seed for all solvers.
    pub seed: u64,
    /// Trial counts (Table IV, possibly scaled down).
    pub plan: TrialPlan,
    /// Wall-clock budget per (method, dataset) — the stand-in for the
    /// paper's 4-hour timeout; MC-VP routinely hits it.
    pub budget: Duration,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seed: 42,
            plan: TrialPlan::default(),
            budget: Duration::from_secs(30),
        }
    }
}

/// Runs MC-VP under a wall-clock budget; returns timing and the
/// distribution over completed trials.
pub fn mcvp_budgeted(
    g: &UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
    budget: Duration,
) -> (BudgetedTime, Distribution) {
    let priority = VertexPriority::from_degrees(g);
    let mut world = PossibleWorld::empty(g.num_edges());
    let mut smb = Vec::new();
    let mut tally = Tally::new();
    let timing = run_budgeted(trials, budget, |t| {
        let mut rng = trial_rng(seed, t);
        WorldSampler::sample_into(g, &mut world, &mut rng);
        smb_of_world(g, &priority, &world, &mut smb);
        tally.record_trial(smb.iter());
    });
    (timing, tally.into_distribution())
}

/// Runs Ordering Sampling under a wall-clock budget.
pub fn os_budgeted(
    g: &UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
    budget: Duration,
) -> (BudgetedTime, Distribution) {
    let cfg = OsConfig {
        trials,
        seed,
        ..Default::default()
    };
    let mut engine = OsEngine::new(g, &cfg);
    let mut sampler = LazyEdgeSampler::new(g.num_edges());
    let mut smb = Vec::new();
    let mut tally = Tally::new();
    let timing = run_budgeted(trials, budget, |t| {
        let mut rng = trial_rng(seed, t);
        sampler.begin_trial();
        let mut oracle = SamplingOracle::new(g, &mut sampler, &mut rng);
        engine.trial(&mut oracle, &mut smb);
        tally.record_trial(smb.iter());
    });
    (timing, tally.into_distribution())
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::BenchDataset;
    use datasets::Dataset;

    /// Tiny instantiations of all four datasets for experiment tests.
    pub fn tiny_datasets() -> Vec<BenchDataset> {
        Dataset::all()
            .into_iter()
            .map(|dataset| BenchDataset {
                dataset,
                graph: dataset.generate(0.01, 3),
                scale: 0.01,
            })
            .collect()
    }

    /// A fast options profile for tests.
    pub fn fast_options() -> super::ExpOptions {
        super::ExpOptions {
            seed: 7,
            plan: crate::TrialPlan::scaled(0.01),
            budget: std::time::Duration::from_secs(5),
        }
    }

    /// A dense, high-probability graph where every preparing phase finds
    /// butterflies within a few trials — for tests that need a non-empty
    /// candidate set regardless of trial budget.
    pub fn dense_dataset() -> BenchDataset {
        use bigraph::{GraphBuilder, Left, Right};
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                // Varied weights, comfortably high probabilities.
                b.add_edge(Left(u), Right(v), ((u * 5 + v) % 7 + 1) as f64, 0.7)
                    .unwrap();
            }
        }
        BenchDataset {
            dataset: Dataset::Abide,
            graph: b.build().unwrap(),
            scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::*;

    #[test]
    fn budgeted_runners_agree_with_solvers_when_unconstrained() {
        let ds = tiny_datasets();
        let g = &ds[0].graph; // ABIDE tiny
        let (t1, d1) = mcvp_budgeted(g, 50, 9, Duration::from_secs(60));
        assert!(t1.finished());
        let d_ref = mpmb_core::McVp::new(mpmb_core::McVpConfig {
            trials: 50,
            seed: 9,
        })
        .run(g);
        assert_eq!(d1.max_abs_diff(&d_ref), 0.0);

        let (t2, d2) = os_budgeted(g, 50, 9, Duration::from_secs(60));
        assert!(t2.finished());
        let d_ref = mpmb_core::OrderingSampling::new(OsConfig {
            trials: 50,
            seed: 9,
            ..Default::default()
        })
        .run(g);
        assert_eq!(d2.max_abs_diff(&d_ref), 0.0);
    }
}
