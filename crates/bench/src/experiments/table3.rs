//! Table III: dataset statistics — generated stand-ins vs published sizes.

use crate::report::Table;
use crate::BenchDataset;
use bigraph::GraphStats;

/// Renders the Table III comparison for the given datasets.
pub fn run(datasets: &[BenchDataset]) -> Table {
    let mut t = Table::new(
        "Table III: dataset details (stand-in vs paper)",
        &[
            "dataset",
            "scale",
            "|E|",
            "|L|",
            "|R|",
            "paper |E|",
            "paper |L|",
            "paper |R|",
            "mean w",
            "mean p",
        ],
    );
    for d in datasets {
        let s = GraphStats::compute(&d.graph);
        let p = d.dataset.paper_stats();
        t.row(&[
            d.dataset.name().to_string(),
            format!("{:.3}", d.scale),
            s.num_edges.to_string(),
            s.num_left.to_string(),
            s.num_right.to_string(),
            p.edges.to_string(),
            p.left.to_string(),
            p.right.to_string(),
            format!("{:.3}", s.mean_weight),
            format!("{:.3}", s.mean_prob),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::tiny_datasets;

    #[test]
    fn one_row_per_dataset_with_paper_numbers() {
        let t = run(&tiny_datasets());
        assert_eq!(t.len(), 4);
        let rendered = t.render();
        assert!(rendered.contains("ABIDE"));
        assert!(
            rendered.contains("39471870"),
            "paper |E| for Protein missing"
        );
    }
}
