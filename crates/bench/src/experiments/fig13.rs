//! Fig. 13: peak memory consumption of the four methods per dataset.
//!
//! Requires the measuring binary to install [`memtrack::CountingAllocator`]
//! as the global allocator (the `repro` binary does); without it every
//! peak reads 0 and the table says so.

use crate::experiments::{mcvp_budgeted, os_budgeted, ExpOptions};
use crate::report::{fmt_bytes, Table};
use crate::BenchDataset;
use mpmb_core::{EstimatorKind, KlTrialPolicy, OlsConfig, OrderingListingSampling};

/// Peak bytes per method for one dataset.
#[derive(Clone, Copy, Debug)]
pub struct Fig13Row {
    /// MC-VP peak above baseline.
    pub mcvp: usize,
    /// OS peak above baseline.
    pub os: usize,
    /// OLS-KL peak above baseline.
    pub ols_kl: usize,
    /// OLS peak above baseline.
    pub ols: usize,
    /// Bytes the graph itself holds (approximate: measured at build).
    pub graph_bytes: usize,
}

/// Measures the four methods on one dataset. Trial counts are reduced —
/// peak memory is insensitive to trial count (scratch is reused across
/// trials), so a few trials capture the high-water mark.
pub fn measure(d: &BenchDataset, opts: &ExpOptions) -> Fig13Row {
    let g = &d.graph;
    let trials = opts.plan.direct_trials.clamp(1, 64);
    let (_, mcvp) = memtrack::measure_peak(|| mcvp_budgeted(g, trials, opts.seed, opts.budget));
    let (_, os) = memtrack::measure_peak(|| os_budgeted(g, trials, opts.seed, opts.budget));
    let base_cfg = OlsConfig {
        prep_trials: opts.plan.prep_trials.clamp(1, 64),
        seed: opts.seed,
        ..Default::default()
    };
    let (_, ols_kl) = memtrack::measure_peak(|| {
        OrderingListingSampling::new(OlsConfig {
            estimator: EstimatorKind::KarpLuby {
                policy: KlTrialPolicy::Fixed(opts.plan.sampling_trials.clamp(1, 256)),
            },
            ..base_cfg
        })
        .run(g)
    });
    let (_, ols) = memtrack::measure_peak(|| {
        OrderingListingSampling::new(OlsConfig {
            estimator: EstimatorKind::Optimized {
                trials: opts.plan.sampling_trials.clamp(1, 256),
            },
            ..base_cfg
        })
        .run(g)
    });
    // Rebuilding a clone approximates the graph's own footprint.
    let (clone, graph_bytes) = memtrack::measure_peak(|| g.clone());
    drop(clone);
    Fig13Row {
        mcvp,
        os,
        ols_kl,
        ols,
        graph_bytes,
    }
}

/// Renders the memory table.
pub fn run(datasets: &[BenchDataset], opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 13: peak memory above baseline (counting allocator)",
        &["dataset", "graph", "MC-VP", "OS", "OLS-KL", "OLS"],
    );
    for d in datasets {
        let r = measure(d, opts);
        t.row(&[
            d.dataset.name().to_string(),
            fmt_bytes(r.graph_bytes),
            fmt_bytes(r.mcvp),
            fmt_bytes(r.os),
            fmt_bytes(r.ols_kl),
            fmt_bytes(r.ols),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::{fast_options, tiny_datasets};

    #[test]
    fn table_shape_without_allocator() {
        // In the test binary the counting allocator is NOT installed, so
        // peaks are zero — the table must still render.
        let ds = tiny_datasets();
        let t = run(&ds[..1], &fast_options());
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("MC-VP"));
    }
}
