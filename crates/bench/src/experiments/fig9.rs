//! Fig. 9: scalability — executing time on vertex-induced subsamples of
//! 25%, 50%, 75%, 100% of each dataset.

use crate::experiments::{os_budgeted, ExpOptions};
use crate::report::Table;
use crate::timing::time_it;
use crate::BenchDataset;
use datasets::scale::induced_vertex_sample;
use mpmb_core::{EstimatorKind, KlTrialPolicy, OlsConfig, OrderingListingSampling};

/// The vertex fractions on the x-axis.
pub const FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Renders the scalability table.
pub fn run(datasets: &[BenchDataset], opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 9: executing time vs dataset scale (seconds)",
        &["dataset", "method", "25%", "50%", "75%", "100%"],
    );
    for d in datasets {
        let subgraphs: Vec<_> = FRACTIONS
            .iter()
            .map(|&f| induced_vertex_sample(&d.graph, f, opts.seed))
            .collect();

        let mut os_cells = vec![d.dataset.name().to_string(), "OS".into()];
        let mut kl_cells = vec![d.dataset.name().to_string(), "OLS-KL".into()];
        let mut opt_cells = vec![d.dataset.name().to_string(), "OLS".into()];
        for g in &subgraphs {
            let (bt, _) = os_budgeted(g, opts.plan.direct_trials, opts.seed, opts.budget);
            os_cells.push(format!("{:.3}", bt.estimated_total.as_secs_f64()));

            let base_cfg = OlsConfig {
                prep_trials: opts.plan.prep_trials,
                seed: opts.seed,
                ..Default::default()
            };
            let (_, kl_secs) = time_it(|| {
                OrderingListingSampling::new(OlsConfig {
                    estimator: EstimatorKind::KarpLuby {
                        policy: KlTrialPolicy::Dynamic {
                            mu: 0.05,
                            base: opts.plan.sampling_trials,
                            min: (opts.plan.sampling_trials / 20).max(1),
                            cap: opts.plan.sampling_trials * 10,
                        },
                    },
                    ..base_cfg
                })
                .run(g)
            });
            kl_cells.push(format!("{kl_secs:.3}"));
            let (_, opt_secs) = time_it(|| {
                OrderingListingSampling::new(OlsConfig {
                    estimator: EstimatorKind::Optimized {
                        trials: opts.plan.sampling_trials,
                    },
                    ..base_cfg
                })
                .run(g)
            });
            opt_cells.push(format!("{opt_secs:.3}"));
        }
        t.row(&os_cells);
        t.row(&kl_cells);
        t.row(&opt_cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::{fast_options, tiny_datasets};

    #[test]
    fn three_methods_four_fractions() {
        let ds = tiny_datasets();
        let t = run(&ds[..1], &fast_options());
        assert_eq!(t.len(), 3);
        assert!(t.render().contains("25%"));
    }
}
