//! Fig. 10: the per-candidate trial-number ratio `N_kl/N_op` (Eq. 8 with
//! `μ = 0.1`) against the break-even line `1/|C_MB|` (Eq. 9).
//!
//! Bars above the red line mean the optimized estimator needs *less* work
//! than Karp-Luby for that candidate at equal accuracy.

use crate::experiments::ExpOptions;
use crate::report::Table;
use crate::BenchDataset;
use mpmb_core::bounds::{balanced_ratio, kl_over_op_ratio};
use mpmb_core::{CandidateSet, OlsConfig, OrderingListingSampling};

/// The `μ` the paper uses for this figure.
pub const MU: f64 = 0.1;

/// Per-candidate ratio data for one dataset.
pub struct Fig10Data {
    /// `(weight, Pr[E(B)], S_i, ratio)` per candidate in weight order.
    pub rows: Vec<(f64, f64, f64, f64)>,
    /// The Eq. 9 break-even value `1/|C_MB|`.
    pub balanced: f64,
}

/// Computes ratios over the OLS candidate set of `g`.
pub fn compute(
    g: &bigraph::UncertainBipartiteGraph,
    prep_trials: u64,
    seed: u64,
) -> Option<Fig10Data> {
    let candidates = OrderingListingSampling::new(OlsConfig {
        prep_trials,
        seed,
        ..Default::default()
    })
    .prepare(g);
    if candidates.is_empty() {
        return None;
    }
    let rows = (0..candidates.len())
        .map(|i| {
            let c = candidates.get(i);
            let s_i = s_value(&candidates, i, g);
            (
                c.weight,
                c.existence_prob,
                s_i,
                kl_over_op_ratio(c.existence_prob, s_i, MU).max(0.0),
            )
        })
        .collect();
    Some(Fig10Data {
        rows,
        balanced: balanced_ratio(candidates.len()),
    })
}

/// `S_i = Σ_{j≤L(i)} Pr[E(B_j ∖ B_i)]` — the Algorithm 4 line 4 quantity.
fn s_value(candidates: &CandidateSet, i: usize, g: &bigraph::UncertainBipartiteGraph) -> f64 {
    (0..candidates.larger_count(i))
        .map(|j| g.edges_existence_prob(&candidates.residual(j, i)))
        .sum()
}

/// Renders the figure (capped at `max_bars` candidates per dataset to
/// keep terminal output readable).
pub fn run(datasets: &[BenchDataset], opts: &ExpOptions, max_bars: usize) -> Table {
    let mut t = Table::new(
        "Fig. 10: per-candidate trial ratio N_kl/N_op (mu=0.1) vs 1/|C_MB|",
        &[
            "dataset",
            "cand#",
            "weight",
            "Pr[E(B)]",
            "S_i",
            "ratio",
            "1/|C_MB|",
            "OLS wins?",
        ],
    );
    for d in datasets {
        let Some(data) = compute(&d.graph, opts.plan.prep_trials, opts.seed) else {
            continue;
        };
        for (i, &(w, pe, s, ratio)) in data.rows.iter().take(max_bars).enumerate() {
            t.row(&[
                d.dataset.name().to_string(),
                i.to_string(),
                format!("{w:.2}"),
                format!("{pe:.4}"),
                format!("{s:.4}"),
                format!("{ratio:.4}"),
                format!("{:.4}", data.balanced),
                if ratio > data.balanced { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::{dense_dataset, fast_options};

    #[test]
    fn heaviest_candidate_has_zero_s_and_ratio() {
        let d = dense_dataset();
        let data = compute(&d.graph, 50, 3).expect("dense graph has butterflies");
        assert_eq!(data.rows[0].2, 0.0, "S_0 must be 0");
        assert_eq!(data.rows[0].3, 0.0);
        assert!(data.balanced > 0.0);
    }

    #[test]
    fn table_renders_win_column() {
        let ds = [dense_dataset()];
        let mut opts = fast_options();
        opts.plan = crate::TrialPlan::scaled(0.5);
        let t = run(&ds, &opts, 10);
        assert!(!t.is_empty());
        assert!(t.render().contains("OLS wins?"));
    }
}
