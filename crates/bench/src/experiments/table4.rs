//! Table IV: trial numbers of the four methods in both phases, together
//! with the theoretical bounds that justify them (§VIII-B).

use crate::report::Table;
use crate::TrialPlan;
use mpmb_core::bounds::{mc_trial_lower_bound, prep_trials_for_miss_rate};

/// Renders the Table IV plan plus the bound derivations.
pub fn run(plan: &TrialPlan) -> Vec<Table> {
    let mut t = Table::new(
        "Table IV: trial numbers per method and phase",
        &["method", "preparing phase", "sampling phase"],
    );
    t.row(&["MC-VP".into(), "-".into(), plan.direct_trials.to_string()]);
    t.row(&["OS".into(), "-".into(), plan.direct_trials.to_string()]);
    t.row(&[
        "OLS-KL".into(),
        plan.prep_trials.to_string(),
        "dynamic (Eq. 8)".into(),
    ]);
    t.row(&[
        "OLS".into(),
        plan.prep_trials.to_string(),
        plan.sampling_trials.to_string(),
    ]);

    let mut bounds = Table::new(
        "Theoretical bounds behind the defaults (mu=0.05, eps=delta=0.1)",
        &["quantity", "value"],
    );
    bounds.row(&[
        "Theorem IV.1 N lower bound".into(),
        format!("{:.0}", mc_trial_lower_bound(0.05, 0.1, 0.1)),
    ]);
    bounds.row(&[
        "prep trials for 0.5% miss of P=0.05".into(),
        prep_trials_for_miss_rate(0.05, 0.005).to_string(),
    ]);
    vec![t, bounds]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_four_methods_and_bounds() {
        let tables = run(&TrialPlan::default());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 4);
        let text = tables[0].render();
        assert!(text.contains("OLS-KL"));
        assert!(text.contains("dynamic"));
        let bounds = tables[1].render();
        // ~2.4e4 Monte-Carlo bound and ~104 prep trials.
        assert!(
            bounds.contains("2396") || bounds.contains("23966"),
            "{bounds}"
        );
    }
}
