//! Fig. 11: convergence of the estimated `P(B)` for a tracked butterfly
//! as sampling-phase trials grow to **twice** the theoretical budget,
//! with the `2ε` error band (§VIII-D).
//!
//! The paper tracks a butterfly with `P(B) ≈ 0.05`; we pick the candidate
//! whose high-trial estimate is closest to 0.05.

use crate::experiments::ExpOptions;
use crate::report::Table;
use crate::BenchDataset;
use mpmb_core::{
    estimate_karp_luby, estimate_optimized, estimate_optimized_with_observer, Butterfly,
    ConvergenceTracker, KlTrialPolicy, OlsConfig, OrderingListingSampling, OsConfig,
};

/// Trial fractions of the sampling budget on the x-axis (up to 200%).
pub const FRACTIONS: [f64; 8] = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0];

/// The relative-error half-width `ε` of the band.
pub const EPSILON: f64 = 0.1;

/// Picks the tracked butterfly: the OLS candidate whose reference
/// estimate is closest to the paper's `P ≈ 0.05`, with its estimate.
pub fn pick_target(
    g: &bigraph::UncertainBipartiteGraph,
    opts: &ExpOptions,
) -> Option<(Butterfly, f64)> {
    let ols = OrderingListingSampling::new(OlsConfig {
        prep_trials: opts.plan.prep_trials,
        seed: opts.seed,
        ..Default::default()
    });
    let candidates = ols.prepare(g);
    if candidates.is_empty() {
        return None;
    }
    let reference = estimate_optimized(
        g,
        &candidates,
        opts.plan.sampling_trials.max(1_000),
        opts.seed,
    );
    reference
        .iter()
        .filter(|(_, &p)| p > 0.0)
        .min_by(|(_, &a), (_, &b)| (a - 0.05).abs().total_cmp(&(b - 0.05).abs()))
        .map(|(&b, &p)| (b, p))
}

/// Renders convergence traces for OS, OLS, and OLS-KL.
pub fn run(datasets: &[BenchDataset], opts: &ExpOptions) -> Table {
    let mut headers: Vec<String> = vec!["dataset".into(), "method".into()];
    headers.extend(FRACTIONS.iter().map(|f| format!("{:.0}%", f * 100.0)));
    headers.push("band".into());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 11: P(B) convergence over sampling-phase trials (2x budget)",
        &headers_ref,
    );

    for d in datasets {
        let g = &d.graph;
        let Some((target, reference)) = pick_target(g, opts) else {
            continue;
        };
        let n = opts.plan.sampling_trials.max(8);
        let total = n * 2;
        let every = (total / FRACTIONS.len() as u64).max(1);
        let band = format!(
            "[{:.4},{:.4}]",
            reference * (1.0 - 2.0 * EPSILON),
            reference * (1.0 + 2.0 * EPSILON)
        );
        let trace_cells = |points: &[(u64, f64)]| -> Vec<String> {
            FRACTIONS
                .iter()
                .map(|f| {
                    // Fraction f of the theoretical budget n (x-axis).
                    let want = ((n as f64 * f).round() as u64).clamp(1, total);
                    points
                        .iter()
                        .min_by_key(|(tr, _)| tr.abs_diff(want))
                        .map(|(_, p)| format!("{p:.4}"))
                        .unwrap_or_else(|| "-".into())
                })
                .collect()
        };

        // OS trace.
        let mut os_tracker = ConvergenceTracker::new(target, every);
        mpmb_core::OrderingSampling::new(OsConfig {
            trials: total,
            seed: opts.seed,
            ..Default::default()
        })
        .run_with_observer(g, &mut os_tracker);
        let mut row = vec![d.dataset.name().to_string(), "OS".into()];
        row.extend(trace_cells(os_tracker.points()));
        row.push(band.clone());
        t.row(&row);

        // OLS (optimized) trace over a shared candidate set.
        let candidates = OrderingListingSampling::new(OlsConfig {
            prep_trials: opts.plan.prep_trials,
            seed: opts.seed,
            ..Default::default()
        })
        .prepare(g);
        let mut ols_tracker = ConvergenceTracker::new(target, every);
        estimate_optimized_with_observer(g, &candidates, total, opts.seed, &mut ols_tracker);
        let mut row = vec![d.dataset.name().to_string(), "OLS".into()];
        row.extend(trace_cells(ols_tracker.points()));
        row.push(band.clone());
        t.row(&row);

        // OLS-KL: independent runs at each checkpoint (the estimator has
        // no shared-trial structure to observe).
        let mut row = vec![d.dataset.name().to_string(), "OLS-KL".into()];
        for f in FRACTIONS {
            let trials = ((n as f64 * f).round() as u64).max(1);
            let report =
                estimate_karp_luby(g, &candidates, KlTrialPolicy::Fixed(trials), opts.seed);
            row.push(format!("{:.4}", report.distribution.prob(&target)));
        }
        row.push(band);
        t.row(&row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::dense_dataset;
    use crate::TrialPlan;

    fn options() -> ExpOptions {
        ExpOptions {
            seed: 11,
            plan: TrialPlan::scaled(0.05), // 1,000 sampling trials
            budget: std::time::Duration::from_secs(10),
        }
    }

    #[test]
    fn picks_a_positive_target() {
        let d = dense_dataset();
        let (b, p) = pick_target(&d.graph, &options()).expect("dense graph has butterflies");
        assert!(p > 0.0, "{b} has zero estimate");
    }

    #[test]
    fn traces_converge_into_band_at_full_budget() {
        let ds = [dense_dataset()];
        let t = run(&ds, &options());
        assert_eq!(t.len(), 3, "OS, OLS, OLS-KL rows");
        assert!(t.render().contains("band"));
    }
}
