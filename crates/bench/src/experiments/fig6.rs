//! Fig. 6: matrix of the trial-number ratio `N_kl/N_op` (Equation 8) over
//! a grid of MPMB probability `P(B)` × existence probability `Pr[E(B)]`,
//! at `S_i = 1`.

use crate::report::Table;
use mpmb_core::bounds::kl_over_op_ratio;

/// The probability grid the figure uses on both axes.
pub const GRID: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Renders the ratio matrix. Rows = `Pr[E(B)]`, columns = `P(B)`; cells
/// with `P(B) > Pr[E(B)]` are impossible (`P(B) ≤ Pr[E(B)]` always) and
/// rendered as `-`.
pub fn run() -> Table {
    let mut headers: Vec<String> = vec!["Pr[E(B)] \\ P(B)".to_string()];
    headers.extend(GRID.iter().map(|p| format!("{p:.1}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 6: N_kl/N_op ratio matrix (Eq. 8, S_i = 1)",
        &headers_ref,
    );
    for &pe in GRID.iter().rev() {
        let mut row = vec![format!("{pe:.1}")];
        for &mu in &GRID {
            if mu > pe {
                row.push("-".into());
            } else {
                row.push(format!("{:.2}", kl_over_op_ratio(pe, 1.0, mu)));
            }
        }
        t.row(&row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_grid_rows_and_darkens_toward_corner() {
        let t = run();
        assert_eq!(t.len(), GRID.len());
        // The paper's Fig. 6: ratios grow toward high Pr[E(B)], low P(B).
        let corner = kl_over_op_ratio(0.9, 1.0, 0.1);
        let mild = kl_over_op_ratio(0.3, 1.0, 0.3);
        assert!(corner > mild);
        assert!(corner > 5.0, "corner ratio {corner}");
        // Diagonal is exactly zero: P(B) = Pr[E(B)] means the butterfly is
        // maximum whenever it exists.
        assert_eq!(kl_over_op_ratio(0.5, 1.0, 0.5), 0.0);
    }

    #[test]
    fn impossible_cells_are_masked() {
        let text = run().render();
        assert!(text.contains('-'));
    }
}
