//! Ablation study (beyond the paper): how much each Ordering Sampling
//! design choice contributes.
//!
//! Dimensions:
//! * §V-B edge-ordering pruning — off / paper's static `w̄` / this
//!   library's dynamic `w̄`;
//! * middle-side selection — the Lemma V.1 cost-proxy choice vs forcing
//!   each side.
//!
//! All variants produce identical distributions (verified in tests); the
//! table reports wall-clock only.

use crate::experiments::ExpOptions;
use crate::report::Table;
use crate::timing::run_budgeted;
use crate::BenchDataset;
use bigraph::{trial_rng, LazyEdgeSampler, Side};
use mpmb_core::{OsConfig, OsEngine, SamplingOracle, Tally};

/// The ablation variants, in presentation order.
pub fn variants() -> Vec<(&'static str, OsConfig)> {
    let base = OsConfig::default();
    vec![
        (
            "no edge ordering",
            OsConfig {
                edge_ordering: false,
                dynamic_wbar: false,
                ..base
            },
        ),
        (
            "paper w-bar",
            OsConfig {
                edge_ordering: true,
                dynamic_wbar: false,
                ..base
            },
        ),
        (
            "dynamic w-bar",
            OsConfig {
                edge_ordering: true,
                dynamic_wbar: true,
                ..base
            },
        ),
        (
            "forced left middles",
            OsConfig {
                middle_side: Some(Side::Left),
                ..base
            },
        ),
        (
            "forced right middles",
            OsConfig {
                middle_side: Some(Side::Right),
                ..base
            },
        ),
    ]
}

/// Times one OS variant on one graph under the budget.
fn time_variant(
    g: &bigraph::UncertainBipartiteGraph,
    cfg: &OsConfig,
    trials: u64,
    seed: u64,
    budget: std::time::Duration,
) -> (f64, bool) {
    let mut engine = OsEngine::new(g, cfg);
    let mut sampler = LazyEdgeSampler::new(g.num_edges());
    let mut smb = Vec::new();
    let mut tally = Tally::new();
    let bt = run_budgeted(trials, budget, |t| {
        let mut rng = trial_rng(seed, t);
        sampler.begin_trial();
        let mut oracle = SamplingOracle::new(g, &mut sampler, &mut rng);
        engine.trial(&mut oracle, &mut smb);
        tally.record_trial(smb.iter());
    });
    (bt.estimated_total.as_secs_f64(), !bt.finished())
}

/// Renders the ablation table.
pub fn run(datasets: &[BenchDataset], opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Ablation: OS design choices (seconds; * = extrapolated past budget)",
        &[
            "dataset",
            "no edge ordering",
            "paper w-bar",
            "dynamic w-bar",
            "left middles",
            "right middles",
        ],
    );
    for d in datasets {
        let mut row = vec![d.dataset.name().to_string()];
        for (_, cfg) in variants() {
            let (secs, truncated) = time_variant(
                &d.graph,
                &cfg,
                opts.plan.direct_trials,
                opts.seed,
                opts.budget,
            );
            row.push(format!("{secs:.3}{}", if truncated { "*" } else { "" }));
        }
        t.row(&row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::{dense_dataset, fast_options};
    use mpmb_core::OrderingSampling;

    #[test]
    fn all_variants_produce_identical_distributions() {
        let d = dense_dataset();
        let mut reference = None;
        for (name, cfg) in variants() {
            let dist = OrderingSampling::new(OsConfig {
                trials: 500,
                seed: 77,
                ..cfg
            })
            .run(&d.graph);
            match &reference {
                None => reference = Some(dist),
                Some(r) => assert_eq!(r.max_abs_diff(&dist), 0.0, "variant `{name}` diverged"),
            }
        }
    }

    #[test]
    fn table_has_all_variant_columns() {
        let ds = [dense_dataset()];
        let t = run(&ds, &fast_options());
        assert_eq!(t.len(), 1);
        let text = t.render();
        assert!(text.contains("dynamic w-bar"));
        assert!(text.contains("no edge ordering"));
    }
}
