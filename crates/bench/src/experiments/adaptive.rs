//! Adaptive vs fixed trial counts (beyond the paper): how many trials the
//! Theorem IV.1-driven stopping rule actually needs per dataset, compared
//! with the fixed Table IV budget.

use crate::experiments::ExpOptions;
use crate::report::Table;
use crate::timing::time_it;
use crate::BenchDataset;
use mpmb_core::{run_os_adaptive, AdaptiveConfig};

/// Renders the adaptive-stopping comparison.
pub fn run(datasets: &[BenchDataset], opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Adaptive stopping (eps=delta=0.1) vs fixed trial budget",
        &[
            "dataset",
            "fixed trials",
            "adaptive trials",
            "bound met?",
            "P(MPMB) est",
            "time (s)",
        ],
    );
    for d in datasets {
        let cfg = AdaptiveConfig {
            epsilon: 0.1,
            delta: 0.1,
            batch: (opts.plan.direct_trials / 10).max(100),
            max_trials: opts.plan.direct_trials * 20,
            seed: opts.seed,
            ..Default::default()
        };
        let (result, secs) = time_it(|| run_os_adaptive(&d.graph, &cfg));
        t.row(&[
            d.dataset.name().to_string(),
            opts.plan.direct_trials.to_string(),
            result.trials_used.to_string(),
            if result.bound_satisfied {
                "yes"
            } else {
                "no (cap)"
            }
            .to_string(),
            result
                .target
                .map(|(_, p)| format!("{p:.4}"))
                .unwrap_or_else(|| "-".into()),
            format!("{secs:.3}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::{dense_dataset, fast_options};

    #[test]
    fn adaptive_table_reports_trials_and_bound() {
        let ds = [dense_dataset()];
        let mut opts = fast_options();
        // The dense graph's MPMB has P ≈ 0.25; Theorem IV.1 at ε=δ=0.1
        // needs ~4,800 trials, so give the cap (20× direct) headroom.
        opts.plan = crate::TrialPlan::scaled(0.05);
        let t = run(&ds, &opts);
        assert_eq!(t.len(), 1);
        let text = t.render();
        assert!(text.contains("bound met?"));
        // The dense test graph has a high-probability MPMB, so the rule
        // stops well before the cap.
        assert!(text.contains("yes"), "{text}");
    }
}
