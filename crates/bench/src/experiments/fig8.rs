//! Fig. 8: executing time split by phase, with the sampling-phase trial
//! count varied over 0% (preparing only), 25%, 50%, 75%, 100%.

use crate::experiments::{os_budgeted, ExpOptions};
use crate::report::Table;
use crate::timing::time_it;
use crate::BenchDataset;
use mpmb_core::{
    estimate_karp_luby, estimate_optimized, KlTrialPolicy, OlsConfig, OrderingListingSampling,
};

/// The sampling-phase fractions on the x-axis.
pub const FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Renders the phase-split timing table.
pub fn run(datasets: &[BenchDataset], opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 8: executing time by sampling-phase trial fraction (seconds)",
        &[
            "dataset",
            "method",
            "N=0% (prep)",
            "25%",
            "50%",
            "75%",
            "100%",
        ],
    );
    for d in datasets {
        let g = &d.graph;

        // OS has no preparing phase: report cumulative time at fractions.
        let mut os_cells = vec![d.dataset.name().to_string(), "OS".into(), "-".into()];
        for f in FRACTIONS {
            let trials = ((opts.plan.direct_trials as f64 * f).round() as u64).max(1);
            let (bt, _) = os_budgeted(g, trials, opts.seed, opts.budget);
            os_cells.push(format!("{:.3}", bt.estimated_total.as_secs_f64()));
        }
        t.row(&os_cells);

        // Shared preparing phase for both OLS variants.
        let ols = OrderingListingSampling::new(OlsConfig {
            prep_trials: opts.plan.prep_trials,
            seed: opts.seed,
            ..Default::default()
        });
        let (candidates, prep_secs) = time_it(|| ols.prepare(g));

        let mut kl_cells = vec![
            d.dataset.name().to_string(),
            "OLS-KL".into(),
            format!("{prep_secs:.3}"),
        ];
        let mut opt_cells = vec![
            d.dataset.name().to_string(),
            "OLS".into(),
            format!("{prep_secs:.3}"),
        ];
        for f in FRACTIONS {
            let trials = ((opts.plan.sampling_trials as f64 * f).round() as u64).max(1);
            let (_, kl_secs) = time_it(|| {
                estimate_karp_luby(g, &candidates, KlTrialPolicy::Fixed(trials), opts.seed)
            });
            kl_cells.push(format!("{:.3}", prep_secs + kl_secs));
            let (_, opt_secs) = time_it(|| estimate_optimized(g, &candidates, trials, opts.seed));
            opt_cells.push(format!("{:.3}", prep_secs + opt_secs));
        }
        t.row(&kl_cells);
        t.row(&opt_cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::{fast_options, tiny_datasets};

    #[test]
    fn three_methods_per_dataset() {
        let ds = tiny_datasets();
        let t = run(&ds[..1], &fast_options());
        assert_eq!(t.len(), 3);
        let text = t.render();
        assert!(text.contains("OLS-KL"));
        assert!(text.contains("N=0%"));
    }
}
