//! Fig. 7: overall executing time of MC-VP, OS, OLS-KL, and OLS on the
//! four datasets — the headline efficiency comparison (§VIII-C).
//!
//! MC-VP runs under the wall-clock budget (the paper's 4-hour timeout,
//! scaled); when truncated its total is extrapolated from per-trial cost,
//! which is exactly how the paper reports "could not finish".

use crate::experiments::{mcvp_budgeted, os_budgeted, ExpOptions};
use crate::report::{fmt_speedup, Table};
use crate::timing::time_it;
use crate::BenchDataset;
use mpmb_core::{EstimatorKind, KlTrialPolicy, OlsConfig, OrderingListingSampling};

/// Measured times for one dataset.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Row {
    /// MC-VP total seconds (possibly extrapolated).
    pub mcvp_secs: f64,
    /// Whether MC-VP hit the budget.
    pub mcvp_timed_out: bool,
    /// OS total seconds.
    pub os_secs: f64,
    /// OLS-KL total seconds (prep + sampling).
    pub ols_kl_secs: f64,
    /// OLS total seconds (prep + sampling).
    pub ols_secs: f64,
}

/// Runs the comparison on one dataset.
pub fn measure(d: &BenchDataset, opts: &ExpOptions) -> Fig7Row {
    let g = &d.graph;
    let (mc_t, _) = mcvp_budgeted(g, opts.plan.direct_trials, opts.seed, opts.budget);
    let (os_t, _) = os_budgeted(g, opts.plan.direct_trials, opts.seed, opts.budget);

    let kl_cfg = OlsConfig {
        prep_trials: opts.plan.prep_trials,
        seed: opts.seed,
        estimator: EstimatorKind::KarpLuby {
            policy: KlTrialPolicy::Dynamic {
                mu: 0.05,
                base: opts.plan.sampling_trials,
                min: (opts.plan.sampling_trials / 20).max(1),
                cap: opts.plan.sampling_trials * 10,
            },
        },
        ..Default::default()
    };
    let (_, ols_kl_secs) = time_it(|| OrderingListingSampling::new(kl_cfg).run(g));

    let opt_cfg = OlsConfig {
        estimator: EstimatorKind::Optimized {
            trials: opts.plan.sampling_trials,
        },
        ..kl_cfg
    };
    let (_, ols_secs) = time_it(|| OrderingListingSampling::new(opt_cfg).run(g));

    Fig7Row {
        mcvp_secs: mc_t.estimated_total.as_secs_f64(),
        mcvp_timed_out: !mc_t.finished(),
        os_secs: os_t.estimated_total.as_secs_f64(),
        ols_kl_secs,
        ols_secs,
    }
}

/// Renders the figure as a table with speedup columns.
pub fn run(datasets: &[BenchDataset], opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 7: overall executing time (seconds)",
        &[
            "dataset",
            "MC-VP",
            "OS",
            "OLS-KL",
            "OLS",
            "OS vs MC-VP",
            "OLS vs OS",
            "OLS vs OLS-KL",
        ],
    );
    for d in datasets {
        let r = measure(d, opts);
        t.row(&[
            d.dataset.name().to_string(),
            if r.mcvp_timed_out {
                format!("~{:.1} (timeout extrapolated)", r.mcvp_secs)
            } else {
                format!("{:.3}", r.mcvp_secs)
            },
            format!("{:.3}", r.os_secs),
            format!("{:.3}", r.ols_kl_secs),
            format!("{:.3}", r.ols_secs),
            fmt_speedup(r.mcvp_secs / r.os_secs.max(1e-9)),
            fmt_speedup(r.os_secs / r.ols_secs.max(1e-9)),
            fmt_speedup(r.ols_kl_secs / r.ols_secs.max(1e-9)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::{fast_options, tiny_datasets};

    #[test]
    fn produces_positive_times_for_all_methods() {
        let ds = tiny_datasets();
        let opts = fast_options();
        let r = measure(&ds[0], &opts);
        assert!(r.mcvp_secs > 0.0);
        assert!(r.os_secs > 0.0);
        assert!(r.ols_kl_secs > 0.0);
        assert!(r.ols_secs > 0.0);
    }

    #[test]
    fn table_has_one_row_per_dataset() {
        let ds = tiny_datasets();
        let t = run(&ds[..2], &fast_options());
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("OLS vs OS"));
    }
}
