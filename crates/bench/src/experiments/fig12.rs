//! Fig. 12: sensitivity to the preparing-phase trial count — `P(B)` of
//! the tracked butterfly when `N_os` sweeps up to twice the default 100,
//! each point an **independent** run (§VIII-D: "each experiment is
//! conducted independently so the trend is not convergent but fluctuant").
//!
//! Early points miss the butterfly entirely (`P = 0`, not yet in the
//! candidate set) or over-estimate (tiny candidate set ⇒ fewer heavier
//! rivals accounted); past ~50% the estimates settle into the `2ε` band.

use crate::experiments::fig11::pick_target;
use crate::experiments::ExpOptions;
use crate::report::Table;
use crate::BenchDataset;
use mpmb_core::{EstimatorKind, OlsConfig, OrderingListingSampling};

/// Preparing-trial fractions of the default on the x-axis (up to 200%).
pub const FRACTIONS: [f64; 8] = [0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0];

/// Renders the preparing-phase sweep.
pub fn run(datasets: &[BenchDataset], opts: &ExpOptions) -> Table {
    let mut headers: Vec<String> = vec!["dataset".into()];
    headers.extend(FRACTIONS.iter().map(|f| format!("{:.0}%", f * 100.0)));
    headers.push("reference".into());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 12: P(B) vs preparing-phase trials (independent runs)",
        &headers_ref,
    );
    for d in datasets {
        let g = &d.graph;
        let Some((target, reference)) = pick_target(g, opts) else {
            continue;
        };
        let mut row = vec![d.dataset.name().to_string()];
        for (k, f) in FRACTIONS.iter().enumerate() {
            let prep = ((opts.plan.prep_trials as f64 * f).round() as u64).max(1);
            let result = OrderingListingSampling::new(OlsConfig {
                prep_trials: prep,
                // Independent runs: vary the seed per point.
                seed: opts.seed.wrapping_add(1 + k as u64),
                estimator: EstimatorKind::Optimized {
                    trials: opts.plan.sampling_trials,
                },
                ..Default::default()
            })
            .run(g);
            row.push(format!("{:.4}", result.distribution.prob(&target)));
        }
        row.push(format!("{reference:.4}"));
        t.row(&row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::tiny_datasets;
    use crate::TrialPlan;

    #[test]
    fn one_row_per_dataset_with_reference() {
        let ds = tiny_datasets();
        let opts = ExpOptions {
            seed: 5,
            plan: TrialPlan::scaled(0.05),
            budget: std::time::Duration::from_secs(10),
        };
        let t = run(&ds[..1], &opts);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("reference"));
    }
}
