//! Load-path benchmark behind the `--container` modes of
//! `listing_bench` and `solver_bench`: the same generated graph is
//! written both as a text edge list and as a `UBGCONT1` container, then
//! re-loaded through [`bigraph::io::read_auto`] — the exact dispatch
//! `mpmb serve` and the CLI run at attach time.
//!
//! The container format exists to make loading *cheap*: raw CSR
//! sections mapped or streamed with no float parsing, no sorting, no
//! rank recomputation (docs/STORAGE.md). The `min_speedup` gate in the
//! binaries turns that into an enforced contract — perf-smoke runs with
//! `--min-load-speedup 10`, so a regression that drags attach back
//! toward parse speed fails CI instead of rotting silently.

use bigraph::UncertainBipartiteGraph;
use std::path::PathBuf;
use std::time::Instant;

/// One attach-vs-parse comparison, minimum wall clock over the repeats.
pub struct LoadComparison {
    /// Seconds to parse the text edge list.
    pub text_secs: f64,
    /// Seconds to attach and materialize the container.
    pub container_secs: f64,
    /// Seconds for a header-only [`bigraph::ContainerReader::open`] —
    /// the parse-free re-attach the serving registry performs at
    /// startup, before any lazy materialization.
    pub open_secs: f64,
    /// `text_secs / container_secs`.
    pub speedup: f64,
}

impl LoadComparison {
    /// The comparison as a JSON object for the bench reports.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"text_parse_secs\": {:.6}, \"container_attach_secs\": {:.6}, \
             \"container_open_secs\": {:.6}, \"speedup\": {:.3}}}",
            self.text_secs, self.container_secs, self.open_secs, self.speedup
        )
    }
}

/// A unique scratch path that is removed on drop, so an assertion
/// failure in the caller never leaves temp files behind.
struct Scratch(PathBuf);

impl Scratch {
    fn new(suffix: &str) -> Scratch {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        Scratch(
            std::env::temp_dir().join(format!("mpmb-loadpath-{}-{n}{suffix}", std::process::id())),
        )
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn time_min<T>(repeats: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("repeats >= 1"))
}

/// Writes `g` as both a text edge list and a container, times `repeats`
/// loads of each through `read_auto`, and verifies that both loaded
/// graphs reproduce the original bit-for-bit (container encodings
/// compared, which covers every derived array the solvers index).
///
/// Returns the container-loaded graph so container-mode benches run
/// their kernels against the materialized arrays, not the generated
/// ones — any drift would surface as a candidate-set divergence.
///
/// # Panics
///
/// Panics on I/O failure or if either load is not bit-identical to the
/// generated graph; a load path that changes bytes must never produce a
/// timing number.
pub fn compare_load_paths(
    g: &UncertainBipartiteGraph,
    repeats: u32,
) -> (UncertainBipartiteGraph, LoadComparison) {
    let text = Scratch::new(".tsv");
    let container = Scratch::new(".ubgc");
    {
        let file = std::fs::File::create(&text.0).expect("create text scratch");
        let mut w = std::io::BufWriter::new(file);
        bigraph::io::write_edge_list(g, &mut w).expect("write edge list");
    }
    bigraph::write_container_path(g, &container.0).expect("write container");

    let reference = container_bytes(g);
    let (text_secs, parsed) = time_min(repeats, || {
        bigraph::io::read_auto(&text.0).expect("parse text")
    });
    let (container_secs, attached) = time_min(repeats, || {
        bigraph::io::read_auto(&container.0).expect("attach container")
    });
    let (open_secs, _) = time_min(repeats, || {
        bigraph::ContainerReader::open(&container.0).expect("open container")
    });
    assert_eq!(
        container_bytes(&parsed),
        reference,
        "text re-parse must reproduce the generated graph bit-for-bit"
    );
    assert_eq!(
        container_bytes(&attached),
        reference,
        "container attach must reproduce the generated graph bit-for-bit"
    );

    let cmp = LoadComparison {
        text_secs,
        container_secs,
        open_secs,
        speedup: text_secs / container_secs,
    };
    (attached, cmp)
}

fn container_bytes(g: &UncertainBipartiteGraph) -> Vec<u8> {
    let mut bytes = Vec::new();
    bigraph::write_container(g, &mut bytes).expect("encode container");
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::Dataset;

    #[test]
    fn comparison_returns_the_attached_graph_and_finite_timings() {
        let g = Dataset::Abide.generate(0.05, 9);
        let (back, cmp) = compare_load_paths(&g, 2);
        assert_eq!(container_bytes(&g), container_bytes(&back));
        assert!(cmp.text_secs > 0.0 && cmp.text_secs.is_finite());
        assert!(cmp.container_secs > 0.0 && cmp.container_secs.is_finite());
        assert!(cmp.open_secs > 0.0 && cmp.open_secs.is_finite());
        assert!(cmp.speedup.is_finite());
        let json = cmp.to_json();
        assert!(json.contains("\"speedup\""), "{json}");
    }
}
