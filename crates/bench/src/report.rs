//! Plain-text table and CSV rendering for experiment output.

/// A simple aligned-text table with a title, headers, and rows.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; pads or truncates to the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (comma-separated, quotes around cells with commas).
    pub fn render_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats bytes with binary units.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Formats a speedup factor like the paper quotes them ("1000x", "8.2x").
pub fn fmt_speedup(factor: f64) -> String {
    if factor >= 100.0 {
        format!("{factor:.0}x")
    } else {
        format!("{factor:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the alignment column for "value".
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1'), Some(col));
        assert_eq!(lines[4].find('2'), Some(col));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("pad", &["a", "b", "c"]);
        t.row(&["x".into()]);
        assert!(t.render().contains('x'));
        assert_eq!(t.render_csv().lines().nth(1).unwrap(), "x,,");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("csv", &["a"]);
        t.row(&["hello, \"world\"".into()]);
        assert_eq!(
            t.render_csv().lines().nth(1).unwrap(),
            "\"hello, \"\"world\"\"\""
        );
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(1234.5), "1234x");
        assert_eq!(fmt_speedup(8.25), "8.2x");
    }
}
