//! Experiment harness shared by the `repro` binary and the criterion
//! benches: dataset preparation at laptop or paper scale, budgeted timing
//! (the stand-in for the paper's 4-hour timeout), and table formatting.

pub mod baseline;
pub mod experiments;
pub mod loadpath;
pub mod report;
pub mod timing;

use bigraph::UncertainBipartiteGraph;
use datasets::Dataset;

/// A dataset instantiated for benchmarking.
pub struct BenchDataset {
    /// Which paper dataset this stands in for.
    pub dataset: Dataset,
    /// The generated graph.
    pub graph: UncertainBipartiteGraph,
    /// The generation scale used.
    pub scale: f64,
}

/// Default laptop-scale generation factors. Chosen so the heaviest
/// experiment (Fig. 7's OS runs) completes in minutes, while preserving
/// each dataset's characteristic shape (density, asymmetry, ties).
pub fn default_scale(d: Dataset) -> f64 {
    match d {
        Dataset::Abide => 1.0,      // tiny at full size
        Dataset::MovieLens => 0.10, // ~10k ratings
        Dataset::Jester => 0.01,    // ~41k ratings, 10×7,342
        Dataset::Protein => 0.05,   // ~99k interactions
    }
}

/// Instantiates the four benchmark datasets. `full` uses Table III sizes
/// (Protein at full size needs ~2 GB and many minutes; laptop users want
/// `false`).
pub fn bench_datasets(full: bool, seed: u64) -> Vec<BenchDataset> {
    Dataset::all()
        .into_iter()
        .map(|dataset| {
            let scale = if full { 1.0 } else { default_scale(dataset) };
            BenchDataset {
                dataset,
                graph: dataset.generate(scale, seed),
                scale,
            }
        })
        .collect()
}

/// The trial numbers of Table IV, scaled by `trial_factor` so quick runs
/// stay faithful to the ratios between methods (20,000 : 100).
#[derive(Clone, Copy, Debug)]
pub struct TrialPlan {
    /// `N_mc = N_os` for the direct solvers (paper: 20,000).
    pub direct_trials: u64,
    /// Preparing-phase trials for OLS (paper: 100).
    pub prep_trials: u64,
    /// `N_op` for the optimized estimator (paper: 20,000).
    pub sampling_trials: u64,
}

impl TrialPlan {
    /// The paper's Table IV plan scaled by `factor` (1.0 = paper values).
    pub fn scaled(factor: f64) -> Self {
        assert!(factor > 0.0, "trial factor must be positive");
        let scale = |n: f64| ((n * factor).round() as u64).max(1);
        TrialPlan {
            direct_trials: scale(20_000.0),
            // The preparing phase is already tiny (100 trials) and its
            // job — candidate recall per Lemma VI.1 — degrades fast below
            // a few dozen trials, so it floors at 25 instead of scaling
            // all the way down.
            prep_trials: scale(100.0).max(25),
            sampling_trials: scale(20_000.0),
        }
    }
}

impl Default for TrialPlan {
    fn default() -> Self {
        TrialPlan::scaled(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_plan_scales_proportionally() {
        let p = TrialPlan::scaled(0.1);
        assert_eq!(p.direct_trials, 2_000);
        assert_eq!(p.prep_trials, 25, "prep floors at 25");
        assert_eq!(p.sampling_trials, 2_000);
        let full = TrialPlan::default();
        assert_eq!(full.direct_trials, 20_000);
        assert_eq!(full.prep_trials, 100);
        assert_eq!(TrialPlan::scaled(0.5).prep_trials, 50);
    }

    #[test]
    fn tiny_factor_floors() {
        let p = TrialPlan::scaled(1e-9);
        assert_eq!(p.direct_trials, 1);
        assert_eq!(p.prep_trials, 25);
    }

    #[test]
    fn bench_datasets_produce_all_four() {
        // Generate at a very small ad-hoc scale to keep the test fast.
        let ds: Vec<BenchDataset> = Dataset::all()
            .into_iter()
            .map(|dataset| BenchDataset {
                dataset,
                graph: dataset.generate(0.01, 1),
                scale: 0.01,
            })
            .collect();
        assert_eq!(ds.len(), 4);
        for d in &ds {
            assert!(d.graph.num_edges() > 0, "{} empty", d.dataset.name());
        }
    }
}
