//! Baseline comparison for the bench binaries' committed JSON outputs.
//!
//! CI's perf-smoke job runs `solver_bench --baseline BENCH_solvers.json
//! --max-regression 0.30` and wants the run to fail only when throughput
//! drops more than the tolerance below the committed figure. The bench
//! output is produced by hand-rolled formatting, so the reader here is a
//! matching hand-rolled scanner — it extracts exactly the fields the
//! comparison needs instead of pulling in a JSON dependency.

/// Extracts the sequential `trials_per_sec` recorded for `method` in a
/// `solver_bench` JSON document. Returns `None` when the method (or the
/// field) is absent, which callers treat as "no baseline to hold".
pub fn sequential_trials_per_sec(json: &str, method: &str) -> Option<f64> {
    let needle = format!("\"method\": \"{method}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    // The sequential block is emitted right after the method name and
    // carries the first trials_per_sec in the method object.
    let key = "\"trials_per_sec\": ";
    let kat = rest.find(key)? + key.len();
    parse_leading_f64(&rest[kat..])
}

/// Extracts the sequential listing seconds from a `listing_bench` JSON
/// document (`"sequential": {"secs": ...}`).
pub fn sequential_listing_secs(json: &str) -> Option<f64> {
    let needle = "\"sequential\": {\"secs\": ";
    let at = json.find(needle)? + needle.len();
    parse_leading_f64(&json[at..])
}

/// Parses the longest numeric prefix (digits, sign, dot, exponent).
fn parse_leading_f64(s: &str) -> Option<f64> {
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(s.len());
    s[..end].parse().ok()
}

/// Whether `current` throughput regresses more than `max_regression`
/// (a fraction, e.g. 0.30) below `baseline`. Higher is better.
pub fn regressed(current: f64, baseline: f64, max_regression: f64) -> bool {
    current < baseline * (1.0 - max_regression)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "phase": "solvers",
  "methods": [
    {
      "method": "os",
      "trials": 2000,
      "sequential": {"secs": 0.5, "trials_per_sec": 4000.0},
      "runs": [
        {"threads": 2, "secs": 0.25, "trials_per_sec": 8000.0, "identical": true}
      ]
    },
    {
      "method": "ols",
      "sequential": {"secs": 1.0, "trials_per_sec": 2100.5}
    }
  ]
}"#;

    #[test]
    fn reads_the_sequential_figure_per_method() {
        assert_eq!(sequential_trials_per_sec(SAMPLE, "os"), Some(4000.0));
        assert_eq!(sequential_trials_per_sec(SAMPLE, "ols"), Some(2100.5));
        assert_eq!(sequential_trials_per_sec(SAMPLE, "mcvp"), None);
    }

    #[test]
    fn reads_listing_sequential_secs() {
        let doc = r#"{"phase": "listing", "sequential": {"secs": 0.123456},"#;
        assert_eq!(sequential_listing_secs(doc), Some(0.123456));
        assert_eq!(sequential_listing_secs("{}"), None);
    }

    #[test]
    fn regression_gate_is_one_sided() {
        // 30% tolerance: 69 of 100 fails, 70 passes, faster always passes.
        assert!(regressed(69.0, 100.0, 0.30));
        assert!(!regressed(70.0, 100.0, 0.30));
        assert!(!regressed(250.0, 100.0, 0.30));
    }
}
