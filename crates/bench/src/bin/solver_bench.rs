//! `solver_bench` — trial-engine throughput benchmark: every sampler
//! (os, mcvp, ols, ols-kl, fast) through the unified `Executor` at
//! several thread counts, as machine-readable JSON
//! (`BENCH_solvers.json` in CI).
//!
//! ```text
//! solver_bench [--dataset NAME] [--scale F] [--seed N]
//!              [--threads LIST] [--trials N] [--prep N] [--repeats N]
//!              [--methods LIST] [--baseline FILE] [--max-regression F]
//!              [--container] [--min-load-speedup F]
//!              [--min-fast-speedup F]
//!
//! --dataset   abide | movielens | jester | protein (default: movielens)
//! --scale     generation scale, 1.0 = Table III size (default: the
//!             laptop-scale default for the dataset)
//! --seed      solver seed (default 42; also the generation seed)
//! --threads   comma-separated thread counts (default 1,4,8)
//! --trials    sampling-phase trials per solver (default 20000)
//! --prep      OLS preparing-phase trials (default 200)
//! --repeats   timing repeats per configuration; min is reported (default 3)
//! --methods   comma-separated subset of os,mcvp,ols,ols-kl,fast
//!             (default all)
//! --baseline  committed solver_bench JSON to gate against (optional)
//! --max-regression  allowed fractional drop in sequential trials/sec
//!             below the baseline before exiting non-zero (default 0.30)
//! --container round-trip the graph through a `UBGCONT1` container,
//!             bench against the attached copy, and report container
//!             attach vs text re-parse load timings
//! --min-load-speedup  with --container: exit non-zero unless attach
//!             beats text re-parse by at least this factor (default 0,
//!             no gate; perf-smoke passes 10)
//! --min-fast-speedup  exit non-zero unless the sequential fast tier
//!             beats sequential os by at least this factor at the same
//!             trial budget — and, per the Chebyshev bound both share,
//!             at the same certified relative error. Requires both os
//!             and fast in --methods (default 0, no gate; perf-smoke
//!             passes 10)
//! ```
//!
//! Every parallel run is checked against the sequential distribution
//! (`identical` in the output) — the executor's contract is that thread
//! count never changes a byte of the answer, so a "speedup" that fails
//! the check would be a correctness bug, not a win. Any mismatch makes
//! the process exit non-zero, as does a baseline regression.

use bench::default_scale;
use datasets::Dataset;
use mpmb_core::{
    estimate_fast, Cancel, Distribution, EstimatorKind, Executor, FastEstimate, KlTrialPolicy,
    McVpConfig, McVpTrials, OlsConfig, OrderingListingSampling, OsConfig, OsTrials,
    SublinearConfig,
};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    dataset: Dataset,
    scale: Option<f64>,
    seed: u64,
    threads: Vec<usize>,
    trials: u64,
    prep: u64,
    repeats: u32,
    methods: Vec<&'static str>,
    baseline: Option<String>,
    max_regression: f64,
    container: bool,
    min_load_speedup: f64,
    min_fast_speedup: f64,
}

const HELP: &str =
    "solver_bench [--dataset abide|movielens|jester|protein] [--scale F] [--seed N] \
[--threads LIST] [--trials N] [--prep N] [--repeats N] [--methods LIST] \
[--baseline FILE] [--max-regression F] [--container] [--min-load-speedup F] \
[--min-fast-speedup F]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: Dataset::MovieLens,
        scale: None,
        seed: 42,
        threads: vec![1, 4, 8],
        trials: 20_000,
        prep: 200,
        repeats: 3,
        methods: METHODS.to_vec(),
        baseline: None,
        max_regression: 0.30,
        container: false,
        min_load_speedup: 0.0,
        min_fast_speedup: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--dataset" => {
                let name = value("--dataset")?;
                args.dataset = match name.to_ascii_lowercase().as_str() {
                    "abide" => Dataset::Abide,
                    "movielens" => Dataset::MovieLens,
                    "jester" => Dataset::Jester,
                    "protein" => Dataset::Protein,
                    other => return Err(format!("unknown dataset `{other}`")),
                };
            }
            "--scale" => {
                args.scale = Some(
                    value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.threads.is_empty() {
                    return Err("--threads needs at least one count".into());
                }
            }
            "--trials" => {
                args.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
                if args.trials == 0 {
                    return Err("--trials must be at least 1".into());
                }
            }
            "--prep" => {
                args.prep = value("--prep")?
                    .parse()
                    .map_err(|e| format!("--prep: {e}"))?
            }
            "--repeats" => {
                args.repeats = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if args.repeats == 0 {
                    return Err("--repeats must be at least 1".into());
                }
            }
            "--methods" => {
                args.methods = value("--methods")?
                    .split(',')
                    .map(|m| {
                        METHODS
                            .iter()
                            .copied()
                            .find(|k| *k == m.trim())
                            .ok_or_else(|| format!("--methods: unknown method `{m}`"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.methods.is_empty() {
                    return Err("--methods needs at least one method".into());
                }
            }
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--max-regression" => {
                args.max_regression = value("--max-regression")?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?;
                if !(0.0..1.0).contains(&args.max_regression) {
                    return Err("--max-regression must be in [0, 1)".into());
                }
            }
            "--container" => args.container = true,
            "--min-fast-speedup" => {
                args.min_fast_speedup = value("--min-fast-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-fast-speedup: {e}"))?;
                if args.min_fast_speedup < 0.0 {
                    return Err("--min-fast-speedup must be non-negative".into());
                }
            }
            "--min-load-speedup" => {
                args.min_load_speedup = value("--min-load-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-load-speedup: {e}"))?;
                if args.min_load_speedup < 0.0 {
                    return Err("--min-load-speedup must be non-negative".into());
                }
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.min_load_speedup > 0.0 && !args.container {
        return Err("--min-load-speedup requires --container".into());
    }
    if args.min_fast_speedup > 0.0
        && !(args.methods.contains(&"os") && args.methods.contains(&"fast"))
    {
        return Err("--min-fast-speedup requires both os and fast in --methods".into());
    }
    Ok(args)
}

const METHODS: [&str; 5] = ["os", "mcvp", "ols", "ols-kl", "fast"];

/// What a solver pass produced: the full sampling distribution for the
/// exact tiers, or the certified estimate for the sublinear fast tier.
/// Either way the identity check is bit-exact — thread count must never
/// change a byte of the answer.
enum BenchResult {
    Dist(Distribution),
    Fast(FastEstimate),
}

/// One solver pass on `threads` workers; returns the distribution and
/// the total executor trials it ran (for the trials/sec figure).
fn run_method(
    g: &bigraph::UncertainBipartiteGraph,
    method: &str,
    args: &Args,
    threads: usize,
) -> (BenchResult, u64) {
    let (trials, prep, seed) = (args.trials, args.prep, args.seed);
    match method {
        "fast" => {
            let cfg = SublinearConfig {
                trials,
                seed,
                delta: 0.05,
            };
            (BenchResult::Fast(estimate_fast(g, &cfg, threads)), trials)
        }
        "os" => {
            let cfg = OsConfig {
                trials,
                seed,
                ..Default::default()
            };
            let dist = Executor::new(threads)
                .run(&OsTrials::new(g, &cfg), trials, &Cancel::never())
                .acc
                .into_distribution();
            (BenchResult::Dist(dist), trials)
        }
        "mcvp" => {
            let cfg = McVpConfig { trials, seed };
            let dist = Executor::new(threads)
                .run(&McVpTrials::new(g, &cfg), trials, &Cancel::never())
                .acc
                .into_distribution();
            (BenchResult::Dist(dist), trials)
        }
        "ols" => {
            let res = OrderingListingSampling::new(OlsConfig {
                prep_trials: prep,
                seed,
                estimator: EstimatorKind::Optimized { trials },
                threads,
                ..Default::default()
            })
            .run(g);
            (BenchResult::Dist(res.distribution), prep + trials)
        }
        "ols-kl" => {
            let res = OrderingListingSampling::new(OlsConfig {
                prep_trials: prep,
                seed,
                estimator: EstimatorKind::KarpLuby {
                    policy: KlTrialPolicy::Fixed(trials),
                },
                threads,
                ..Default::default()
            })
            .run(g);
            let consumed: u64 = res
                .kl_report
                .as_ref()
                .map(|r| r.trials_per_candidate.iter().sum())
                .unwrap_or(0);
            (BenchResult::Dist(res.distribution), prep + consumed)
        }
        other => unreachable!("unknown method {other}"),
    }
}

/// Minimum wall-clock seconds over `repeats` runs, plus the last result.
fn time_min<F: FnMut() -> (BenchResult, u64)>(repeats: u32, mut f: F) -> (f64, BenchResult, u64) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    let (dist, trials) = last.expect("repeats >= 1");
    (best, dist, trials)
}

/// Bit-exact result equality: same support and zero maximum deviation
/// for distributions, identical bits across all certified fields for a
/// fast estimate.
fn identical(a: &BenchResult, b: &BenchResult) -> bool {
    match (a, b) {
        (BenchResult::Dist(a), BenchResult::Dist(b)) => {
            a.len() == b.len() && a.max_abs_diff(b) == 0.0
        }
        (BenchResult::Fast(a), BenchResult::Fast(b)) => {
            a.estimate.to_bits() == b.estimate.to_bits()
                && a.variance.to_bits() == b.variance.to_bits()
                && a.ci_low.to_bits() == b.ci_low.to_bits()
                && a.ci_high.to_bits() == b.ci_high.to_bits()
        }
        _ => false,
    }
}

/// One untimed sequential run under an [`obs::Profile`], returning the
/// phase breakdown as a JSON object string. Kept out of the timed loops
/// so observability never skews the reported throughput (it would not
/// change the results — instrumented runs are bit-identical).
fn profile_phases(g: &bigraph::UncertainBipartiteGraph, method: &str, args: &Args) -> String {
    let profile = Arc::new(obs::Profile::new());
    {
        let _guard = obs::install(obs::ObsCtx {
            profile: Some(Arc::clone(&profile)),
            ..Default::default()
        });
        let _ = run_method(g, method, args, 1);
    }
    let entries: Vec<String> = profile
        .snapshot()
        .iter()
        .map(|p| {
            format!(
                "\"{}\": {{\"secs\": {:.6}, \"items\": {}, \"calls\": {}}}",
                p.name, p.secs, p.items, p.calls
            )
        })
        .collect();
    format!("{{{}}}", entries.join(", "))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            std::process::exit(2);
        }
    };

    let scale = args.scale.unwrap_or_else(|| default_scale(args.dataset));
    let generated = args.dataset.generate(scale, args.seed);
    // In container mode the solvers run against the *attached* copy, so
    // a storage-layer drift would surface as a distribution divergence.
    let (g, load) = if args.container {
        let (attached, cmp) = bench::loadpath::compare_load_paths(&generated, args.repeats);
        (attached, Some(cmp))
    } else {
        (generated, None)
    };

    let mut methods_json = Vec::new();
    let mut mismatches: Vec<String> = Vec::new();
    let mut current_tps: Vec<(&str, f64)> = Vec::new();
    let mut seq_secs_of: Vec<(&str, f64)> = Vec::new();
    for &method in &args.methods {
        let (seq_secs, seq_dist, seq_trials) =
            time_min(args.repeats, || run_method(&g, method, &args, 1));
        current_tps.push((method, seq_trials as f64 / seq_secs));
        seq_secs_of.push((method, seq_secs));
        let mut runs = Vec::new();
        for &threads in &args.threads {
            let (secs, dist, trials) =
                time_min(args.repeats, || run_method(&g, method, &args, threads));
            let same = identical(&seq_dist, &dist);
            if !same {
                mismatches.push(format!("{method} @ {threads} threads"));
            }
            runs.push(format!(
                "      {{\"threads\": {}, \"secs\": {:.6}, \"trials_per_sec\": {:.1}, \
                 \"speedup\": {:.3}, \"identical\": {}}}",
                threads,
                secs,
                trials as f64 / secs,
                seq_secs / secs,
                same
            ));
        }
        let phases = profile_phases(&g, method, &args);
        methods_json.push(format!(
            "    {{\n      \"method\": \"{}\",\n      \"trials\": {},\n      \
             \"sequential\": {{\"secs\": {:.6}, \"trials_per_sec\": {:.1}}},\n      \
             \"phases\": {},\n      \
             \"runs\": [\n{}\n      ]\n    }}",
            method,
            seq_trials,
            seq_secs,
            seq_trials as f64 / seq_secs,
            phases,
            runs.join(",\n")
        ));
    }

    println!("{{");
    println!("  \"phase\": \"solvers\",");
    println!("  \"dataset\": \"{}\",", args.dataset.name());
    println!("  \"scale\": {scale},");
    println!("  \"seed\": {},", args.seed);
    println!(
        "  \"graph\": {{\"left\": {}, \"right\": {}, \"edges\": {}}},",
        g.num_left(),
        g.num_right(),
        g.num_edges()
    );
    if let Some(cmp) = &load {
        println!("  \"load\": {},", cmp.to_json());
    }
    println!("  \"methods\": [");
    println!("{}", methods_json.join(",\n"));
    println!("  ]");
    println!("}}");

    // Identity is the executor's contract: a parallel run that disagrees
    // with the sequential distribution is a correctness bug, and the
    // process must say so in its exit code, not just in a JSON field.
    if !mismatches.is_empty() {
        eprintln!(
            "error: parallel runs diverged from the sequential distribution: {}",
            mismatches.join(", ")
        );
        std::process::exit(1);
    }

    if let Some(cmp) = &load {
        if args.min_load_speedup > 0.0 && cmp.speedup < args.min_load_speedup {
            eprintln!(
                "error: container attach only {:.1}x faster than text re-parse (need {:.1}x)",
                cmp.speedup, args.min_load_speedup
            );
            std::process::exit(1);
        }
    }

    // The sublinear tier's reason to exist: at the same trial budget
    // (hence the same Chebyshev-certified relative error) sequential
    // fast must beat sequential os by the gated factor, or serving it
    // as a deadline tier would be pointless.
    if args.min_fast_speedup > 0.0 {
        let secs = |m: &str| seq_secs_of.iter().find(|(k, _)| *k == m).map(|(_, s)| *s);
        let (os, fast) = (secs("os").unwrap(), secs("fast").unwrap());
        let speedup = os / fast;
        eprintln!(
            "fast tier: {fast:.6}s vs sequential os {os:.6}s ({speedup:.1}x, need {:.1}x)",
            args.min_fast_speedup
        );
        if speedup < args.min_fast_speedup {
            eprintln!(
                "error: fast tier only {speedup:.1}x faster than sequential os (need {:.1}x)",
                args.min_fast_speedup
            );
            std::process::exit(1);
        }
    }

    // Optional perf gate against a committed baseline: fail only when a
    // method's sequential throughput drops more than --max-regression
    // below the recorded figure (faster is always fine).
    if let Some(path) = &args.baseline {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: --baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let mut regressions = Vec::new();
        for (method, tps) in &current_tps {
            match bench::baseline::sequential_trials_per_sec(&doc, method) {
                Some(base) => {
                    let ok = !bench::baseline::regressed(*tps, base, args.max_regression);
                    eprintln!(
                        "baseline {method}: {tps:.1} trials/s vs {base:.1} committed ({:+.1}%) {}",
                        (tps / base - 1.0) * 100.0,
                        if ok { "ok" } else { "REGRESSED" }
                    );
                    if !ok {
                        regressions.push(method.to_string());
                    }
                }
                None => eprintln!("baseline {method}: no committed figure, skipping"),
            }
        }
        if !regressions.is_empty() {
            eprintln!(
                "error: throughput regressed more than {:.0}% below baseline for: {}",
                args.max_regression * 100.0,
                regressions.join(", ")
            );
            std::process::exit(1);
        }
    }
}
