//! `repro` — regenerates every table and figure of the MPMB paper's
//! evaluation section on the synthetic dataset stand-ins.
//!
//! ```text
//! repro [EXPERIMENT…] [--full] [--trial-factor F] [--budget SECS]
//!       [--seed N] [--csv]
//!
//! EXPERIMENT ∈ {table3, table4, fig6, fig7, fig8, fig9, fig10, fig11,
//!               fig12, fig13, all}   (default: all)
//!
//! --full           generate datasets at Table III sizes (hours + GBs;
//!                  default is laptop scale, see DESIGN.md)
//! --trial-factor   scale Table IV trial counts (default 0.1 ⇒ 2,000/10/2,000;
//!                  1.0 reproduces the paper's 20,000/100/20,000)
//! --budget         per-(method,dataset) wall-clock timeout in seconds
//!                  (default 30; the paper's analog is 4 hours)
//! --seed           RNG seed (default 42)
//! --csv            emit CSV instead of aligned tables
//! ```

use bench::experiments::{self, ExpOptions};
use bench::report::Table;
use bench::{bench_datasets, TrialPlan};
use std::time::Duration;

// Fig. 13 needs allocation tracking in this process.
#[global_allocator]
static ALLOC: memtrack::CountingAllocator = memtrack::CountingAllocator;

struct Args {
    experiments: Vec<String>,
    full: bool,
    trial_factor: f64,
    budget_secs: f64,
    seed: u64,
    csv: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiments: Vec::new(),
        full: false,
        trial_factor: 0.1,
        budget_secs: 30.0,
        seed: 42,
        csv: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--full" => args.full = true,
            "--csv" => args.csv = true,
            "--trial-factor" => {
                args.trial_factor = value("--trial-factor")?
                    .parse()
                    .map_err(|e| format!("--trial-factor: {e}"))?
            }
            "--budget" => {
                args.budget_secs = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            exp if !exp.starts_with('-') => args.experiments.push(exp.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.experiments.is_empty() {
        args.experiments.push("all".into());
    }
    Ok(args)
}

const HELP: &str =
    "repro [table3|table4|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|ablation|adaptive|all]… \
[--full] [--trial-factor F] [--budget SECS] [--seed N] [--csv]";

const ALL: [&str; 12] = [
    "table3", "table4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "ablation", "adaptive",
];

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            std::process::exit(2);
        }
    };

    let wanted: Vec<&str> = if args.experiments.iter().any(|e| e == "all") {
        ALL.to_vec()
    } else {
        args.experiments.iter().map(|s| s.as_str()).collect()
    };
    for w in &wanted {
        if !ALL.contains(w) {
            eprintln!("error: unknown experiment `{w}`\n{HELP}");
            std::process::exit(2);
        }
    }

    let opts = ExpOptions {
        seed: args.seed,
        plan: TrialPlan::scaled(args.trial_factor),
        budget: Duration::from_secs_f64(args.budget_secs),
    };

    eprintln!(
        "# datasets: {} scale | trials: {}/{}/{} (direct/prep/sampling) | budget {:.0}s | seed {}",
        if args.full {
            "paper (Table III)"
        } else {
            "laptop"
        },
        opts.plan.direct_trials,
        opts.plan.prep_trials,
        opts.plan.sampling_trials,
        args.budget_secs,
        args.seed,
    );
    let needs_datasets = wanted.iter().any(|w| !matches!(*w, "table4" | "fig6"));
    let datasets = if needs_datasets {
        eprintln!("# generating datasets…");
        bench_datasets(args.full, args.seed)
    } else {
        Vec::new()
    };

    let emit = |t: &Table| {
        if args.csv {
            println!("{}", t.render_csv());
        } else {
            println!("{}", t.render());
        }
    };

    for w in wanted {
        eprintln!("# running {w}…");
        match w {
            "table3" => emit(&experiments::table3::run(&datasets)),
            "table4" => {
                for t in experiments::table4::run(&opts.plan) {
                    emit(&t);
                }
            }
            "fig6" => emit(&experiments::fig6::run()),
            "fig7" => emit(&experiments::fig7::run(&datasets, &opts)),
            "fig8" => emit(&experiments::fig8::run(&datasets, &opts)),
            "fig9" => emit(&experiments::fig9::run(&datasets, &opts)),
            "fig10" => emit(&experiments::fig10::run(&datasets, &opts, 40)),
            "fig11" => emit(&experiments::fig11::run(&datasets, &opts)),
            "fig12" => emit(&experiments::fig12::run(&datasets, &opts)),
            "fig13" => emit(&experiments::fig13::run(&datasets, &opts)),
            "ablation" => emit(&experiments::ablation::run(&datasets, &opts)),
            "adaptive" => emit(&experiments::adaptive::run(&datasets, &opts)),
            _ => unreachable!("validated above"),
        }
    }
}
