//! `listing_bench` — listing-phase benchmark: sequential backbone
//! enumeration vs the sharded parallel kernel, as machine-readable JSON.
//!
//! ```text
//! listing_bench [--dataset NAME] [--scale F] [--seed N]
//!               [--threads LIST] [--repeats N]
//!               [--container] [--min-load-speedup F]
//!
//! --dataset   abide | movielens | jester | protein (default: movielens)
//! --scale     generation scale, 1.0 = Table III size (default: the
//!             laptop-scale default for the dataset)
//! --seed      generation seed (default 42)
//! --threads   comma-separated thread counts (default 2,4,8)
//! --repeats   timing repeats per configuration; min is reported (default 3)
//! --container round-trip the graph through a `UBGCONT1` container,
//!             bench against the attached copy, and report container
//!             attach vs text re-parse load timings
//! --min-load-speedup  with --container: exit non-zero unless attach
//!             beats text re-parse by at least this factor (default 0,
//!             no gate; perf-smoke passes 10)
//! ```
//!
//! Each parallel run is checked for byte-identity against the sequential
//! candidate set (`identical` in the output) — a speedup that changes
//! candidate indices would be a correctness bug, not a win.

use bench::default_scale;
use datasets::Dataset;
use mpmb_core::{backbone_candidate_set, CandidateSet};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    dataset: Dataset,
    scale: Option<f64>,
    seed: u64,
    threads: Vec<usize>,
    repeats: u32,
    container: bool,
    min_load_speedup: f64,
}

const HELP: &str =
    "listing_bench [--dataset abide|movielens|jester|protein] [--scale F] [--seed N] \
[--threads LIST] [--repeats N] [--container] [--min-load-speedup F]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: Dataset::MovieLens,
        scale: None,
        seed: 42,
        threads: vec![2, 4, 8],
        repeats: 3,
        container: false,
        min_load_speedup: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--dataset" => {
                let name = value("--dataset")?;
                args.dataset = match name.to_ascii_lowercase().as_str() {
                    "abide" => Dataset::Abide,
                    "movielens" => Dataset::MovieLens,
                    "jester" => Dataset::Jester,
                    "protein" => Dataset::Protein,
                    other => return Err(format!("unknown dataset `{other}`")),
                };
            }
            "--scale" => {
                args.scale = Some(
                    value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.threads.is_empty() {
                    return Err("--threads needs at least one count".into());
                }
            }
            "--repeats" => {
                args.repeats = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if args.repeats == 0 {
                    return Err("--repeats must be at least 1".into());
                }
            }
            "--container" => args.container = true,
            "--min-load-speedup" => {
                args.min_load_speedup = value("--min-load-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-load-speedup: {e}"))?;
                if args.min_load_speedup < 0.0 {
                    return Err("--min-load-speedup must be non-negative".into());
                }
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.min_load_speedup > 0.0 && !args.container {
        return Err("--min-load-speedup requires --container".into());
    }
    Ok(args)
}

/// Minimum wall-clock seconds over `repeats` runs of `f`, plus the last
/// result (every repeat must produce the same set — that's asserted by
/// the caller's identity check, so keeping one is enough).
fn time_min<F: FnMut() -> CandidateSet>(repeats: u32, mut f: F) -> (f64, CandidateSet) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let set = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(set);
    }
    (best, last.expect("repeats >= 1"))
}

/// Byte-level equality of two candidate sets: indices, butterflies,
/// weight bits, edges, existence-probability bits.
fn identical(a: &CandidateSet, b: &CandidateSet) -> bool {
    a.len() == b.len()
        && (0..a.len()).all(|i| {
            let (ca, cb) = (a.get(i), b.get(i));
            ca.butterfly == cb.butterfly
                && ca.weight.to_bits() == cb.weight.to_bits()
                && ca.edges == cb.edges
                && ca.existence_prob.to_bits() == cb.existence_prob.to_bits()
        })
}

/// One untimed sequential listing pass under an [`obs::Profile`],
/// returning the phase breakdown as a JSON object string. Kept out of
/// the timed loops so observability never skews reported throughput.
fn profile_phases(g: &bigraph::UncertainBipartiteGraph) -> String {
    let profile = Arc::new(obs::Profile::new());
    {
        let _guard = obs::install(obs::ObsCtx {
            profile: Some(Arc::clone(&profile)),
            ..Default::default()
        });
        let _ = backbone_candidate_set(g, 1);
    }
    let entries: Vec<String> = profile
        .snapshot()
        .iter()
        .map(|p| {
            format!(
                "\"{}\": {{\"secs\": {:.6}, \"items\": {}, \"calls\": {}}}",
                p.name, p.secs, p.items, p.calls
            )
        })
        .collect();
    format!("{{{}}}", entries.join(", "))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            std::process::exit(2);
        }
    };

    let scale = args.scale.unwrap_or_else(|| default_scale(args.dataset));
    let generated = args.dataset.generate(scale, args.seed);
    // In container mode the kernels run against the *attached* copy, so
    // a storage-layer drift would surface as a candidate-set divergence.
    let (g, load) = if args.container {
        let (attached, cmp) = bench::loadpath::compare_load_paths(&generated, args.repeats);
        (attached, Some(cmp))
    } else {
        (generated, None)
    };

    let (seq_secs, seq) = time_min(args.repeats, || backbone_candidate_set(&g, 1));

    let mut runs = Vec::new();
    let mut mismatches = Vec::new();
    for &threads in &args.threads {
        let (secs, set) = time_min(args.repeats, || backbone_candidate_set(&g, threads));
        let same = identical(&seq, &set);
        if !same {
            mismatches.push(threads.to_string());
        }
        runs.push(format!(
            "    {{\"threads\": {}, \"secs\": {:.6}, \"speedup\": {:.3}, \"identical\": {}}}",
            threads,
            secs,
            seq_secs / secs,
            same
        ));
    }

    println!("{{");
    println!("  \"phase\": \"listing\",");
    println!("  \"dataset\": \"{}\",", args.dataset.name());
    println!("  \"scale\": {scale},");
    println!("  \"seed\": {},", args.seed);
    println!(
        "  \"graph\": {{\"left\": {}, \"right\": {}, \"edges\": {}}},",
        g.num_left(),
        g.num_right(),
        g.num_edges()
    );
    println!("  \"butterflies\": {},", seq.len());
    if let Some(cmp) = &load {
        println!("  \"load\": {},", cmp.to_json());
    }
    println!("  \"phases\": {},", profile_phases(&g));
    println!("  \"sequential\": {{\"secs\": {seq_secs:.6}}},");
    println!("  \"parallel\": [");
    println!("{}", runs.join(",\n"));
    println!("  ]");
    println!("}}");

    // The sharded kernel's contract is byte-identity with the sequential
    // enumeration; a divergence must fail the process, not just flip a
    // JSON field a human might miss.
    if !mismatches.is_empty() {
        eprintln!(
            "error: parallel candidate sets diverged from sequential at threads: {}",
            mismatches.join(", ")
        );
        std::process::exit(1);
    }
    if let Some(cmp) = &load {
        if args.min_load_speedup > 0.0 && cmp.speedup < args.min_load_speedup {
            eprintln!(
                "error: container attach only {:.1}x faster than text re-parse (need {:.1}x)",
                cmp.speedup, args.min_load_speedup
            );
            std::process::exit(1);
        }
    }
}
