//! Budgeted timing: the stand-in for the paper's 4-hour timeout.
//!
//! MC-VP on the larger datasets "cannot finish the process … within 4
//! hours" (§VIII-C); the paper reports a timeout. At laptop scale we do
//! the same thing proportionally: run trials until either the requested
//! count or a wall-clock budget is exhausted, then report the measured
//! time and — when truncated — the per-trial extrapolation to the full
//! count.

use std::time::{Duration, Instant};

/// Outcome of a budgeted run.
#[derive(Clone, Copy, Debug)]
pub struct BudgetedTime {
    /// Trials actually executed.
    pub completed_trials: u64,
    /// Trials that were requested.
    pub requested_trials: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// `elapsed` when complete; otherwise the per-trial extrapolation to
    /// `requested_trials`.
    pub estimated_total: Duration,
}

impl BudgetedTime {
    /// Whether the run finished all requested trials.
    pub fn finished(&self) -> bool {
        self.completed_trials == self.requested_trials
    }

    /// Human-readable summary: exact time, or `>budget (~extrapolated)`.
    pub fn display(&self) -> String {
        if self.finished() {
            format!("{:.3}s", self.elapsed.as_secs_f64())
        } else {
            format!(
                ">{:.1}s timeout (~{:.1}s extrapolated for {} trials)",
                self.elapsed.as_secs_f64(),
                self.estimated_total.as_secs_f64(),
                self.requested_trials
            )
        }
    }
}

/// Runs `trial(t)` for `t` in `0..trials`, stopping early once `budget`
/// is exceeded (checked between trials). Returns timing with
/// extrapolation.
///
/// # Panics
/// Panics if `trials == 0`.
pub fn run_budgeted(trials: u64, budget: Duration, mut trial: impl FnMut(u64)) -> BudgetedTime {
    assert!(trials > 0, "need at least one trial");
    let start = Instant::now();
    let mut completed = 0;
    for t in 0..trials {
        trial(t);
        completed += 1;
        // Checked every trial: a clock read is nanoseconds, while a trial
        // on the large datasets can take seconds.
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    let estimated_total = if completed == trials {
        elapsed
    } else {
        Duration::from_secs_f64(elapsed.as_secs_f64() / completed as f64 * trials as f64)
    };
    BudgetedTime {
        completed_trials: completed,
        requested_trials: trials,
        elapsed,
        estimated_total,
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_within_budget() {
        let mut seen = Vec::new();
        let t = run_budgeted(10, Duration::from_secs(60), |i| seen.push(i));
        assert!(t.finished());
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(t.estimated_total, t.elapsed);
        assert!(t.display().ends_with('s'));
    }

    #[test]
    fn truncates_and_extrapolates() {
        let t = run_budgeted(1_000_000, Duration::from_millis(30), |_| {
            std::thread::sleep(Duration::from_millis(1));
        });
        assert!(!t.finished());
        assert!(t.completed_trials < 1_000_000);
        assert!(t.estimated_total > t.elapsed);
        assert!(t.display().contains("timeout"));
        // Extrapolation ≈ requested/completed × elapsed.
        let ratio = t.estimated_total.as_secs_f64() / t.elapsed.as_secs_f64();
        let expect = 1_000_000.0 / t.completed_trials as f64;
        assert!(
            (ratio / expect - 1.0).abs() < 0.01,
            "ratio {ratio} vs {expect}"
        );
    }

    #[test]
    fn time_it_returns_value() {
        let (v, secs) = time_it(|| 7 * 6);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn rejects_zero_trials() {
        let _ = run_budgeted(0, Duration::from_secs(1), |_| {});
    }
}
