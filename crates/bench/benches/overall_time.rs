//! Criterion microbench behind Fig. 7: per-trial cost of MC-VP vs OS vs
//! the two OLS variants on the four dataset stand-ins (small scale — the
//! full comparison with the paper's trial counts is `repro fig7`).

use bench::experiments::{mcvp_budgeted, os_budgeted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::Dataset;
use mpmb_core::{EstimatorKind, KlTrialPolicy, OlsConfig, OrderingListingSampling};
use std::hint::black_box;
use std::time::Duration;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_overall_time");
    group.sample_size(10);
    for dataset in Dataset::all() {
        // Tiny scales keep MC-VP feasible inside criterion's loop.
        let scale = match dataset {
            Dataset::Abide => 0.2,
            Dataset::MovieLens => 0.01,
            Dataset::Jester => 0.002,
            Dataset::Protein => 0.002, // constant-degree scaling: keep MC-VP iterable
        };
        let g = dataset.generate(scale, 42);
        let budget = Duration::from_secs(60);

        group.bench_with_input(
            BenchmarkId::new("mcvp_20trials", dataset.name()),
            &g,
            |b, g| b.iter(|| black_box(mcvp_budgeted(g, 20, 1, budget))),
        );
        group.bench_with_input(
            BenchmarkId::new("os_20trials", dataset.name()),
            &g,
            |b, g| b.iter(|| black_box(os_budgeted(g, 20, 1, budget))),
        );
        group.bench_with_input(BenchmarkId::new("ols_opt", dataset.name()), &g, |b, g| {
            b.iter(|| {
                black_box(
                    OrderingListingSampling::new(OlsConfig {
                        prep_trials: 10,
                        seed: 1,
                        estimator: EstimatorKind::Optimized { trials: 200 },
                        ..Default::default()
                    })
                    .run(g),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("ols_kl", dataset.name()), &g, |b, g| {
            b.iter(|| {
                black_box(
                    OrderingListingSampling::new(OlsConfig {
                        prep_trials: 10,
                        seed: 1,
                        estimator: EstimatorKind::KarpLuby {
                            policy: KlTrialPolicy::Fixed(200),
                        },
                        ..Default::default()
                    })
                    .run(g),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
