//! Criterion bench behind Fig. 6/10 and the §VIII-F "up to 8x" claim:
//! the two estimators at matched *accuracy* — Karp-Luby gets the Eq. 8
//! dynamic trial count, the optimized estimator the fixed N it needs for
//! the same ε–δ guarantee.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::Dataset;
use mpmb_core::{
    estimate_exact_prefix, estimate_karp_luby, estimate_optimized, KlTrialPolicy, OlsConfig,
    OrderingListingSampling,
};
use std::hint::black_box;

fn bench_matched_accuracy(c: &mut Criterion) {
    let mut group = c.benchmark_group("matched_accuracy_estimators");
    group.sample_size(10);
    for dataset in [Dataset::Abide, Dataset::MovieLens] {
        let scale = match dataset {
            Dataset::Abide => 0.3,
            _ => 0.02,
        };
        let g = dataset.generate(scale, 42);
        let candidates = OrderingListingSampling::new(OlsConfig {
            prep_trials: 50,
            seed: 42,
            ..Default::default()
        })
        .prepare(&g);
        if candidates.is_empty() {
            continue;
        }
        let n_op = 1_000u64;
        group.bench_with_input(
            BenchmarkId::new("optimized_fixed", dataset.name()),
            &g,
            |b, g| b.iter(|| black_box(estimate_optimized(g, &candidates, n_op, 3))),
        );
        group.bench_with_input(
            BenchmarkId::new("karp_luby_eq8", dataset.name()),
            &g,
            |b, g| {
                b.iter(|| {
                    black_box(estimate_karp_luby(
                        g,
                        &candidates,
                        KlTrialPolicy::Dynamic {
                            mu: 0.05,
                            base: n_op,
                            min: 50,
                            cap: n_op * 10,
                        },
                        3,
                    ))
                })
            },
        );
        // Zero-error alternative (this library's extension): exact over
        // the candidate set whenever the residual unions are small.
        if estimate_exact_prefix(&g, &candidates, 24).is_ok() {
            group.bench_with_input(
                BenchmarkId::new("exact_prefix", dataset.name()),
                &g,
                |b, g| b.iter(|| black_box(estimate_exact_prefix(g, &candidates, 24).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matched_accuracy);
criterion_main!(benches);
