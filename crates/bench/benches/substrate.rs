//! Criterion bench of the substrate hot paths: CSR construction, world
//! sampling, lazy sampling, and the OS engine's per-trial cost — plus the
//! §V ablation (edge ordering on/off), quantifying the design choice
//! DESIGN.md calls out.

use bigraph::{trial_rng, LazyEdgeSampler, PossibleWorld, WorldSampler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::Dataset;
use mpmb_core::{OsConfig, OsEngine, SamplingOracle};
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let g = Dataset::MovieLens.generate(0.05, 42);

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);

    group.bench_function("graph_build_movielens_5pct", |b| {
        b.iter(|| black_box(Dataset::MovieLens.generate(0.05, 42)))
    });

    group.bench_function("world_sample_full", |b| {
        let mut world = PossibleWorld::empty(g.num_edges());
        let mut rng = trial_rng(1, 0);
        b.iter(|| {
            WorldSampler::sample_into(&g, &mut world, &mut rng);
            black_box(world.num_present())
        })
    });

    group.bench_function("lazy_sampler_trial", |b| {
        let mut sampler = LazyEdgeSampler::new(g.num_edges());
        let mut rng = trial_rng(1, 0);
        b.iter(|| {
            sampler.begin_trial();
            let mut present = 0u32;
            for e in g.edge_ids().take(1000) {
                if sampler.is_present(&g, e, &mut rng) {
                    present += 1;
                }
            }
            black_box(present)
        })
    });

    // §V-B ablation: pruning fully on (dynamic w̄), the paper's static
    // bound, and no edge ordering at all.
    for (label, ordering, dynamic) in [
        ("dynamic", true, true),
        ("paper", true, false),
        ("off", false, false),
    ] {
        let cfg = OsConfig {
            edge_ordering: ordering,
            dynamic_wbar: dynamic,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("os_trial_edge_ordering", label),
            &cfg,
            |b, cfg| {
                let mut engine = OsEngine::new(&g, cfg);
                let mut sampler = LazyEdgeSampler::new(g.num_edges());
                let mut smb = Vec::new();
                let mut t = 0u64;
                b.iter(|| {
                    let mut rng = trial_rng(2, t);
                    t += 1;
                    sampler.begin_trial();
                    let mut oracle = SamplingOracle::new(&g, &mut sampler, &mut rng);
                    black_box(engine.trial(&mut oracle, &mut smb))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
