//! Criterion microbench behind Fig. 8: sampling-phase cost of the two
//! estimators as the trial count grows, over a fixed candidate set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::Dataset;
use mpmb_core::{
    estimate_karp_luby, estimate_optimized, KlTrialPolicy, OlsConfig, OrderingListingSampling,
};
use std::hint::black_box;

fn bench_estimators_by_trials(c: &mut Criterion) {
    let g = Dataset::MovieLens.generate(0.02, 42);
    let candidates = OrderingListingSampling::new(OlsConfig {
        prep_trials: 50,
        seed: 42,
        ..Default::default()
    })
    .prepare(&g);
    assert!(!candidates.is_empty(), "no candidates at this scale");

    let mut group = c.benchmark_group("fig8_sampling_phase");
    group.sample_size(10);
    for trials in [250u64, 500, 1_000, 2_000] {
        group.bench_with_input(BenchmarkId::new("optimized", trials), &trials, |b, &n| {
            b.iter(|| black_box(estimate_optimized(&g, &candidates, n, 7)))
        });
        group.bench_with_input(BenchmarkId::new("karp_luby", trials), &trials, |b, &n| {
            b.iter(|| {
                black_box(estimate_karp_luby(
                    &g,
                    &candidates,
                    KlTrialPolicy::Fixed(n),
                    7,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators_by_trials);
criterion_main!(benches);
