//! Criterion microbench behind Fig. 9: OS trial cost on vertex-induced
//! subsamples of 25–100% of a dataset.

use bench::experiments::os_budgeted;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::scale::induced_vertex_sample;
use datasets::Dataset;
use std::hint::black_box;
use std::time::Duration;

fn bench_scalability(c: &mut Criterion) {
    let base = Dataset::MovieLens.generate(0.05, 42);
    let mut group = c.benchmark_group("fig9_scalability");
    group.sample_size(10);
    for pct in [25u32, 50, 75, 100] {
        let g = induced_vertex_sample(&base, pct as f64 / 100.0, 7);
        group.bench_with_input(BenchmarkId::new("os_50trials", pct), &g, |b, g| {
            b.iter(|| black_box(os_budgeted(g, 50, 1, Duration::from_secs(60))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
