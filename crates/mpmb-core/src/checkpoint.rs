//! Binary encode/decode for resumable solver state.
//!
//! The serving layer checkpoints in-flight solves to disk so a crashed
//! process can resume them with zero statistical cost: every sampler
//! derives trial `t`'s randomness from `(seed, t)` alone, so a partial
//! restored from bytes and driven to completion is **bit-identical** to
//! an uninterrupted run. This module gives each accumulator type a
//! canonical byte encoding on top of [`bigraph::codec`]'s primitives.
//!
//! # Canonical form
//!
//! Hash-map accumulators ([`Tally`], count histograms) are encoded in
//! sorted key order, so the same logical state always produces the same
//! bytes regardless of the map's iteration order. Decoding validates
//! structural invariants (canonical butterflies, sane trial ranges) and
//! returns [`CodecError::Invalid`] instead of panicking — checkpoint
//! bytes come from disk and are untrusted.

use crate::butterfly::Butterfly;
use crate::candidates::{Candidate, CandidateSet};
use crate::distribution::Tally;
use crate::engine::Partial;
use crate::estimators::karp_luby::KlCandidate;
use bigraph::codec::{CodecError, Decoder, Encoder};
use bigraph::fx::FxHashMap;
use bigraph::{EdgeId, Left, Right};

/// A type with a canonical, versioned binary form. Implementations
/// must round-trip exactly: `decode(encode(x)) == x` up to the
/// finalized output (for maps, equal contents).
pub trait Checkpoint: Sized {
    /// Appends this value's canonical encoding.
    fn encode(&self, enc: &mut Encoder);
    /// Decodes one value, validating invariants.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError>;
}

impl Checkpoint for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.u32()
    }
}

impl Checkpoint for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.u64()
    }
}

impl<A: Checkpoint, B: Checkpoint> Checkpoint for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<T: Checkpoint> Checkpoint for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.len() as u64);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        // Every element costs at least one byte, which is enough to
        // reject lengths forged far beyond the remaining input.
        let len = dec.len_capped(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl Checkpoint for Butterfly {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.u1.0);
        enc.u32(self.u2.0);
        enc.u32(self.v1.0);
        enc.u32(self.v2.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let (u1, u2, v1, v2) = (dec.u32()?, dec.u32()?, dec.u32()?, dec.u32()?);
        if u1 == u2 || v1 == v2 {
            return Err(CodecError::Invalid(format!(
                "degenerate butterfly ({u1},{u2}|{v1},{v2})"
            )));
        }
        Ok(Butterfly::new(Left(u1), Left(u2), Right(v1), Right(v2)))
    }
}

impl Checkpoint for Tally {
    fn encode(&self, enc: &mut Encoder) {
        // Sorted entries: one logical tally, one byte sequence.
        let mut entries: Vec<(Butterfly, u64)> =
            self.counts.iter().map(|(b, &c)| (*b, c)).collect();
        entries.sort_unstable_by_key(|e| e.0);
        enc.u64(entries.len() as u64);
        for (b, c) in entries {
            b.encode(enc);
            enc.u64(c);
        }
        enc.u64(self.trials);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = dec.len_capped(24)?;
        let mut counts = FxHashMap::default();
        counts.reserve(len);
        for _ in 0..len {
            let b = Butterfly::decode(dec)?;
            let c = dec.u64()?;
            if counts.insert(b, c).is_some() {
                return Err(CodecError::Invalid(format!("duplicate tally entry {b}")));
            }
        }
        let trials = dec.u64()?;
        Ok(Tally { counts, trials })
    }
}

impl Checkpoint for FxHashMap<u64, u64> {
    fn encode(&self, enc: &mut Encoder) {
        let mut entries: Vec<(u64, u64)> = self.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        enc.u64(entries.len() as u64);
        for (k, v) in entries {
            enc.u64(k);
            enc.u64(v);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = dec.len_capped(16)?;
        let mut out = FxHashMap::default();
        out.reserve(len);
        for _ in 0..len {
            let k = dec.u64()?;
            let v = dec.u64()?;
            if out.insert(k, v).is_some() {
                return Err(CodecError::Invalid(format!("duplicate histogram key {k}")));
            }
        }
        Ok(out)
    }
}

impl Checkpoint for KlCandidate {
    fn encode(&self, enc: &mut Encoder) {
        enc.f64(self.prob);
        enc.u64(self.trials);
        enc.f64(self.s_value);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(KlCandidate {
            prob: dec.f64()?,
            trials: dec.u64()?,
            s_value: dec.f64()?,
        })
    }
}

impl Checkpoint for Candidate {
    fn encode(&self, enc: &mut Encoder) {
        self.butterfly.encode(enc);
        enc.f64(self.weight);
        for e in self.edges {
            enc.u32(e.0);
        }
        enc.f64(self.existence_prob);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let butterfly = Butterfly::decode(dec)?;
        let weight = dec.f64()?;
        let mut edges = [EdgeId(0); 4];
        for e in &mut edges {
            *e = EdgeId(dec.u32()?);
        }
        let existence_prob = dec.f64()?;
        if !(0.0..=1.0).contains(&existence_prob) {
            return Err(CodecError::Invalid(format!(
                "existence probability {existence_prob} out of [0,1]"
            )));
        }
        Ok(Candidate {
            butterfly,
            weight,
            edges,
            existence_prob,
        })
    }
}

impl Checkpoint for CandidateSet {
    /// Encodes the full precomputed set — weights, edge ids, existence
    /// probabilities — so restoring never needs the graph. Decoding
    /// rebuilds the canonical order and `L(i)` table from scratch; the
    /// sort key is a total order over candidate contents, so the
    /// restored indices match the originals exactly.
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.len() as u64);
        for c in self.iter() {
            c.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = dec.len_capped(48)?;
        let mut candidates = Vec::with_capacity(len);
        let mut seen = bigraph::fx::FxHashSet::default();
        for _ in 0..len {
            let c = Candidate::decode(dec)?;
            if !seen.insert(c.butterfly) {
                return Err(CodecError::Invalid(format!(
                    "duplicate candidate {}",
                    c.butterfly
                )));
            }
            candidates.push(c);
        }
        Ok(CandidateSet::from_unique_candidates(candidates))
    }
}

impl<A: Checkpoint> Checkpoint for Partial<A> {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.trials_requested());
        enc.u64(self.done_ranges().len() as u64);
        for r in self.done_ranges() {
            enc.u64(r.start);
            enc.u64(r.end);
        }
        self.acc.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let trials_requested = dec.u64()?;
        let ranges = dec.len_capped(16)?;
        let mut done = Vec::with_capacity(ranges);
        for _ in 0..ranges {
            let start = dec.u64()?;
            let end = dec.u64()?;
            if start >= end || end > trials_requested {
                return Err(CodecError::Invalid(format!(
                    "trial range {start}..{end} out of 0..{trials_requested}"
                )));
            }
            done.push(start..end);
        }
        let acc = A::decode(dec)?;
        let mut partial = Partial::empty(acc, trials_requested);
        for r in done {
            partial.mark_done(r);
        }
        Ok(partial)
    }
}

/// Encodes one value into a fresh byte vector (convenience wrapper).
pub fn encode_to_vec<T: Checkpoint>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

/// Decodes one value from a byte slice, requiring full consumption.
pub fn decode_exact<T: Checkpoint>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut dec = Decoder::new(bytes);
    let value = T::decode(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(CodecError::Invalid(format!(
            "{} trailing bytes after value",
            dec.remaining()
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Cancel, Executor};
    use crate::{McVpConfig, McVpTrials, OlsConfig, PrepareTrials};
    use bigraph::{GraphBuilder, UncertainBipartiteGraph};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn bf(u1: u32, u2: u32, v1: u32, v2: u32) -> Butterfly {
        Butterfly::new(Left(u1), Left(u2), Right(v1), Right(v2))
    }

    fn round_trip<T: Checkpoint>(value: &T) -> T {
        decode_exact(&encode_to_vec(value)).expect("round trip")
    }

    #[test]
    fn tally_round_trips_and_is_canonical() {
        let mut t = Tally::new();
        t.record_trial([&bf(0, 1, 0, 1)]);
        t.record_trial([&bf(0, 1, 0, 1), &bf(0, 1, 1, 2)]);
        t.record_trial([]);
        let back = round_trip(&t);
        assert_eq!(back.trials(), 3);
        assert_eq!(back.count(&bf(0, 1, 0, 1)), 2);
        assert_eq!(back.count(&bf(0, 1, 1, 2)), 1);
        // Canonical: two tallies built in different orders encode equal.
        let mut t2 = Tally::new();
        t2.record_trial([&bf(0, 1, 1, 2), &bf(0, 1, 0, 1)]);
        t2.record_trial([&bf(0, 1, 0, 1)]);
        t2.record_trial([]);
        assert_eq!(encode_to_vec(&t), encode_to_vec(&t2));
    }

    #[test]
    fn degenerate_butterfly_is_invalid_not_a_panic() {
        let mut enc = Encoder::new();
        enc.u32(3);
        enc.u32(3);
        enc.u32(0);
        enc.u32(1);
        assert!(matches!(
            decode_exact::<Butterfly>(&enc.into_bytes()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn candidate_set_restores_identical_order_without_the_graph() {
        let g = fig1();
        let all = crate::butterfly::enumerate_backbone_butterflies(&g);
        let cs = CandidateSet::from_butterflies(&g, all);
        let back = round_trip(&cs);
        assert_eq!(back.len(), cs.len());
        for i in 0..cs.len() {
            let (a, b) = (cs.get(i), back.get(i));
            assert_eq!(a.butterfly, b.butterfly);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            assert_eq!(a.edges, b.edges);
            assert_eq!(a.existence_prob.to_bits(), b.existence_prob.to_bits());
            assert_eq!(cs.larger_count(i), back.larger_count(i));
        }
    }

    #[test]
    fn partial_round_trip_preserves_ranges() {
        let mut p: Partial<u64> = Partial::empty(41, 1_000);
        p.mark_done(0..64);
        p.mark_done(500..600);
        let back = round_trip(&p);
        assert_eq!(back.acc, 41);
        assert_eq!(back.trials_requested(), 1_000);
        assert_eq!(back.done_ranges(), p.done_ranges());
        assert_eq!(back.missing(), p.missing());
    }

    #[test]
    fn partial_rejects_out_of_bound_ranges() {
        let mut enc = Encoder::new();
        enc.u64(100); // trials_requested
        enc.u64(1); // one range
        enc.u64(50);
        enc.u64(150); // end > requested
        enc.u64(0); // acc
        assert!(matches!(
            decode_exact::<Partial<u64>>(&enc.into_bytes()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&7u64);
        bytes.push(0);
        assert!(matches!(
            decode_exact::<u64>(&bytes),
            Err(CodecError::Invalid(_))
        ));
    }

    /// The property the durable-checkpoint design rests on: interrupt a
    /// real sampler, serialize its partial, decode it, resume — and get
    /// the exact bytes an uninterrupted run produces.
    #[test]
    fn resumed_after_round_trip_is_bit_identical() {
        let g = fig1();
        let engine = McVpTrials::new(
            &g,
            &McVpConfig {
                trials: 2_000,
                seed: 17,
            },
        );
        let exec = Executor::new(2);
        let full = exec.run(&engine, 2_000, &Cancel::never());

        let mut partial = exec.run(&engine, 2_000, &Cancel::after_trials(300));
        assert!(!partial.completed());
        let mut restored: Partial<Tally> = round_trip(&partial);
        exec.resume(&engine, &mut restored, &Cancel::never());
        exec.resume(&engine, &mut partial, &Cancel::never());
        assert!(restored.completed());
        assert_eq!(
            restored
                .acc
                .into_distribution()
                .max_abs_diff(&full.acc.clone().into_distribution()),
            0.0
        );
        assert_eq!(
            partial
                .acc
                .into_distribution()
                .max_abs_diff(&full.acc.into_distribution()),
            0.0
        );
    }

    #[test]
    fn prepare_partial_round_trips() {
        let g = fig1();
        let cfg = OlsConfig {
            prep_trials: 200,
            seed: 5,
            ..Default::default()
        };
        let engine = PrepareTrials::new(&g, &cfg);
        let exec = Executor::new(1).check_every(16);
        let p = exec.run(&engine, 200, &Cancel::after_trials(64));
        assert!(!p.completed());
        let back: Partial<Vec<Butterfly>> = round_trip(&p);
        assert_eq!(back.acc, p.acc);
        assert_eq!(back.done_ranges(), p.done_ranges());
    }

    #[test]
    fn count_histogram_round_trips_canonically() {
        let mut h1 = FxHashMap::default();
        let mut h2 = FxHashMap::default();
        for (k, v) in [(9u64, 2u64), (1, 5), (4, 1)] {
            h1.insert(k, v);
        }
        for (k, v) in [(4u64, 1u64), (9, 2), (1, 5)] {
            h2.insert(k, v);
        }
        assert_eq!(encode_to_vec(&h1), encode_to_vec(&h2));
        assert_eq!(round_trip(&h1), h1);
    }

    #[test]
    fn kl_rows_round_trip() {
        let rows: Vec<(u32, KlCandidate)> = vec![
            (
                0,
                KlCandidate {
                    prob: 0.25,
                    trials: 400,
                    s_value: 1.5,
                },
            ),
            (
                3,
                KlCandidate {
                    prob: 0.5,
                    trials: 0,
                    s_value: 0.0,
                },
            ),
        ];
        let back = round_trip(&rows);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, 0);
        assert_eq!(back[0].1.prob.to_bits(), rows[0].1.prob.to_bits());
        assert_eq!(back[1].1.trials, 0);
    }
}
