//! Ordering Sampling (Algorithm 2) — the paper's first method.
//!
//! Three optimizations over the MC-VP baseline, all implemented here:
//!
//! * **Edge Ordering (§V-B)** — edges are scanned in weight-descending
//!   order; once `w(e) + w̄ < w_max` (with `w̄` the top-3 weight sum), no
//!   later edge can participate in a maximum butterfly and the trial stops.
//!   Combined with lazy sampling, the pruned tail is never even sampled.
//! * **Angle Ordering (§V-C)** — per endpoint pair only the two heaviest
//!   angle weight classes are kept ([`TopTwoAngles`], Table II).
//! * **Fast Butterfly Creating (§V-D)** — `w_max` is maintained during the
//!   scan and only butterflies achieving it are materialized afterwards.

use crate::angle::SlotTable;
use crate::butterfly::Butterfly;
use crate::distribution::{Distribution, Tally};
use crate::engine::{Cancel, Executor, TrialEngine};
use crate::observer::{NoopObserver, TrialObserver};
use bigraph::{
    trial_rng, EdgeId, LazyEdgeSampler, Left, PossibleWorld, Right, Side, UncertainBipartiteGraph,
    Weight,
};
use rand::Rng;

/// Tells a trial whether an edge exists. Implementations: streaming or
/// lazy Bernoulli sampling (production) and fixed possible worlds (tests,
/// cross-checks).
pub trait EdgeOracle {
    /// Whether edge `e` is present in the current trial's world.
    fn present(&mut self, e: EdgeId) -> bool;

    /// Like [`EdgeOracle::present`], but the caller additionally passes
    /// `pos`, the edge's position in the graph's weight-descending order
    /// (`e == desc_edge_ids()[pos]`). Sampling oracles use it to read the
    /// acceptance threshold from the scan-aligned array — a sequential
    /// load instead of a random gather — without changing the decision.
    #[inline]
    fn present_at(&mut self, pos: usize, e: EdgeId) -> bool {
        let _ = pos;
        self.present(e)
    }
}

/// Oracle that draws lazily from the graph's edge probabilities.
pub struct SamplingOracle<'a, R: Rng> {
    g: &'a UncertainBipartiteGraph,
    sampler: &'a mut LazyEdgeSampler,
    rng: &'a mut R,
}

impl<'a, R: Rng> SamplingOracle<'a, R> {
    /// Creates an oracle; the caller must have called
    /// [`LazyEdgeSampler::begin_trial`] for this trial.
    pub fn new(
        g: &'a UncertainBipartiteGraph,
        sampler: &'a mut LazyEdgeSampler,
        rng: &'a mut R,
    ) -> Self {
        SamplingOracle { g, sampler, rng }
    }
}

impl<R: Rng> EdgeOracle for SamplingOracle<'_, R> {
    #[inline]
    fn present(&mut self, e: EdgeId) -> bool {
        self.sampler.is_present(self.g, e, self.rng)
    }
}

/// Non-memoizing Bernoulli oracle for engines that query each edge **at
/// most once per trial** (the single weight-descending scan of OS, OLS
/// preparation, and the threshold solver).
///
/// Each query consumes exactly one `next_u64` word and compares it
/// against the edge's precomputed fixed-point threshold — the same draw,
/// in the same stream position, as [`LazyEdgeSampler::is_present`] on
/// first access, so replacing the lazy sampler in a single-scan engine
/// is bit-identical. Skipping the memo removes the per-edge stamp/
/// outcome writes (and the cache traffic they cost) from the hot loop.
pub struct StreamingOracle<'a, R: Rng> {
    g: &'a UncertainBipartiteGraph,
    rng: &'a mut R,
}

impl<'a, R: Rng> StreamingOracle<'a, R> {
    /// Creates an oracle drawing from `rng`. The caller must ensure each
    /// edge is queried at most once per trial; repeated queries would
    /// redraw (unlike the memoized [`SamplingOracle`]).
    pub fn new(g: &'a UncertainBipartiteGraph, rng: &'a mut R) -> Self {
        StreamingOracle { g, rng }
    }
}

impl<R: Rng> EdgeOracle for StreamingOracle<'_, R> {
    #[inline]
    fn present(&mut self, e: EdgeId) -> bool {
        bigraph::accept_word(self.rng.next_u64(), self.g.accept_threshold(e))
    }

    #[inline]
    fn present_at(&mut self, pos: usize, _e: EdgeId) -> bool {
        bigraph::accept_word(self.rng.next_u64(), self.g.desc_accepts()[pos])
    }
}

/// Oracle over a fixed, fully materialized possible world.
pub struct WorldOracle<'a>(pub &'a PossibleWorld);

impl EdgeOracle for WorldOracle<'_> {
    #[inline]
    fn present(&mut self, e: EdgeId) -> bool {
        self.0.contains(e)
    }
}

/// Configuration for [`OrderingSampling`].
#[derive(Clone, Copy, Debug)]
pub struct OsConfig {
    /// Number of trials `N_os` (paper default `2·10⁴`).
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Enables the §V-B edge-ordering pruning. Disabling it is only
    /// useful for the ablation benchmarks; results are identical.
    pub edge_ordering: bool,
    /// Tightens the §V-B bound using only *present* edges (an extension
    /// beyond the paper; see [`OsEngine::trial`]). Identical results,
    /// earlier pruning — it matters when heavy edges have low
    /// probability, e.g. distance-weighted brain networks. Only
    /// meaningful when `edge_ordering` is on.
    pub dynamic_wbar: bool,
    /// Which side provides angle middles; `None` picks the cheaper side
    /// by the Lemma V.1 cost proxy.
    pub middle_side: Option<Side>,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            trials: 20_000,
            seed: 0x5EED,
            edge_ordering: true,
            dynamic_wbar: true,
            middle_side: None,
        }
    }
}

/// The Ordering Sampling solver.
#[derive(Clone, Copy, Debug)]
pub struct OrderingSampling {
    cfg: OsConfig,
}

impl OrderingSampling {
    /// Creates a solver with the given configuration.
    pub fn new(cfg: OsConfig) -> Self {
        OrderingSampling { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OsConfig {
        &self.cfg
    }

    /// Runs `N_os` trials and returns the estimated distribution.
    pub fn run(&self, g: &UncertainBipartiteGraph) -> Distribution {
        self.run_with_observer(g, &mut NoopObserver)
    }

    /// Runs with a per-trial observer.
    pub fn run_with_observer(
        &self,
        g: &UncertainBipartiteGraph,
        observer: &mut dyn TrialObserver,
    ) -> Distribution {
        assert!(self.cfg.trials > 0, "trials must be positive");
        Executor::new(1)
            .run_with_observer(
                &OsTrials::new(g, &self.cfg),
                self.cfg.trials,
                &Cancel::never(),
                observer,
            )
            .acc
            .into_distribution()
    }
}

/// Algorithm 2's per-trial body as a [`TrialEngine`]: lazily sample a
/// world under the weight-descending scan, extract `S_MB`, tally it.
pub struct OsTrials<'g> {
    g: &'g UncertainBipartiteGraph,
    cfg: OsConfig,
}

impl<'g> OsTrials<'g> {
    /// Builds the engine for `g` under `cfg` (trial streams use
    /// `cfg.seed`).
    pub fn new(g: &'g UncertainBipartiteGraph, cfg: &OsConfig) -> Self {
        OsTrials { g, cfg: *cfg }
    }
}

impl<'g> TrialEngine for OsTrials<'g> {
    type Acc = Tally;
    type Scratch = (OsEngine<'g>, Vec<Butterfly>);

    fn new_acc(&self) -> Tally {
        Tally::new()
    }

    fn new_scratch(&self) -> Self::Scratch {
        (OsEngine::new(self.g, &self.cfg), Vec::new())
    }

    fn trial(
        &self,
        t: u64,
        (engine, smb): &mut Self::Scratch,
        tally: &mut Tally,
        observer: &mut dyn TrialObserver,
    ) {
        let mut rng = trial_rng(self.cfg.seed, t);
        // The engine queries each edge at most once (single §V-B scan),
        // so the non-memoizing streaming oracle draws the exact same
        // stream the historical lazy sampler did.
        let mut oracle = StreamingOracle::new(self.g, &mut rng);
        engine.trial(&mut oracle, smb);
        observer.observe(t, smb);
        tally.record_trial(smb.iter());
    }

    fn merge(&self, into: &mut Tally, from: Tally) {
        into.merge(from);
    }

    fn phase(&self) -> &'static str {
        "os.sample"
    }
}

/// Reusable per-trial machinery of Algorithm 2.
///
/// Lives for the duration of a run so the adjacency scratch (`added`), the
/// touched-middle list, and the slot map keep their capacity across trials.
pub struct OsEngine<'g> {
    g: &'g UncertainBipartiteGraph,
    middle_side: Side,
    /// `w̄`, the top-3 edge weight sum (Algorithm 2 line 2).
    w_bar: Weight,
    edge_ordering: bool,
    dynamic_wbar: bool,
    /// Per-middle list of already-scanned present edges: `(other, w(e))`.
    added: Vec<Vec<(u32, Weight)>>,
    /// Middles with non-empty `added` lists, for O(touched) clearing.
    touched: Vec<u32>,
    /// `A₁/A₂` slots per endpoint pair (non-middle side). A flat
    /// generation-stamped table, not a map of `TopTwoAngles`: dense
    /// trials create tens of thousands of slots, almost all single-angle
    /// (see [`SlotTable`]).
    slots: SlotTable,
}

impl<'g> OsEngine<'g> {
    /// Prepares an engine for `g` under `cfg`.
    pub fn new(g: &'g UncertainBipartiteGraph, cfg: &OsConfig) -> Self {
        let middle_side = cfg.middle_side.unwrap_or_else(|| g.cheaper_middle_side());
        let mids = match middle_side {
            Side::Left => g.num_left(),
            Side::Right => g.num_right(),
        };
        OsEngine {
            g,
            middle_side,
            w_bar: g.top3_weight_sum(),
            edge_ordering: cfg.edge_ordering,
            dynamic_wbar: cfg.dynamic_wbar,
            added: vec![Vec::new(); mids],
            touched: Vec::new(),
            slots: SlotTable::new(),
        }
    }

    /// The middle side this engine settled on.
    pub fn middle_side(&self) -> Side {
        self.middle_side
    }

    /// Runs one trial against `oracle`, writing the maximum butterfly set
    /// into `smb` (cleared first). Returns `w_max` (0 when `smb` is empty).
    ///
    /// # Dynamic `w̄` (extension beyond the paper)
    ///
    /// The published §V-B bound prunes once `w(e) + w̄ < w_max` with `w̄`
    /// the global top-3 weight sum. But any still-unregistered butterfly
    /// has (a) at least one edge at or after the scan position (weight
    /// `≤ w(e)`), and (b) three companion edges that are each either
    /// *already scanned and present* (so `≤` the top present weights) or
    /// themselves at/after the position (`≤ w(e)`). The sum of its
    /// companions is therefore at most the sum of the three largest
    /// values in `{p₁, p₂, p₃, w(e), w(e), w(e)}`, with `pᵢ` the three
    /// heaviest *present* edges so far. That bound is never looser than
    /// the paper's, and is substantially tighter when heavy edges carry
    /// low probabilities (e.g. distance-weighted brain networks where
    /// long-range connections are improbable). Pruning earlier never
    /// changes `S_MB` — only butterflies strictly below `w_max` are
    /// skipped.
    pub fn trial(&mut self, oracle: &mut dyn EdgeOracle, smb: &mut Vec<Butterfly>) -> Weight {
        smb.clear();
        self.clear_scratch();

        let mut w_max = f64::NEG_INFINITY;
        // Top-3 present edge weights seen so far (descending).
        let mut present_top = [f64::NEG_INFINITY; 3];
        // Scan-aligned arrays: weights (and, inside sampling oracles,
        // acceptance thresholds) are read sequentially instead of
        // gathered through the edge-id permutation.
        let desc_ids = self.g.desc_edge_ids();
        let desc_weights = self.g.desc_weights();
        for pos in 0..desc_ids.len() {
            let e = EdgeId(desc_ids[pos]);
            let w_e = desc_weights[pos];
            // §V-B: every butterfly through e weighs ≤ w(e) + w̄.
            if self.edge_ordering {
                let w_bar = if self.dynamic_wbar {
                    dynamic_wbar(&present_top, w_e)
                } else {
                    self.w_bar
                };
                if w_e + w_bar < w_max {
                    break;
                }
            }
            if !oracle.present_at(pos, e) {
                continue;
            }
            // Insert w_e into the sorted top-3 (edges arrive in
            // descending weight order, so this fills front-to-back).
            // Maintained unconditionally: the combine prune below needs
            // the top-2 present weights even when dynamic w̄ is off.
            if w_e > present_top[0] {
                present_top = [w_e, present_top[0], present_top[1]];
            } else if w_e > present_top[1] {
                present_top = [present_top[0], w_e, present_top[1]];
            } else if w_e > present_top[2] {
                present_top[2] = w_e;
            }
            let (u, v) = self.g.endpoints(e);
            let (mid, other) = match self.middle_side {
                Side::Right => (v.0, u.0),
                Side::Left => (u.0, v.0),
            };
            // Any butterfly is two angles on the same endpoint pair; each
            // angle is a sum of two *present* edges. Every present edge —
            // seen or still ahead of the weight-descending scan — weighs
            // at most `max(present_top[i], w_e)`, so no companion angle
            // can ever exceed this bound. It is fixed for the rest of the
            // trial once two present edges have been seen.
            let companion = present_top[0].max(w_e) + present_top[1].max(w_e);
            // Combine with every earlier present edge sharing this middle
            // (Algorithm 2 lines 10–13). `added` holds partners in scan
            // order, i.e. weight-descending: as soon as one angle cannot
            // reach `w_max` with the best possible companion, neither can
            // any later partner — break, don't wade through the slot map.
            // `w_max` only grows, so skipped angles can never re-qualify;
            // ties (`==`) are kept, so `S_MB` is untouched.
            let (added, slots) = (&self.added, &mut self.slots);
            for &(o2, w2) in &added[mid as usize] {
                if w_e + w2 + companion < w_max {
                    break;
                }
                if let Some(bw) = slots.insert(other.min(o2), other.max(o2), mid, w_e + w2) {
                    if bw > w_max {
                        w_max = bw;
                    }
                }
            }
            if self.added[mid as usize].is_empty() {
                self.touched.push(mid);
            }
            self.added[mid as usize].push((other, w_e));
        }

        // §V-D fast butterfly creating (Algorithm 2 lines 15–20).
        let (slots, middle_side) = (&self.slots, self.middle_side);
        slots.for_each_live(|x, y, w1, m1, w2, m2| {
            if m1.len() >= 2 {
                if w1 + w1 == w_max {
                    for i in 0..m1.len() {
                        for j in (i + 1)..m1.len() {
                            smb.push(Self::butterfly_of(middle_side, x, y, m1[i], m1[j]));
                        }
                    }
                }
            } else if !m2.is_empty() && w1 + w2 == w_max {
                for &b in m2 {
                    smb.push(Self::butterfly_of(middle_side, x, y, m1[0], b));
                }
            }
        });
        if smb.is_empty() {
            0.0
        } else {
            w_max
        }
    }

    #[inline]
    fn butterfly_of(middle_side: Side, x: u32, y: u32, mid_a: u32, mid_b: u32) -> Butterfly {
        match middle_side {
            Side::Right => Butterfly::new(Left(x), Left(y), Right(mid_a), Right(mid_b)),
            Side::Left => Butterfly::new(Left(mid_a), Left(mid_b), Right(x), Right(y)),
        }
    }

    fn clear_scratch(&mut self) {
        let touched = std::mem::take(&mut self.touched);
        for &m in &touched {
            self.added[m as usize].clear();
        }
        self.touched = touched;
        self.touched.clear();
        self.slots.begin_trial();
    }
}

/// The three largest values of `{p₁, p₂, p₃, wₑ, wₑ, wₑ}` summed, where
/// `present_top` is sorted descending (possibly containing `-∞` slots).
#[inline]
fn dynamic_wbar(present_top: &[Weight; 3], w_e: Weight) -> Weight {
    if w_e >= present_top[0] {
        3.0 * w_e
    } else if w_e >= present_top[1] {
        present_top[0] + 2.0 * w_e
    } else if w_e >= present_top[2] {
        present_top[0] + present_top[1] + w_e
    } else {
        present_top[0] + present_top[1] + present_top[2]
    }
}

/// Computes `S_MB(W)` of a fixed world with the Ordering Sampling engine —
/// the per-trial body exposed for cross-validation against MC-VP and brute
/// force. Returns `(w_max, S_MB)`.
pub fn os_smb_of_world(
    g: &UncertainBipartiteGraph,
    world: &PossibleWorld,
    cfg: &OsConfig,
) -> (Weight, Vec<Butterfly>) {
    let mut engine = OsEngine::new(g, cfg);
    let mut smb = Vec::new();
    let w = engine.trial(&mut WorldOracle(world), &mut smb);
    (w, smb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::max_butterflies_in_world;
    use bigraph::GraphBuilder;

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn sorted(mut v: Vec<Butterfly>) -> Vec<Butterfly> {
        v.sort();
        v
    }

    #[test]
    fn per_world_smb_matches_brute_force_all_fig1_worlds() {
        let g = fig1();
        for mask in 0u32..64 {
            let mut world = PossibleWorld::empty(6);
            for i in 0..6 {
                if mask >> i & 1 == 1 {
                    world.insert(EdgeId(i));
                }
            }
            for middle in [Some(Side::Left), Some(Side::Right), None] {
                for ordering in [true, false] {
                    for dynamic in [true, false] {
                        let cfg = OsConfig {
                            edge_ordering: ordering,
                            dynamic_wbar: dynamic,
                            middle_side: middle,
                            ..Default::default()
                        };
                        let (w, smb) = os_smb_of_world(&g, &world, &cfg);
                        let (rw, rsmb) = max_butterflies_in_world(&g, &world);
                        assert_eq!(
                            sorted(smb.clone()),
                            sorted(rsmb),
                            "mask={mask} middle={middle:?} ordering={ordering} dynamic={dynamic}"
                        );
                        if !smb.is_empty() {
                            assert_eq!(w, rw);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ties_produce_multiple_maximum_butterflies() {
        // K_{2,3} with all weights equal: three butterflies tie.
        let mut b = GraphBuilder::new();
        for u in 0..2 {
            for v in 0..3 {
                b.add_edge(Left(u), Right(v), 1.0, 1.0).unwrap();
            }
        }
        let g = b.build().unwrap();
        let (w, smb) = os_smb_of_world(&g, &PossibleWorld::full(&g), &OsConfig::default());
        assert_eq!(w, 4.0);
        assert_eq!(smb.len(), 3);
        assert_eq!(sorted(smb.clone()), {
            let mut v = smb;
            v.sort();
            v.dedup();
            v
        });
    }

    #[test]
    fn pruning_does_not_change_results() {
        let g = fig1();
        let cfg_on = OsConfig {
            trials: 3_000,
            seed: 5,
            ..Default::default()
        };
        let cfg_off = OsConfig {
            edge_ordering: false,
            ..cfg_on
        };
        let d_on = OrderingSampling::new(cfg_on).run(&g);
        let d_off = OrderingSampling::new(cfg_off).run(&g);
        // Identical trial RNG streams — but the pruned run draws fewer
        // edges per trial, so the *outcomes on scanned edges* coincide and
        // every per-trial S_MB is equal. Distributions match exactly.
        assert_eq!(d_on.max_abs_diff(&d_off), 0.0);
    }

    #[test]
    fn dynamic_wbar_does_not_change_results() {
        let g = fig1();
        let base = OsConfig {
            trials: 3_000,
            seed: 6,
            ..Default::default()
        };
        let d_dyn = OrderingSampling::new(OsConfig {
            dynamic_wbar: true,
            ..base
        })
        .run(&g);
        let d_paper = OrderingSampling::new(OsConfig {
            dynamic_wbar: false,
            ..base
        })
        .run(&g);
        // Same per-trial RNG streams; the dynamic bound may break earlier
        // but never drops a maximum butterfly, so the tallies coincide.
        assert_eq!(d_dyn.max_abs_diff(&d_paper), 0.0);
    }

    #[test]
    fn dynamic_wbar_helper_matches_spec() {
        use super::dynamic_wbar;
        let ninf = f64::NEG_INFINITY;
        // Nothing present yet: all three companions could be future edges.
        assert_eq!(dynamic_wbar(&[ninf; 3], 5.0), 15.0);
        // One heavy present edge: it plus two future edges.
        assert_eq!(dynamic_wbar(&[9.0, ninf, ninf], 5.0), 19.0);
        // Two present: both plus one future edge.
        assert_eq!(dynamic_wbar(&[9.0, 7.0, ninf], 5.0), 21.0);
        // Three present heavier than w_e: the paper's shape, but with
        // present weights.
        assert_eq!(dynamic_wbar(&[9.0, 7.0, 6.0], 5.0), 22.0);
        // Present edges lighter than w_e cannot happen in a descending
        // scan, but the helper still answers conservatively.
        assert_eq!(dynamic_wbar(&[3.0, 2.0, 1.0], 5.0), 15.0);
    }

    #[test]
    fn estimates_converge_to_exact() {
        let g = fig1();
        let d = OrderingSampling::new(OsConfig {
            trials: 40_000,
            seed: 7,
            ..Default::default()
        })
        .run(&g);
        let exact = crate::exact::exact_distribution(&g, Default::default()).unwrap();
        for (b, &p) in exact.iter() {
            assert!(
                (d.prob(b) - p).abs() < 0.01,
                "{b}: est {} vs exact {}",
                d.prob(b),
                p
            );
        }
        assert_eq!(d.mpmb().unwrap().0, exact.mpmb().unwrap().0);
    }

    #[test]
    fn middle_side_choice_is_transparent() {
        let g = fig1();
        let d_l = OrderingSampling::new(OsConfig {
            trials: 2_000,
            seed: 3,
            middle_side: Some(Side::Left),
            ..Default::default()
        })
        .run(&g);
        let d_r = OrderingSampling::new(OsConfig {
            trials: 2_000,
            seed: 3,
            middle_side: Some(Side::Right),
            ..Default::default()
        })
        .run(&g);
        // Same trial RNG streams and the same scan order ⇒ same sampled
        // outcomes per edge ⇒ identical S_MB sets per trial.
        assert_eq!(d_l.max_abs_diff(&d_r), 0.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let g = fig1();
        let cfg = OsConfig {
            trials: 800,
            seed: 11,
            ..Default::default()
        };
        let a = OrderingSampling::new(cfg).run(&g);
        let b = OrderingSampling::new(cfg).run(&g);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new().build().unwrap();
        let d = OrderingSampling::new(OsConfig {
            trials: 10,
            seed: 0,
            ..Default::default()
        })
        .run(&g);
        assert!(d.is_empty());
    }

    #[test]
    fn engine_scratch_survives_many_trials() {
        // Exercise scratch reuse: alternating dense/empty worlds.
        let g = fig1();
        let mut engine = OsEngine::new(&g, &OsConfig::default());
        let mut smb = Vec::new();
        let full = PossibleWorld::full(&g);
        let empty = PossibleWorld::empty(g.num_edges());
        for i in 0..50 {
            let world = if i % 2 == 0 { &full } else { &empty };
            let w = engine.trial(&mut WorldOracle(world), &mut smb);
            if i % 2 == 0 {
                assert_eq!(w, 10.0);
                assert_eq!(smb.len(), 1);
            } else {
                assert!(smb.is_empty());
            }
        }
    }
}
