//! Estimated (or exact) distributions of `P(B)` — the probability of each
//! butterfly being the maximum weighted butterfly (Equation 4).

use crate::butterfly::Butterfly;
use bigraph::fx::FxHashMap;

/// A map from butterflies to (estimated or exact) `P(B)` mass.
///
/// Solvers produce these; [`Distribution::mpmb`] answers the headline query
/// (Definition 5) and [`Distribution::top_k`] the §VII extension.
#[derive(Clone, Debug, Default)]
pub struct Distribution {
    probs: FxHashMap<Butterfly, f64>,
    /// Number of Monte-Carlo trials that produced this estimate; `None`
    /// for exact distributions.
    trials: Option<u64>,
}

impl Distribution {
    /// An empty distribution (no butterfly observed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from per-butterfly trial hit counts.
    pub fn from_counts(counts: FxHashMap<Butterfly, u64>, trials: u64) -> Self {
        assert!(trials > 0, "zero-trial distribution");
        let probs = counts
            .into_iter()
            .map(|(b, c)| (b, c as f64 / trials as f64))
            .collect();
        Distribution {
            probs,
            trials: Some(trials),
        }
    }

    /// Builds from exact probabilities.
    pub fn from_exact(probs: FxHashMap<Butterfly, f64>) -> Self {
        Distribution {
            probs,
            trials: None,
        }
    }

    /// Builds from estimated probabilities produced with `trials` trials
    /// (used by OLS estimators whose per-butterfly masses are not simple
    /// hit counts, e.g. Karp-Luby).
    pub fn from_estimates(probs: FxHashMap<Butterfly, f64>, trials: u64) -> Self {
        Distribution {
            probs,
            trials: Some(trials),
        }
    }

    /// Number of distinct butterflies with positive mass.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether no butterfly has mass.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Trial count, when this is a sampled estimate.
    pub fn trials(&self) -> Option<u64> {
        self.trials
    }

    /// The estimated `P(B)`; 0 for unseen butterflies.
    pub fn prob(&self, b: &Butterfly) -> f64 {
        self.probs.get(b).copied().unwrap_or(0.0)
    }

    /// The MPMB (Definition 5): the butterfly maximizing `P(B)`. Ties are
    /// broken by canonical butterfly order so the answer is deterministic.
    pub fn mpmb(&self) -> Option<(Butterfly, f64)> {
        self.probs
            .iter()
            .map(|(&b, &p)| (b, p))
            .max_by(|(b1, p1), (b2, p2)| p1.total_cmp(p2).then_with(|| b2.cmp(b1)))
    }

    /// The top-k butterflies by `P(B)` descending (§VII), deterministic
    /// under ties.
    pub fn top_k(&self, k: usize) -> Vec<(Butterfly, f64)> {
        let mut v: Vec<(Butterfly, f64)> = self.probs.iter().map(|(&b, &p)| (b, p)).collect();
        v.sort_unstable_by(|(b1, p1), (b2, p2)| p2.total_cmp(p1).then_with(|| b1.cmp(b2)));
        v.truncate(k);
        v
    }

    /// All `(butterfly, P)` pairs sorted like [`Distribution::top_k`].
    pub fn sorted(&self) -> Vec<(Butterfly, f64)> {
        self.top_k(self.probs.len())
    }

    /// Iterator over entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Butterfly, &f64)> {
        self.probs.iter()
    }

    /// Total mass. For exact distributions this is ≤ 1 (worlds with no
    /// butterfly contribute nothing); for sampled ones the same holds in
    /// expectation per weight class but can exceed 1 because tied-maximum
    /// worlds credit every tied butterfly.
    pub fn total_mass(&self) -> f64 {
        self.probs.values().sum()
    }

    /// Restricts the distribution to butterflies containing the given
    /// left vertex — the per-region queries of the Fig. 3 brain analysis
    /// ("which butterflies anchor at this ROI?"). Trial provenance is
    /// preserved.
    pub fn filter_containing_left(&self, u: bigraph::Left) -> Distribution {
        Distribution {
            probs: self
                .probs
                .iter()
                .filter(|(b, _)| b.u1 == u || b.u2 == u)
                .map(|(&b, &p)| (b, p))
                .collect(),
            trials: self.trials,
        }
    }

    /// Restricts the distribution to butterflies containing the given
    /// right vertex.
    pub fn filter_containing_right(&self, v: bigraph::Right) -> Distribution {
        Distribution {
            probs: self
                .probs
                .iter()
                .filter(|(b, _)| b.v1 == v || b.v2 == v)
                .map(|(&b, &p)| (b, p))
                .collect(),
            trials: self.trials,
        }
    }

    /// Largest absolute difference in `P(B)` against another distribution
    /// (over the union of supports). The convergence metric of Fig. 11.
    pub fn max_abs_diff(&self, other: &Distribution) -> f64 {
        let mut d: f64 = 0.0;
        for (b, &p) in self.probs.iter() {
            d = d.max((p - other.prob(b)).abs());
        }
        for (b, &p) in other.probs.iter() {
            d = d.max((p - self.prob(b)).abs());
        }
        d
    }
}

/// Accumulates per-trial `S_MB` hits; the common tallying backend of the
/// MC-VP, OS, and Algorithm 5 solvers. Mergeable for parallel execution.
#[derive(Clone, Debug, Default)]
pub struct Tally {
    /// `pub(crate)` so [`checkpoint`](crate::checkpoint) can encode and
    /// rebuild tallies byte-exactly.
    pub(crate) counts: FxHashMap<Butterfly, u64>,
    pub(crate) trials: u64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished trial whose `S_MB` is `smb`.
    pub fn record_trial<'a>(&mut self, smb: impl IntoIterator<Item = &'a Butterfly>) {
        self.trials += 1;
        for b in smb {
            *self.counts.entry(*b).or_insert(0) += 1;
        }
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Hit count of one butterfly.
    pub fn count(&self, b: &Butterfly) -> u64 {
        self.counts.get(b).copied().unwrap_or(0)
    }

    /// Merges another tally (disjoint trial ranges) into this one.
    pub fn merge(&mut self, other: Tally) {
        self.trials += other.trials;
        for (b, c) in other.counts {
            *self.counts.entry(b).or_insert(0) += c;
        }
    }

    /// Finalizes into a distribution.
    pub fn into_distribution(self) -> Distribution {
        Distribution::from_counts(self.counts, self.trials.max(1))
    }

    /// Iterator over `(butterfly, count)` entries.
    pub fn counts(&self) -> impl Iterator<Item = (&Butterfly, &u64)> {
        self.counts.iter()
    }

    /// Running estimate for one butterfly (`count / trials`), used by the
    /// convergence observers.
    pub fn running_estimate(&self, b: &Butterfly) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.count(b) as f64 / self.trials as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{Left, Right};

    fn bf(u1: u32, u2: u32, v1: u32, v2: u32) -> Butterfly {
        Butterfly::new(Left(u1), Left(u2), Right(v1), Right(v2))
    }

    #[test]
    fn from_counts_normalizes() {
        let mut counts = FxHashMap::default();
        counts.insert(bf(0, 1, 0, 1), 25u64);
        counts.insert(bf(0, 1, 1, 2), 75u64);
        let d = Distribution::from_counts(counts, 100);
        assert_eq!(d.prob(&bf(0, 1, 0, 1)), 0.25);
        assert_eq!(d.prob(&bf(0, 1, 1, 2)), 0.75);
        assert_eq!(d.prob(&bf(5, 6, 5, 6)), 0.0);
        assert_eq!(d.trials(), Some(100));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn mpmb_returns_argmax_with_deterministic_ties() {
        let mut probs = FxHashMap::default();
        probs.insert(bf(0, 1, 0, 1), 0.5);
        probs.insert(bf(0, 2, 0, 1), 0.5);
        probs.insert(bf(0, 3, 0, 1), 0.2);
        let d = Distribution::from_exact(probs);
        // Tie at 0.5: the canonically smaller butterfly wins.
        assert_eq!(d.mpmb(), Some((bf(0, 1, 0, 1), 0.5)));
    }

    #[test]
    fn top_k_orders_descending_and_truncates() {
        let mut probs = FxHashMap::default();
        probs.insert(bf(0, 1, 0, 1), 0.1);
        probs.insert(bf(0, 2, 0, 1), 0.3);
        probs.insert(bf(0, 3, 0, 1), 0.2);
        let d = Distribution::from_exact(probs);
        let top2 = d.top_k(2);
        assert_eq!(top2[0], (bf(0, 2, 0, 1), 0.3));
        assert_eq!(top2[1], (bf(0, 3, 0, 1), 0.2));
        assert_eq!(d.top_k(99).len(), 3);
        assert!(d.top_k(0).is_empty());
    }

    #[test]
    fn empty_distribution_has_no_mpmb() {
        let d = Distribution::new();
        assert!(d.mpmb().is_none());
        assert!(d.is_empty());
        assert_eq!(d.total_mass(), 0.0);
    }

    #[test]
    fn tally_records_and_merges() {
        let a1 = bf(0, 1, 0, 1);
        let a2 = bf(0, 1, 1, 2);
        let mut t1 = Tally::new();
        t1.record_trial([&a1]);
        t1.record_trial([&a1, &a2]);
        t1.record_trial(std::iter::empty());
        let mut t2 = Tally::new();
        t2.record_trial([&a2]);
        t1.merge(t2);
        assert_eq!(t1.trials(), 4);
        assert_eq!(t1.count(&a1), 2);
        assert_eq!(t1.count(&a2), 2);
        let d = t1.into_distribution();
        assert_eq!(d.prob(&a1), 0.5);
        assert_eq!(d.prob(&a2), 0.5);
    }

    #[test]
    fn max_abs_diff_covers_both_supports() {
        let mut p1 = FxHashMap::default();
        p1.insert(bf(0, 1, 0, 1), 0.4);
        let mut p2 = FxHashMap::default();
        p2.insert(bf(0, 1, 1, 2), 0.3);
        let d1 = Distribution::from_exact(p1);
        let d2 = Distribution::from_exact(p2);
        assert_eq!(d1.max_abs_diff(&d2), 0.4);
        assert_eq!(d2.max_abs_diff(&d1), 0.4);
        assert_eq!(d1.max_abs_diff(&d1), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero-trial")]
    fn zero_trials_rejected() {
        let _ = Distribution::from_counts(FxHashMap::default(), 0);
    }

    #[test]
    fn vertex_filters_restrict_support() {
        let mut probs = FxHashMap::default();
        probs.insert(bf(0, 1, 0, 1), 0.3);
        probs.insert(bf(1, 2, 2, 3), 0.2);
        probs.insert(bf(3, 4, 0, 2), 0.1);
        let d = Distribution::from_exact(probs);
        let with_u1 = d.filter_containing_left(Left(1));
        assert_eq!(with_u1.len(), 2);
        assert_eq!(with_u1.prob(&bf(0, 1, 0, 1)), 0.3);
        assert_eq!(with_u1.prob(&bf(3, 4, 0, 2)), 0.0);
        let with_v0 = d.filter_containing_right(Right(0));
        assert_eq!(with_v0.len(), 2);
        assert_eq!(with_v0.prob(&bf(1, 2, 2, 3)), 0.0);
        // Chained filters compose.
        let both = d
            .filter_containing_left(Left(1))
            .filter_containing_right(Right(0));
        assert_eq!(both.len(), 1);
    }
}
