//! Adaptive trial counts (extension).
//!
//! The Theorem IV.1 lower bound `N ≥ (1/μ)·4 ln(2/δ)/ε²` depends on the
//! unknown target probability `μ = P(B)`. The paper fixes `N` from an
//! assumed `μ = 0.05`; this module instead runs Ordering Sampling in
//! batches and re-evaluates the bound against the *running estimate* of
//! the current MPMB, stopping as soon as the trials performed satisfy the
//! bound for it. On easy instances (high `P(B)`) this uses a fraction of
//! the fixed budget; on hard ones it keeps going up to a cap instead of
//! silently under-sampling.

use crate::bounds::mc_trial_lower_bound;
use crate::butterfly::Butterfly;
use crate::distribution::{Distribution, Tally};
use crate::engine::{Cancel, Executor, TrialEngine};
use crate::observer::NoopObserver;
use crate::os::{OsConfig, OsTrials};
use bigraph::UncertainBipartiteGraph;

/// Configuration for [`run_os_adaptive`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Relative error target `ε`.
    pub epsilon: f64,
    /// Failure probability target `δ`.
    pub delta: f64,
    /// Trials per batch between bound re-evaluations.
    pub batch: u64,
    /// Hard cap on total trials.
    pub max_trials: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads per batch (values ≤ 1 mean sequential). Batches
    /// run chunked-parallel on the engine [`Executor`]; the result is
    /// bit-identical to the sequential run at any thread count.
    pub threads: usize,
    /// Ordering Sampling options for the per-trial engine.
    pub os: OsConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            epsilon: 0.1,
            delta: 0.1,
            batch: 1_000,
            max_trials: 1_000_000,
            seed: 0x5EED,
            threads: 1,
            os: OsConfig::default(),
        }
    }
}

/// Outcome of an adaptive run.
#[derive(Clone, Debug)]
pub struct AdaptiveResult {
    /// The estimated distribution over all executed trials.
    pub distribution: Distribution,
    /// Trials actually executed.
    pub trials_used: u64,
    /// Whether the Theorem IV.1 bound was satisfied for the final MPMB
    /// estimate (false = the `max_trials` cap hit first, or no butterfly
    /// was ever observed).
    pub bound_satisfied: bool,
    /// The MPMB estimate the stopping rule used, if any.
    pub target: Option<(Butterfly, f64)>,
}

/// Runs Ordering Sampling with the adaptive stopping rule.
///
/// # Panics
/// Panics unless `0 < ε`, `0 < δ < 1`, `batch > 0`, `max_trials > 0`.
pub fn run_os_adaptive(g: &UncertainBipartiteGraph, cfg: &AdaptiveConfig) -> AdaptiveResult {
    assert!(cfg.epsilon > 0.0, "epsilon must be positive");
    assert!(cfg.delta > 0.0 && cfg.delta < 1.0, "delta must be in (0,1)");
    assert!(
        cfg.batch > 0 && cfg.max_trials > 0,
        "trial counts must be positive"
    );

    // The adaptive stream is keyed by cfg.seed (not cfg.os.seed), batch
    // after batch on the one trial engine.
    let os = OsTrials::new(
        g,
        &OsConfig {
            seed: cfg.seed,
            ..cfg.os
        },
    );
    let executor = Executor::new(cfg.threads);
    let mut tally = Tally::new();
    let mut satisfied = false;

    let mut t = 0u64;
    while t < cfg.max_trials {
        let stop_at = (t + cfg.batch).min(cfg.max_trials);
        // Parallel batches return one accumulator per chunk, in range
        // order; tally merges are integer additions, so the fold is
        // bit-identical to the sequential single-chunk run.
        for (acc, done) in executor.run_range(&os, t..stop_at, &Cancel::never(), &mut NoopObserver)
        {
            debug_assert!(done.start >= t && done.end <= stop_at);
            os.merge(&mut tally, acc);
        }
        t = stop_at;
        // Stopping rule: enough trials for the running MPMB estimate?
        if let Some((_, count)) = running_argmax(&tally) {
            let mu = count as f64 / t as f64;
            if mu > 0.0 && (t as f64) >= mc_trial_lower_bound(mu, cfg.epsilon, cfg.delta) {
                satisfied = true;
                break;
            }
        }
    }

    let target = running_argmax(&tally).map(|(b, c)| (b, c as f64 / t as f64));
    AdaptiveResult {
        distribution: tally.into_distribution(),
        trials_used: t,
        bound_satisfied: satisfied,
        target,
    }
}

/// The variance-driven escalation rule for the serving fast tier: given
/// a fast-tier answer (`estimate` with confidence half-width
/// `half_width`), decide whether an exact-method run should be
/// scheduled. The fast answer stands on its own only when its interval
/// certifies relative error `ε` — the same target the adaptive stopping
/// rule above enforces for Ordering Sampling. A zero estimate with a
/// non-degenerate interval always escalates: nothing was certified.
///
/// # Panics
/// Panics unless `ε > 0`.
pub fn fast_escalation_needed(estimate: f64, half_width: f64, epsilon: f64) -> bool {
    assert!(epsilon > 0.0, "epsilon must be positive");
    if estimate <= 0.0 {
        return half_width > 0.0;
    }
    half_width > epsilon * estimate
}

/// The butterfly with the highest hit count, deterministic under ties.
fn running_argmax(tally: &Tally) -> Option<(Butterfly, u64)> {
    tally
        .counts()
        .map(|(&b, &c)| (b, c))
        .max_by(|(b1, c1), (b2, c2)| c1.cmp(c2).then_with(|| b2.cmp(b1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_distribution, ExactConfig};
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stops_once_bound_is_met_and_is_accurate() {
        let g = fig1();
        let cfg = AdaptiveConfig {
            seed: 33,
            ..Default::default()
        };
        let result = run_os_adaptive(&g, &cfg);
        assert!(result.bound_satisfied);
        assert!(result.trials_used < cfg.max_trials, "cap should not bind");
        // Theorem IV.1 for P≈0.114, ε=δ=0.1: N ≈ 1.05e5.
        let exact = exact_distribution(&g, ExactConfig::default()).unwrap();
        let (b_exact, p_exact) = exact.mpmb().unwrap();
        let (b, p) = result.target.unwrap();
        assert_eq!(b, b_exact);
        assert!((p - p_exact).abs() / p_exact < 0.1, "p={p} vs {p_exact}");
        // Sanity: used at least the bound for its own estimate.
        let needed = mc_trial_lower_bound(p, cfg.epsilon, cfg.delta);
        assert!(result.trials_used as f64 >= needed);
    }

    #[test]
    fn easy_instances_use_fewer_trials_than_hard_ones() {
        // High-probability MPMB (certain heavy butterfly) stops almost
        // immediately; Fig. 1 (P≈0.11) needs ~9x more.
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            b.add_edge(Left(u), Right(v), 5.0, 0.99).unwrap();
        }
        let easy = b.build().unwrap();
        let cfg = AdaptiveConfig {
            seed: 34,
            ..Default::default()
        };
        let r_easy = run_os_adaptive(&easy, &cfg);
        let r_hard = run_os_adaptive(&fig1(), &cfg);
        assert!(r_easy.bound_satisfied && r_hard.bound_satisfied);
        assert!(
            r_easy.trials_used * 4 < r_hard.trials_used,
            "easy {} vs hard {}",
            r_easy.trials_used,
            r_hard.trials_used
        );
    }

    #[test]
    fn butterfly_free_graph_hits_the_cap() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.9).unwrap();
        b.add_edge(Left(1), Right(1), 1.0, 0.9).unwrap();
        let g = b.build().unwrap();
        let cfg = AdaptiveConfig {
            batch: 50,
            max_trials: 200,
            seed: 35,
            ..Default::default()
        };
        let result = run_os_adaptive(&g, &cfg);
        assert!(!result.bound_satisfied);
        assert_eq!(result.trials_used, 200);
        assert!(result.target.is_none());
        assert!(result.distribution.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = fig1();
        let cfg = AdaptiveConfig {
            batch: 500,
            max_trials: 5_000,
            epsilon: 0.3,
            delta: 0.3,
            seed: 36,
            ..Default::default()
        };
        let a = run_os_adaptive(&g, &cfg);
        let b = run_os_adaptive(&g, &cfg);
        assert_eq!(a.trials_used, b.trials_used);
        assert_eq!(a.distribution.max_abs_diff(&b.distribution), 0.0);
    }

    #[test]
    fn threads_are_bit_identical_to_sequential() {
        let g = fig1();
        let base = AdaptiveConfig {
            batch: 300,
            max_trials: 3_000,
            epsilon: 0.3,
            delta: 0.3,
            seed: 37,
            ..Default::default()
        };
        let seq = run_os_adaptive(&g, &base);
        for threads in [2, 3, 8] {
            let par = run_os_adaptive(&g, &AdaptiveConfig { threads, ..base });
            assert_eq!(seq.trials_used, par.trials_used, "threads={threads}");
            assert_eq!(seq.bound_satisfied, par.bound_satisfied);
            assert_eq!(seq.target, par.target, "threads={threads}");
            assert_eq!(seq.distribution.max_abs_diff(&par.distribution), 0.0);
        }
    }

    #[test]
    fn escalation_rule_tracks_certified_relative_error() {
        // Interval tighter than ε·estimate: the fast answer stands.
        assert!(!fast_escalation_needed(10.0, 0.5, 0.1));
        // Interval too wide: escalate.
        assert!(fast_escalation_needed(10.0, 2.0, 0.1));
        // Zero estimate: only a degenerate interval is self-certifying.
        assert!(!fast_escalation_needed(0.0, 0.0, 0.1));
        assert!(fast_escalation_needed(0.0, 0.3, 0.1));
    }
}
