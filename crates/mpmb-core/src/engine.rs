//! The single trial-execution engine behind every sampler.
//!
//! All of the paper's samplers — MC-VP (Alg. 1), Ordering Sampling
//! (Alg. 2), the OLS preparing phase and both of its estimators
//! (Alg. 4/5) — plus the counting and conditioned-query extensions share
//! one shape: *run N independent, index-keyed trials and fold the
//! results*. This module implements that shape exactly once.
//!
//! * [`TrialEngine`] is the per-method plug-in: how to run trial `t`
//!   into an accumulator, and how to merge two accumulators.
//! * [`Executor`] owns the loop: sequential or chunked-parallel
//!   (via [`chunk_ranges`](crate::parallel::chunk_ranges)), observer
//!   hooks (forkable observers are aggregated deterministically across
//!   chunks; others see only sequential runs), and a cooperative
//!   [`Cancel`] check every [`CHECK_EVERY`] trials.
//! * [`Partial`] is the resumable outcome: the accumulator plus the
//!   exact trial ranges that ran. A cancelled run can be
//!   [resumed](Executor::resume) — even across processes holding the
//!   same inputs — to a final result **bit-identical** to an
//!   uninterrupted run.
//!
//! # Determinism contract
//!
//! Engines must derive each trial's randomness from the trial index
//! alone (`trial_rng(seed, t)` streams), never from execution order,
//! and their `merge` must be order-insensitive up to the finalized
//! output (integer tallies, index-tagged rows, set unions). Under that
//! contract the executor guarantees: for any thread count, any
//! cancellation point, and any resume schedule, completing all `N`
//! trials yields the same bytes as one sequential pass.

use crate::observer::{NoopObserver, TrialObserver};
use crate::parallel::chunk_ranges;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Trials between cancellation checks. Small enough that a block
/// finishes quickly even on large graphs; large enough that the
/// `Instant::now` call is amortized away. Heavy-trial engines
/// (Karp-Luby, where one "trial" is a whole candidate) should lower it
/// with [`Executor::check_every`].
pub const CHECK_EVERY: u64 = 64;

/// A cooperative cancellation handle shared by every worker of a run:
/// an optional wall-clock deadline, an optional trial budget, and a
/// flag that latches once any of them fires (or [`Cancel::raise`] is
/// called).
#[derive(Debug, Default)]
pub struct Cancel {
    deadline: Option<Instant>,
    budget: Option<u64>,
    progressed: AtomicU64,
    raised: AtomicBool,
    checks: AtomicU64,
}

impl Cancel {
    /// A handle that never cancels.
    pub fn never() -> Self {
        Cancel::default()
    }

    /// A handle that cancels at `deadline` (never, if `None`).
    pub fn at(deadline: Option<Instant>) -> Self {
        Cancel {
            deadline,
            ..Cancel::default()
        }
    }

    /// A handle that cancels once roughly `budget` trials have run
    /// (workers report progress at block granularity, so a few more
    /// than `budget` may complete). Deterministic — no clock involved —
    /// which is what the cancel-and-resume tests are built on.
    pub fn after_trials(budget: u64) -> Self {
        Cancel {
            budget: Some(budget),
            ..Cancel::default()
        }
    }

    /// Cancels now. Latches; `expired` returns true from here on.
    pub fn raise(&self) {
        self.raised.store(true, Ordering::Relaxed);
    }

    /// Whether work should stop. Latches: once true, stays true.
    pub fn expired(&self) -> bool {
        self.checks.fetch_add(1, Ordering::Relaxed);
        if self.raised.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.raise();
                true
            }
            _ => false,
        }
    }

    /// Whether the flag has latched, without performing (or counting) a
    /// cancellation probe. Instrumentation uses this to report a run's
    /// outcome without disturbing the deadline clock.
    pub fn is_raised(&self) -> bool {
        self.raised.load(Ordering::Relaxed)
    }

    /// Number of cancellation probes ([`Cancel::expired`] calls)
    /// performed against this handle so far.
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Reports `trials` newly completed trials; raises the flag once
    /// the budget (if any) is spent. Called by executor workers at
    /// block boundaries.
    pub fn note_progress(&self, trials: u64) {
        if let Some(budget) = self.budget {
            let done = self.progressed.fetch_add(trials, Ordering::Relaxed) + trials;
            if done >= budget {
                self.raise();
            }
        }
    }
}

/// A sampler expressed as independent, index-keyed trials.
///
/// The executor may run trials in any order, on any thread, in any
/// grouping — implementations must make trial `t`'s contribution a pure
/// function of `t` (derive RNG streams as `trial_rng(seed, t)`), and
/// `merge` must commute up to the finalized output.
pub trait TrialEngine: Sync {
    /// Per-worker result accumulator (a tally, a union, tagged rows…).
    type Acc: Send;
    /// Per-worker scratch reused across trials (samplers, buffers).
    type Scratch;

    /// A fresh, empty accumulator.
    fn new_acc(&self) -> Self::Acc;

    /// Fresh per-worker scratch.
    fn new_scratch(&self) -> Self::Scratch;

    /// Runs trial `trial_idx`, folding its outcome into `acc`. The
    /// observer receives the trial's `S_MB` where the engine has one
    /// (solvers); engines without a per-trial butterfly set may skip
    /// the call.
    fn trial(
        &self,
        trial_idx: u64,
        scratch: &mut Self::Scratch,
        acc: &mut Self::Acc,
        observer: &mut dyn TrialObserver,
    );

    /// Folds `from` (a disjoint trial range's accumulator) into `into`.
    fn merge(&self, into: &mut Self::Acc, from: Self::Acc);

    /// Dotted lowercase phase label for observability (span names and
    /// the `phase` label on solver metrics), e.g. `"ols.prepare"`.
    fn phase(&self) -> &'static str {
        "engine.run"
    }
}

/// Outcome of a (possibly cancelled) run: the merged accumulator plus
/// the exact set of trial indices that produced it. Resumable via
/// [`Executor::resume`]; a resumed-to-completion partial finalizes
/// bit-identically to an uninterrupted run.
#[derive(Clone, Debug)]
pub struct Partial<A> {
    /// The merged accumulator over every completed trial.
    pub acc: A,
    /// Completed trial ranges: sorted, disjoint, non-adjacent.
    done: Vec<Range<u64>>,
    trials_requested: u64,
}

impl<A> Partial<A> {
    /// An empty partial: nothing run yet out of `trials_requested`.
    pub fn empty(acc: A, trials_requested: u64) -> Self {
        Partial {
            acc,
            done: Vec::new(),
            trials_requested,
        }
    }

    /// Trials the caller asked for.
    pub fn trials_requested(&self) -> u64 {
        self.trials_requested
    }

    /// Trials actually completed so far.
    pub fn trials_done(&self) -> u64 {
        self.done.iter().map(|r| r.end - r.start).sum()
    }

    /// Whether every requested trial ran.
    pub fn completed(&self) -> bool {
        self.trials_done() == self.trials_requested
    }

    /// The completed trial ranges (sorted, disjoint).
    pub fn done_ranges(&self) -> &[Range<u64>] {
        &self.done
    }

    /// The gaps still to run, in index order.
    pub fn missing(&self) -> Vec<Range<u64>> {
        let mut gaps = Vec::new();
        let mut cursor = 0u64;
        for r in &self.done {
            if r.start > cursor {
                gaps.push(cursor..r.start);
            }
            cursor = cursor.max(r.end);
        }
        if cursor < self.trials_requested {
            gaps.push(cursor..self.trials_requested);
        }
        gaps
    }

    /// Folds `other` — a partial over the **same** trial space whose
    /// completed ranges are disjoint from this one's — into `self`,
    /// using the engine-supplied `merge` for the accumulators.
    ///
    /// This is the scatter-gather primitive: a coordinator hands
    /// disjoint sub-ranges of `0..trials_requested` to workers (see
    /// [`Executor::run_subrange`]), each returns a `Partial` covering
    /// only its assignment, and the coordinator absorbs them back.
    /// Under the module's determinism contract the absorbed result
    /// finalizes bit-identically to a single local run, regardless of
    /// how the space was partitioned or in which order the pieces
    /// arrive.
    ///
    /// # Errors
    /// Rejects (without mutating `self`) a partial over a different
    /// trial space, or one whose completed ranges overlap this one's —
    /// both indicate a protocol bug upstream, and silently
    /// double-counting trials would corrupt the estimate.
    pub fn absorb(
        &mut self,
        other: Partial<A>,
        merge: impl FnOnce(&mut A, A),
    ) -> Result<(), AbsorbError> {
        if other.trials_requested != self.trials_requested {
            return Err(AbsorbError::TrialSpaceMismatch {
                ours: self.trials_requested,
                theirs: other.trials_requested,
            });
        }
        if let Some(overlap) = other
            .done
            .iter()
            .find(|r| self.done.iter().any(|m| m.start < r.end && r.start < m.end))
        {
            return Err(AbsorbError::Overlap(overlap.clone()));
        }
        merge(&mut self.acc, other.acc);
        for r in other.done {
            self.mark_done(r);
        }
        Ok(())
    }

    /// Records `range` as completed, keeping `done` normalized.
    /// `pub(crate)` so [`checkpoint`](crate::checkpoint) decoding can
    /// rebuild a partial from its persisted ranges.
    pub(crate) fn mark_done(&mut self, range: Range<u64>) {
        if range.is_empty() {
            return;
        }
        self.done.push(range);
        self.done.sort_by_key(|r| r.start);
        let mut merged: Vec<Range<u64>> = Vec::with_capacity(self.done.len());
        for r in self.done.drain(..) {
            match merged.last_mut() {
                Some(last) if last.end >= r.start => last.end = last.end.max(r.end),
                _ => merged.push(r),
            }
        }
        self.done = merged;
    }
}

/// Why [`Partial::absorb`] refused to merge two partials.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsorbError {
    /// The two partials describe different trial spaces.
    TrialSpaceMismatch {
        /// `trials_requested` of the absorbing partial.
        ours: u64,
        /// `trials_requested` of the partial being absorbed.
        theirs: u64,
    },
    /// A completed range of the absorbed partial overlaps one already
    /// completed here (the first offending range is reported).
    Overlap(Range<u64>),
}

impl std::fmt::Display for AbsorbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsorbError::TrialSpaceMismatch { ours, theirs } => write!(
                f,
                "trial space mismatch: absorbing over {ours} trials, absorbed over {theirs}"
            ),
            AbsorbError::Overlap(r) => {
                write!(f, "range {}..{} already completed here", r.start, r.end)
            }
        }
    }
}

impl std::error::Error for AbsorbError {}

/// The one trial loop in the workspace: sequential or chunked-parallel
/// execution of a [`TrialEngine`], with cancellation and resume.
///
/// Parallel runs split the trial range with
/// [`chunk_ranges`](crate::parallel::chunk_ranges) — the canonical
/// contiguous partition — and merge per-range accumulators in range
/// order, reproducing the sequential fold exactly.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
    check_every: u64,
}

impl Executor {
    /// An executor running on `threads` workers (values ≤ 1 mean
    /// sequential) with the default [`CHECK_EVERY`] cancellation
    /// granularity.
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            check_every: CHECK_EVERY,
        }
    }

    /// Overrides the cancellation-check granularity (trials per block).
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn check_every(mut self, every: u64) -> Self {
        assert!(every > 0, "check granularity must be positive");
        self.check_every = every;
        self
    }

    /// The worker count this executor runs on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs trials `0..trials`, stopping early if `cancel` fires.
    pub fn run<E: TrialEngine>(&self, engine: &E, trials: u64, cancel: &Cancel) -> Partial<E::Acc> {
        self.run_with_observer(engine, trials, cancel, &mut NoopObserver)
    }

    /// [`Executor::run`] with a per-trial observer. On the parallel
    /// path, observers whose [`TrialObserver::fork`] returns a child
    /// get per-chunk local aggregates merged deterministically (in
    /// chunk order); observers that keep the default `fork` are fed
    /// only on the sequential path (`threads <= 1`), matching the
    /// historical solver semantics.
    pub fn run_with_observer<E: TrialEngine>(
        &self,
        engine: &E,
        trials: u64,
        cancel: &Cancel,
        observer: &mut dyn TrialObserver,
    ) -> Partial<E::Acc> {
        let mut partial = Partial::empty(engine.new_acc(), trials);
        self.advance(engine, &mut partial, cancel, observer);
        partial
    }

    /// Resumes a cancelled run: executes the partial's missing ranges
    /// (until `cancel` fires) and folds them in. Completing every trial
    /// this way yields an accumulator bit-identical to an uninterrupted
    /// [`Executor::run`].
    pub fn resume<E: TrialEngine>(
        &self,
        engine: &E,
        partial: &mut Partial<E::Acc>,
        cancel: &Cancel,
    ) {
        self.advance(engine, partial, cancel, &mut NoopObserver);
    }

    fn advance<E: TrialEngine>(
        &self,
        engine: &E,
        partial: &mut Partial<E::Acc>,
        cancel: &Cancel,
        observer: &mut dyn TrialObserver,
    ) {
        // Observability preamble: when nothing observes, `span` is
        // inert and `started` stays `None`, so the cost is one
        // thread-local flag check plus one atomic load.
        let resumed = partial.trials_done() > 0;
        let before_done = partial.trials_done();
        let before_checks = cancel.checks();
        let mut span = obs::span(engine.phase());
        let started = span.is_active().then(Instant::now);

        for gap in partial.missing() {
            if cancel.expired() {
                break;
            }
            for (acc, done) in self.run_range(engine, gap, cancel, observer) {
                engine.merge(&mut partial.acc, acc);
                partial.mark_done(done);
            }
        }

        if let Some(t0) = started {
            let executed = partial.trials_done() - before_done;
            span.items(executed);
            span.field("threads", self.threads);
            span.field("resumed", resumed);
            span.field("cancelled", cancel.is_raised());
            span.field("completed", partial.completed());
            let secs = t0.elapsed().as_secs_f64();
            let checks = cancel.checks() - before_checks;
            obs::with_solver(|sm| {
                sm.record_phase(engine.phase(), secs, executed);
                sm.record_run(resumed, cancel.is_raised(), checks);
            });
        }
    }

    /// Runs only `range` of the trial space `0..total` — the worker
    /// half of a scatter-gather partition. The returned partial spans
    /// the full space, but its completed ranges (and accumulator
    /// contributions) cover exactly the prefix of `range` that ran
    /// before `cancel` fired. Absorbing such partials for a disjoint
    /// cover of `0..total` into one master via [`Partial::absorb`]
    /// reproduces a local [`Executor::run`] bit-for-bit.
    ///
    /// # Panics
    /// Panics if `range` escapes `0..total`.
    pub fn run_subrange<E: TrialEngine>(
        &self,
        engine: &E,
        range: Range<u64>,
        total: u64,
        cancel: &Cancel,
    ) -> Partial<E::Acc> {
        assert!(
            range.end <= total,
            "subrange {range:?} escapes trial space 0..{total}"
        );
        let mut partial = Partial::empty(engine.new_acc(), total);
        if cancel.expired() {
            return partial;
        }
        for (acc, done) in self.run_range(engine, range, cancel, &mut NoopObserver) {
            engine.merge(&mut partial.acc, acc);
            partial.mark_done(done);
        }
        partial
    }

    /// Executes one contiguous trial range, split across the executor's
    /// workers. Returns per-chunk `(accumulator, completed sub-range)`
    /// pairs in range order. `pub(crate)` so batched drivers (the
    /// adaptive stopping rule) can run range-at-a-time without a
    /// private trial loop of their own.
    pub(crate) fn run_range<E: TrialEngine>(
        &self,
        engine: &E,
        range: Range<u64>,
        cancel: &Cancel,
        observer: &mut dyn TrialObserver,
    ) -> Vec<(E::Acc, Range<u64>)> {
        if range.is_empty() {
            return Vec::new();
        }
        if self.threads == 1 {
            let mut acc = engine.new_acc();
            let mut scratch = engine.new_scratch();
            let end = self.run_chunk(
                engine,
                range.clone(),
                cancel,
                &mut scratch,
                &mut acc,
                observer,
            );
            return vec![(acc, range.start..end)];
        }
        let chunks: Vec<Range<u64>> = chunk_ranges(range.end - range.start, self.threads)
            .into_iter()
            .map(|r| (range.start + r.start)..(range.start + r.end))
            .collect();
        // Workers inherit the spawning thread's observability context so
        // their spans join the same trace and profile, and forkable
        // observers get a chunk-local child each.
        let ctx = obs::current();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let mut fork = observer.fork();
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _obs_guard = obs::install(ctx);
                        let mut noop = NoopObserver;
                        let chunk_observer: &mut dyn TrialObserver = match fork.as_mut() {
                            Some(f) => &mut **f,
                            None => &mut noop,
                        };
                        let mut acc = engine.new_acc();
                        let mut scratch = engine.new_scratch();
                        let end = self.run_chunk(
                            engine,
                            chunk.clone(),
                            cancel,
                            &mut scratch,
                            &mut acc,
                            chunk_observer,
                        );
                        (acc, chunk.start..end, fork)
                    })
                })
                .collect();
            // Join (and absorb forks) in chunk order: merged observer
            // statistics are deterministic for any thread schedule.
            let mut out = Vec::with_capacity(handles.len());
            for h in handles {
                let (acc, done, fork) = h.join().expect("trial worker panicked");
                if let Some(f) = fork {
                    observer.absorb(f);
                }
                out.push((acc, done));
            }
            out
        })
    }

    /// One worker's loop over one contiguous chunk, checking `cancel`
    /// every `check_every` trials. Returns the end of the completed
    /// prefix (`chunk.start..end` ran).
    fn run_chunk<E: TrialEngine>(
        &self,
        engine: &E,
        chunk: Range<u64>,
        cancel: &Cancel,
        scratch: &mut E::Scratch,
        acc: &mut E::Acc,
        observer: &mut dyn TrialObserver,
    ) -> u64 {
        let mut t = chunk.start;
        while t < chunk.end {
            if cancel.expired() {
                break;
            }
            let block_start = t;
            let block_end = (t + self.check_every).min(chunk.end);
            while t < block_end {
                engine.trial(t, scratch, acc, observer);
                t += 1;
            }
            cancel.note_progress(block_end - block_start);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy engine: acc is the sum of (idx+1) over completed trials
    /// (order-insensitive), so any scheduling must produce the same sum
    /// and `trials_done` tracks exactly which indices ran.
    struct SumEngine;

    impl TrialEngine for SumEngine {
        type Acc = u64;
        type Scratch = ();

        fn new_acc(&self) -> u64 {
            0
        }

        fn new_scratch(&self) {}

        fn trial(&self, t: u64, _s: &mut (), acc: &mut u64, _obs: &mut dyn TrialObserver) {
            *acc += t + 1;
        }

        fn merge(&self, into: &mut u64, from: u64) {
            *into += from;
        }
    }

    fn full_sum(n: u64) -> u64 {
        n * (n + 1) / 2
    }

    #[test]
    fn sequential_run_completes() {
        let p = Executor::new(1).run(&SumEngine, 100, &Cancel::never());
        assert!(p.completed());
        assert_eq!(p.acc, full_sum(100));
        assert_eq!(p.trials_done(), 100);
        assert_eq!(p.done_ranges(), std::slice::from_ref(&(0..100)));
    }

    #[test]
    fn parallel_matches_sequential() {
        for threads in [1, 2, 3, 8, 16] {
            let p = Executor::new(threads).run(&SumEngine, 1_000, &Cancel::never());
            assert!(p.completed(), "threads={threads}");
            assert_eq!(p.acc, full_sum(1_000));
        }
    }

    #[test]
    fn budget_cancel_then_resume_is_exact() {
        for threads in [1, 2, 4] {
            for budget in [1u64, 7, 64, 65, 500, 999] {
                let exec = Executor::new(threads).check_every(16);
                let cancel = Cancel::after_trials(budget);
                let mut p = exec.run(&SumEngine, 1_000, &cancel);
                assert!(p.trials_done() >= budget.min(1_000) || p.completed());
                exec.resume(&SumEngine, &mut p, &Cancel::never());
                assert!(p.completed(), "threads={threads} budget={budget}");
                assert_eq!(p.acc, full_sum(1_000));
            }
        }
    }

    #[test]
    fn raised_cancel_runs_nothing() {
        let cancel = Cancel::never();
        cancel.raise();
        let p = Executor::new(4).run(&SumEngine, 1_000, &cancel);
        assert_eq!(p.trials_done(), 0);
        assert!(!p.completed());
        assert_eq!(p.missing(), vec![0..1_000]);
    }

    #[test]
    fn deadline_cancel_latches() {
        let c = Cancel::at(Some(Instant::now()));
        assert!(c.expired());
        assert!(c.expired());
        assert!(!Cancel::never().expired());
    }

    #[test]
    fn zero_trials_is_complete() {
        let p = Executor::new(4).run(&SumEngine, 0, &Cancel::never());
        assert!(p.completed());
        assert_eq!(p.trials_done(), 0);
    }

    #[test]
    fn partial_bookkeeping_normalizes() {
        let mut p: Partial<u64> = Partial::empty(0, 100);
        p.mark_done(10..20);
        p.mark_done(0..10);
        p.mark_done(50..60);
        assert_eq!(p.done_ranges(), &[0..20, 50..60]);
        assert_eq!(p.trials_done(), 30);
        assert_eq!(p.missing(), vec![20..50, 60..100]);
        p.mark_done(20..50);
        p.mark_done(60..100);
        assert!(p.completed());
        assert_eq!(p.done_ranges(), std::slice::from_ref(&(0..100)));
    }

    #[test]
    fn scatter_gather_absorb_matches_local_run() {
        let local = Executor::new(3).run(&SumEngine, 1_000, &Cancel::never());
        // Shard the same space across "workers" at several widths, absorb
        // the pieces out of order, and require the identical accumulator.
        for workers in [1usize, 2, 3, 7] {
            let mut pieces: Vec<Partial<u64>> = chunk_ranges(1_000, workers)
                .into_iter()
                .map(|r| Executor::new(2).run_subrange(&SumEngine, r, 1_000, &Cancel::never()))
                .collect();
            pieces.reverse();
            let mut master: Partial<u64> = Partial::empty(0, 1_000);
            for p in pieces {
                master.absorb(p, |a, b| *a += b).expect("disjoint pieces");
            }
            assert!(master.completed(), "workers={workers}");
            assert_eq!(master.acc, local.acc, "workers={workers}");
            assert_eq!(master.done_ranges(), local.done_ranges());
        }
    }

    #[test]
    fn run_subrange_respects_cancel_and_resumes() {
        let exec = Executor::new(1).check_every(8);
        let cancel = Cancel::after_trials(10);
        let piece = exec.run_subrange(&SumEngine, 200..600, 1_000, &cancel);
        let done = piece.trials_done();
        assert!((10..400).contains(&done), "done={done}");
        assert_eq!(
            piece.done_ranges(),
            std::slice::from_ref(&(200..200 + done))
        );
        assert_eq!(piece.trials_requested(), 1_000);
        // The remainder of the assignment, run elsewhere, absorbs cleanly.
        let rest = exec.run_subrange(&SumEngine, 200 + done..600, 1_000, &Cancel::never());
        let mut master: Partial<u64> = Partial::empty(0, 1_000);
        master.absorb(piece, |a, b| *a += b).unwrap();
        master.absorb(rest, |a, b| *a += b).unwrap();
        assert_eq!(master.done_ranges(), std::slice::from_ref(&(200..600)));
        assert_eq!(master.acc, (200..600).map(|t| t + 1).sum::<u64>());
    }

    #[test]
    fn absorb_rejects_overlap_and_mismatch() {
        let exec = Executor::new(1);
        let mut master = exec.run_subrange(&SumEngine, 0..50, 100, &Cancel::never());
        let overlapping = exec.run_subrange(&SumEngine, 40..60, 100, &Cancel::never());
        let before = master.acc;
        assert_eq!(
            master.absorb(overlapping, |a, b| *a += b),
            Err(AbsorbError::Overlap(40..60))
        );
        assert_eq!(master.acc, before, "failed absorb must not mutate");
        let wrong_space = exec.run_subrange(&SumEngine, 50..60, 200, &Cancel::never());
        assert_eq!(
            master.absorb(wrong_space, |a, b| *a += b),
            Err(AbsorbError::TrialSpaceMismatch {
                ours: 100,
                theirs: 200
            })
        );
    }

    #[test]
    fn observer_fed_only_sequentially() {
        use crate::butterfly::Butterfly;
        struct Count(u64);
        impl TrialObserver for Count {
            fn observe(&mut self, _t: u64, _s: &[Butterfly]) {
                self.0 += 1;
            }
        }
        /// Engine that reports every trial to the observer.
        struct Observing;
        impl TrialEngine for Observing {
            type Acc = u64;
            type Scratch = ();
            fn new_acc(&self) -> u64 {
                0
            }
            fn new_scratch(&self) {}
            fn trial(&self, t: u64, _s: &mut (), acc: &mut u64, obs: &mut dyn TrialObserver) {
                *acc += 1;
                obs.observe(t, &[]);
            }
            fn merge(&self, into: &mut u64, from: u64) {
                *into += from;
            }
        }
        let mut c = Count(0);
        Executor::new(1).run_with_observer(&Observing, 50, &Cancel::never(), &mut c);
        assert_eq!(c.0, 50);
        let mut c = Count(0);
        Executor::new(4).run_with_observer(&Observing, 50, &Cancel::never(), &mut c);
        assert_eq!(
            c.0, 0,
            "parallel runs must not feed observers without a fork impl"
        );
    }
}
