//! Solver accuracy self-checks.
//!
//! Production users of a Monte-Carlo library need a way to ask "are my
//! trial counts adequate for *my* graph?" without reading the theory.
//! [`validate_accuracy`] runs a solver configuration against ground truth
//! — the exact engine when feasible, otherwise a high-trial Ordering
//! Sampling reference — and reports the worst and mean absolute errors
//! plus whether the configured trials satisfy Theorem IV.1 for the
//! estimated MPMB probability.

use crate::bounds::mc_trial_lower_bound;
use crate::distribution::Distribution;
use crate::exact::{exact_distribution, ExactConfig};
use crate::os::{OrderingSampling, OsConfig};
use bigraph::UncertainBipartiteGraph;

/// What served as ground truth for a validation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reference {
    /// Exact possible-world enumeration.
    Exact,
    /// A high-trial OS run (`trials` shown) — itself Monte-Carlo, so
    /// errors below its own noise floor are not meaningful.
    SampledReference {
        /// Trials of the reference run.
        trials: u64,
    },
}

/// Outcome of [`validate_accuracy`].
#[derive(Clone, Debug)]
pub struct AccuracyReport {
    /// What the estimate was compared against.
    pub reference: Reference,
    /// Largest `|P̂(B) − P_ref(B)|` over the union of supports.
    pub max_abs_error: f64,
    /// Mean absolute error over the reference support.
    pub mean_abs_error: f64,
    /// Whether the estimate's arg-max agrees with the reference's.
    pub mpmb_agrees: bool,
    /// Whether the estimate used at least the Theorem IV.1 trial count
    /// for its own MPMB estimate at the given `ε`/`δ` (`None` when the
    /// estimate carries no trial count or found nothing).
    pub theorem_iv1_satisfied: Option<bool>,
}

/// Compares `estimate` against ground truth for `g`.
///
/// `epsilon`/`delta` parameterize the Theorem IV.1 adequacy check.
pub fn validate_accuracy(
    g: &UncertainBipartiteGraph,
    estimate: &Distribution,
    epsilon: f64,
    delta: f64,
) -> AccuracyReport {
    let (reference_dist, reference) = match exact_distribution(g, ExactConfig::default()) {
        Ok(d) => (d, Reference::Exact),
        Err(_) => {
            let trials = 200_000;
            let d = OrderingSampling::new(OsConfig {
                trials,
                seed: 0xACC0_7E57,
                ..Default::default()
            })
            .run(g);
            (d, Reference::SampledReference { trials })
        }
    };

    let max_abs_error = estimate.max_abs_diff(&reference_dist);
    let (mut sum, mut n) = (0.0, 0u64);
    for (b, &p) in reference_dist.iter() {
        sum += (estimate.prob(b) - p).abs();
        n += 1;
    }
    let mean_abs_error = if n == 0 { 0.0 } else { sum / n as f64 };

    let mpmb_agrees = match (estimate.mpmb(), reference_dist.mpmb()) {
        (Some((b1, _)), Some((b2, _))) => b1 == b2,
        (None, None) => true,
        _ => false,
    };

    let theorem_iv1_satisfied = match (estimate.trials(), estimate.mpmb()) {
        (Some(trials), Some((_, p))) if p > 0.0 => {
            Some(trials as f64 >= mc_trial_lower_bound(p, epsilon, delta))
        }
        _ => None,
    };

    AccuracyReport {
        reference,
        max_abs_error,
        mean_abs_error,
        mpmb_agrees,
        theorem_iv1_satisfied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn adequate_run_validates_cleanly() {
        let g = fig1();
        let d = OrderingSampling::new(OsConfig {
            trials: 120_000,
            seed: 4,
            ..Default::default()
        })
        .run(&g);
        let r = validate_accuracy(&g, &d, 0.1, 0.1);
        assert_eq!(r.reference, Reference::Exact);
        assert!(r.max_abs_error < 0.01, "max err {}", r.max_abs_error);
        assert!(r.mean_abs_error <= r.max_abs_error);
        assert!(r.mpmb_agrees);
        assert_eq!(r.theorem_iv1_satisfied, Some(true));
    }

    #[test]
    fn undersampled_run_is_flagged() {
        let g = fig1();
        let d = OrderingSampling::new(OsConfig {
            trials: 50,
            seed: 4,
            ..Default::default()
        })
        .run(&g);
        let r = validate_accuracy(&g, &d, 0.1, 0.1);
        // 50 trials cannot satisfy the bound for P ≈ 0.11 (needs ~10⁵).
        assert_eq!(r.theorem_iv1_satisfied, Some(false));
    }

    #[test]
    fn falls_back_to_sampled_reference_on_large_graphs() {
        // > 22 uncertain edges: exact engine refuses, fallback engages.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                b.add_edge(Left(u), Right(v), ((u + v) % 3 + 1) as f64, 0.5)
                    .unwrap();
            }
        }
        let g = b.build().unwrap();
        let d = OrderingSampling::new(OsConfig {
            trials: 20_000,
            seed: 6,
            ..Default::default()
        })
        .run(&g);
        let r = validate_accuracy(&g, &d, 0.1, 0.1);
        assert!(matches!(r.reference, Reference::SampledReference { .. }));
        assert!(r.max_abs_error < 0.02, "max err {}", r.max_abs_error);
    }

    #[test]
    fn empty_estimates_on_empty_graphs_agree() {
        let g = GraphBuilder::new().build().unwrap();
        let d = Distribution::new();
        let r = validate_accuracy(&g, &d, 0.1, 0.1);
        assert!(r.mpmb_agrees);
        assert_eq!(r.max_abs_error, 0.0);
        assert_eq!(r.theorem_iv1_satisfied, None);
    }
}
