//! Ensemble runs: empirical standard errors for the `P(B)` estimates.
//!
//! Theorem IV.1 gives an a-priori trial bound, but practitioners usually
//! want an *empirical* error bar on the numbers they report. An ensemble
//! runs the same solver configuration under `runs` independent seeds and
//! aggregates per-butterfly means and standard deviations — the classic
//! replication approach, embarrassingly parallel across replicas.

use crate::butterfly::Butterfly;
use crate::distribution::Distribution;
use crate::os::{OrderingSampling, OsConfig};
use bigraph::fx::FxHashMap;
use bigraph::UncertainBipartiteGraph;

/// Per-butterfly ensemble statistics.
#[derive(Clone, Copy, Debug)]
pub struct EnsembleEntry {
    /// Mean estimate across replicas.
    pub mean: f64,
    /// Sample standard deviation across replicas (0 for a single run).
    pub std_dev: f64,
    /// Replicas in which the butterfly appeared at all.
    pub support_runs: u32,
}

/// Aggregated ensemble of independent solver runs.
#[derive(Clone, Debug)]
pub struct EnsembleReport {
    entries: FxHashMap<Butterfly, EnsembleEntry>,
    runs: u32,
}

impl EnsembleReport {
    /// Number of replicas.
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// Statistics for one butterfly (`None` if never observed).
    pub fn get(&self, b: &Butterfly) -> Option<EnsembleEntry> {
        self.entries.get(b).copied()
    }

    /// Iterator over all observed butterflies.
    pub fn iter(&self) -> impl Iterator<Item = (&Butterfly, &EnsembleEntry)> {
        self.entries.iter()
    }

    /// The mean distribution, usable anywhere a [`Distribution`] is.
    pub fn mean_distribution(&self) -> Distribution {
        Distribution::from_exact(self.entries.iter().map(|(&b, e)| (b, e.mean)).collect())
    }

    /// The largest standard deviation across butterflies — a one-number
    /// stability summary ("are my trial counts enough?").
    pub fn max_std_dev(&self) -> f64 {
        self.entries.values().map(|e| e.std_dev).fold(0.0, f64::max)
    }
}

/// Runs `runs` independent Ordering Sampling replicas (seeds
/// `cfg.seed + r`) and aggregates their distributions.
///
/// # Panics
/// Panics if `runs == 0`.
pub fn run_os_ensemble(g: &UncertainBipartiteGraph, cfg: &OsConfig, runs: u32) -> EnsembleReport {
    assert!(runs > 0, "need at least one replica");
    let dists: Vec<Distribution> = (0..runs)
        .map(|r| {
            OrderingSampling::new(OsConfig {
                seed: cfg.seed.wrapping_add(r as u64),
                ..*cfg
            })
            .run(g)
        })
        .collect();
    aggregate(&dists)
}

/// Aggregates arbitrary distributions into an ensemble report (exposed so
/// callers can ensemble OLS or estimator outputs too).
pub fn aggregate(dists: &[Distribution]) -> EnsembleReport {
    assert!(!dists.is_empty(), "need at least one distribution");
    let runs = dists.len() as u32;
    // Union of supports.
    let mut union: FxHashMap<Butterfly, (f64, f64, u32)> = FxHashMap::default();
    for d in dists {
        for (&b, &_p) in d.iter() {
            union.entry(b).or_insert((0.0, 0.0, 0));
        }
    }
    for (b, acc) in union.iter_mut() {
        for d in dists {
            let p = d.prob(b);
            acc.0 += p;
            acc.1 += p * p;
            if p > 0.0 {
                acc.2 += 1;
            }
        }
    }
    let entries = union
        .into_iter()
        .map(|(b, (s1, s2, support))| {
            let n = runs as f64;
            let mean = s1 / n;
            let var = if runs > 1 {
                ((s2 - s1 * s1 / n) / (n - 1.0)).max(0.0)
            } else {
                0.0
            };
            (
                b,
                EnsembleEntry {
                    mean,
                    std_dev: var.sqrt(),
                    support_runs: support,
                },
            )
        })
        .collect();
    EnsembleReport { entries, runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_distribution, ExactConfig};
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ensemble_mean_tracks_exact_and_std_shrinks_with_trials() {
        let g = fig1();
        let small = run_os_ensemble(
            &g,
            &OsConfig {
                trials: 500,
                seed: 1,
                ..Default::default()
            },
            8,
        );
        let large = run_os_ensemble(
            &g,
            &OsConfig {
                trials: 8_000,
                seed: 1,
                ..Default::default()
            },
            8,
        );
        let exact = exact_distribution(&g, ExactConfig::default()).unwrap();
        for (b, &p) in exact.iter() {
            let e = large.get(b).expect("seen in every large run");
            assert!((e.mean - p).abs() < 0.02, "{b}: {} vs {p}", e.mean);
        }
        // 16x more trials ⇒ ~4x smaller standard errors (allow slack 2x).
        assert!(
            large.max_std_dev() * 2.0 < small.max_std_dev(),
            "large {} vs small {}",
            large.max_std_dev(),
            small.max_std_dev()
        );
    }

    #[test]
    fn single_run_has_zero_std() {
        let g = fig1();
        let e = run_os_ensemble(
            &g,
            &OsConfig {
                trials: 200,
                seed: 5,
                ..Default::default()
            },
            1,
        );
        assert_eq!(e.runs(), 1);
        assert_eq!(e.max_std_dev(), 0.0);
        for (_, entry) in e.iter() {
            assert_eq!(entry.support_runs, 1);
        }
    }

    #[test]
    fn support_runs_counts_presence() {
        use bigraph::fx::FxHashMap;
        let b1 = Butterfly::new(Left(0), Left(1), Right(0), Right(1));
        let mut m1 = FxHashMap::default();
        m1.insert(b1, 0.5);
        let d1 = Distribution::from_exact(m1);
        let d2 = Distribution::from_exact(FxHashMap::default());
        let report = aggregate(&[d1, d2]);
        let e = report.get(&b1).unwrap();
        assert_eq!(e.support_runs, 1);
        assert_eq!(e.mean, 0.25);
        assert!((e.std_dev - (2.0f64 * 0.125).sqrt() / 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn mean_distribution_is_usable() {
        let g = fig1();
        let e = run_os_ensemble(
            &g,
            &OsConfig {
                trials: 2_000,
                seed: 2,
                ..Default::default()
            },
            4,
        );
        let d = e.mean_distribution();
        assert!(d.mpmb().is_some());
        assert_eq!(d.len(), e.iter().count());
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn rejects_zero_runs() {
        let g = fig1();
        let _ = run_os_ensemble(&g, &OsConfig::default(), 0);
    }
}
