//! Ordering-Listing Sampling (Algorithm 3) — the paper's second method.
//!
//! Two phases:
//!
//! 1. **Preparing (§VI-B)** — a *small* number of Ordering Sampling trials
//!    (default 100 vs the 20,000 a direct OS run needs) whose per-trial
//!    `S_MB` sets are unioned into the candidate set `C_MB`. Lemma VI.1:
//!    a butterfly with probability `P(B)` is included with probability
//!    `1 − (1 − P(B))^N`.
//! 2. **Sampling (§VI-C)** — probabilities are estimated over `C_MB`
//!    alone, ignoring the rest of the network, with either the paper's
//!    optimized shared-trial estimator (Algorithm 5) or Karp-Luby
//!    (Algorithm 4).

use crate::butterfly::Butterfly;
use crate::candidates::CandidateSet;
use crate::distribution::Distribution;
use crate::engine::{Cancel, Executor, TrialEngine};
use crate::estimators::karp_luby::{KarpLubyTrials, KlReport, KlTrialPolicy};
use crate::estimators::optimized::OptimizedTrials;
use crate::observer::{NoopObserver, TrialObserver};
use crate::os::{OsConfig, OsEngine, StreamingOracle};
use bigraph::{trial_rng, Side, UncertainBipartiteGraph};

/// Which probability estimator the sampling phase uses.
#[derive(Clone, Copy, Debug)]
pub enum EstimatorKind {
    /// Algorithm 5: shared trials in weight order ("OLS" in the paper).
    Optimized {
        /// Number of shared trials `N_op` (paper default `2·10⁴`).
        trials: u64,
    },
    /// Algorithm 4: per-candidate Karp-Luby sampling ("OLS-KL").
    KarpLuby {
        /// Trial policy (fixed or Eq. 8 dynamic).
        policy: KlTrialPolicy,
    },
    /// Exact candidate-conditional probabilities (extension, see
    /// [`crate::estimators::exact_prefix`]): zero sampling error, viable
    /// while each candidate's heavier-residual edge union stays below
    /// `max_union_edges`. Falls back to `Optimized` with
    /// `fallback_trials` shared trials when the union is too large.
    ExactPrefix {
        /// Enumeration cap per candidate (`2^n` worlds).
        max_union_edges: u32,
        /// Algorithm 5 trials used if enumeration is infeasible.
        fallback_trials: u64,
    },
}

impl Default for EstimatorKind {
    fn default() -> Self {
        EstimatorKind::Optimized { trials: 20_000 }
    }
}

/// Configuration for [`OrderingListingSampling`].
#[derive(Clone, Copy, Debug)]
pub struct OlsConfig {
    /// Preparing-phase OS trials `N_os` (paper default 100).
    pub prep_trials: u64,
    /// Base RNG seed. The preparing and sampling phases derive disjoint
    /// streams from it.
    pub seed: u64,
    /// Sampling-phase estimator.
    pub estimator: EstimatorKind,
    /// §V-B pruning in the preparing phase (ablation toggle).
    pub edge_ordering: bool,
    /// Middle side override for the preparing phase.
    pub middle_side: Option<Side>,
    /// Worker threads for both phases (values ≤ 1 mean sequential).
    /// Results are bit-identical at every thread count: both phases run
    /// on the deterministic [`Executor`](crate::engine::Executor) (the
    /// preparing phase merges per-range trial unions in range order, and
    /// the candidate sort is a total order, so indices are stable).
    pub threads: usize,
}

impl Default for OlsConfig {
    fn default() -> Self {
        OlsConfig {
            prep_trials: 100,
            seed: 0x5EED,
            estimator: EstimatorKind::default(),
            edge_ordering: true,
            middle_side: None,
            threads: 1,
        }
    }
}

impl OlsConfig {
    /// The derived seed of the preparing-phase OS trial stream. Exposed
    /// so external drivers (e.g. the query daemon's cancellable runners)
    /// can reproduce phase 1 bit-for-bit.
    pub fn prep_seed(&self) -> u64 {
        prep_seed(self.seed)
    }

    /// The derived seed of the sampling-phase estimator stream.
    pub fn sample_seed(&self) -> u64 {
        sample_seed(self.seed)
    }
}

/// Everything a finished OLS run produced.
#[derive(Clone, Debug)]
pub struct OlsResult {
    /// Estimated `P(B)` over the candidate set.
    pub distribution: Distribution,
    /// The candidate set `C_MB` from the preparing phase.
    pub candidates: CandidateSet,
    /// Karp-Luby bookkeeping, when that estimator ran.
    pub kl_report: Option<KlReport>,
}

impl OlsResult {
    /// The MPMB over the candidate set.
    pub fn mpmb(&self) -> Option<(Butterfly, f64)> {
        self.distribution.mpmb()
    }

    /// Top-k MPMBs (§VII for OLS: sort the candidate set by estimated
    /// probability).
    pub fn top_k(&self, k: usize) -> Vec<(Butterfly, f64)> {
        self.distribution.top_k(k)
    }
}

/// The Ordering-Listing Sampling solver.
#[derive(Clone, Copy, Debug)]
pub struct OrderingListingSampling {
    cfg: OlsConfig,
}

impl OrderingListingSampling {
    /// Creates a solver with the given configuration.
    pub fn new(cfg: OlsConfig) -> Self {
        OrderingListingSampling { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OlsConfig {
        &self.cfg
    }

    /// Runs both phases.
    pub fn run(&self, g: &UncertainBipartiteGraph) -> OlsResult {
        let candidates = self.prepare(g);
        self.estimate(g, candidates, &mut NoopObserver)
    }

    /// Runs both phases with a sampling-phase observer (only the
    /// optimized estimator reports per-trial `S_MB`s).
    pub fn run_with_observer(
        &self,
        g: &UncertainBipartiteGraph,
        observer: &mut dyn TrialObserver,
    ) -> OlsResult {
        let candidates = self.prepare(g);
        self.estimate(g, candidates, observer)
    }

    /// Phase 1 alone: the candidate set after `prep_trials` OS trials
    /// (Algorithm 3 lines 2–4).
    ///
    /// With `threads > 1` the [`Executor`] splits the trial range with
    /// [`crate::parallel::chunk_ranges`] and merges per-range `S_MB`
    /// unions in range order before the (total-order) candidate sort —
    /// the result is byte-identical to the sequential build, candidate
    /// indices included.
    pub fn prepare(&self, g: &UncertainBipartiteGraph) -> CandidateSet {
        let prep = PrepareTrials::new(g, &self.cfg);
        let union = Executor::new(self.cfg.threads)
            .run(&prep, self.cfg.prep_trials, &Cancel::never())
            .acc;
        prep.finalize(union)
    }

    /// Phase 2 alone: probability estimation over a prepared candidate
    /// set (Algorithm 3 line 5, dispatching to Algorithm 4 or 5).
    ///
    /// With `threads > 1` the estimators run on the deterministic
    /// [`Executor`](crate::engine::Executor) (identical output);
    /// per-trial observers are only fed on the sequential path, so pass
    /// `threads: 1` when attaching one.
    pub fn estimate(
        &self,
        g: &UncertainBipartiteGraph,
        candidates: CandidateSet,
        observer: &mut dyn TrialObserver,
    ) -> OlsResult {
        if candidates.is_empty() {
            return OlsResult {
                distribution: Distribution::new(),
                candidates,
                kl_report: None,
            };
        }
        let threads = self.cfg.threads.max(1);
        let optimized =
            |candidates: &CandidateSet, trials: u64, observer: &mut dyn TrialObserver| {
                assert!(trials > 0, "trials must be positive");
                Executor::new(threads)
                    .run_with_observer(
                        &OptimizedTrials::new(g, candidates, sample_seed(self.cfg.seed)),
                        trials,
                        &Cancel::never(),
                        observer,
                    )
                    .acc
                    .into_distribution()
            };
        match self.cfg.estimator {
            EstimatorKind::Optimized { trials } => {
                let distribution = optimized(&candidates, trials, observer);
                OlsResult {
                    distribution,
                    candidates,
                    kl_report: None,
                }
            }
            EstimatorKind::KarpLuby { policy } => {
                let kl = KarpLubyTrials::new(g, &candidates, policy, sample_seed(self.cfg.seed));
                let acc = Executor::new(threads)
                    .check_every(1)
                    .run(&kl, kl.trials(), &Cancel::never())
                    .acc;
                let report = kl.finalize(acc);
                OlsResult {
                    distribution: report.distribution.clone(),
                    candidates,
                    kl_report: Some(report),
                }
            }
            EstimatorKind::ExactPrefix {
                max_union_edges,
                fallback_trials,
            } => {
                let distribution = match crate::estimators::exact_prefix::estimate_exact_prefix(
                    g,
                    &candidates,
                    max_union_edges,
                ) {
                    Ok(d) => d,
                    Err(_) => optimized(&candidates, fallback_trials, observer),
                };
                OlsResult {
                    distribution,
                    candidates,
                    kl_report: None,
                }
            }
        }
    }
}

/// The OLS preparing phase as a [`TrialEngine`]: each trial runs one OS
/// trial (on the derived `prep_seed` stream) and appends its `S_MB` to
/// the growing butterfly union. Only deduplication ever observes the
/// concatenation order, and the final candidate sort is a total order —
/// so merges commute up to the finalized [`CandidateSet`].
pub struct PrepareTrials<'g> {
    g: &'g UncertainBipartiteGraph,
    os_cfg: OsConfig,
}

impl<'g> PrepareTrials<'g> {
    /// Builds the phase-1 engine from an OLS configuration.
    pub fn new(g: &'g UncertainBipartiteGraph, cfg: &OlsConfig) -> Self {
        PrepareTrials {
            g,
            os_cfg: OsConfig {
                trials: cfg.prep_trials,
                seed: prep_seed(cfg.seed),
                edge_ordering: cfg.edge_ordering,
                middle_side: cfg.middle_side,
                ..Default::default()
            },
        }
    }

    /// Finalizes a completed union into the candidate set.
    pub fn finalize(&self, union: Vec<Butterfly>) -> CandidateSet {
        let mut span = obs::span("ols.listing");
        span.items(union.len() as u64);
        CandidateSet::from_butterflies(self.g, union)
    }
}

impl<'g> TrialEngine for PrepareTrials<'g> {
    type Acc = Vec<Butterfly>;
    type Scratch = (OsEngine<'g>, Vec<Butterfly>);

    fn new_acc(&self) -> Vec<Butterfly> {
        Vec::new()
    }

    fn new_scratch(&self) -> Self::Scratch {
        (OsEngine::new(self.g, &self.os_cfg), Vec::new())
    }

    fn trial(
        &self,
        t: u64,
        (engine, smb): &mut Self::Scratch,
        union: &mut Vec<Butterfly>,
        observer: &mut dyn TrialObserver,
    ) {
        let mut rng = trial_rng(self.os_cfg.seed, t);
        // Single-scan engine: the non-memoizing streaming oracle draws
        // the same stream the lazy sampler did, without the memo writes.
        let mut oracle = StreamingOracle::new(self.g, &mut rng);
        engine.trial(&mut oracle, smb);
        observer.observe(t, smb);
        union.extend_from_slice(smb);
    }

    fn merge(&self, into: &mut Vec<Butterfly>, from: Vec<Butterfly>) {
        into.extend(from);
    }

    fn phase(&self) -> &'static str {
        "ols.prepare"
    }
}

/// Disjoint derived seeds for the two phases.
fn prep_seed(seed: u64) -> u64 {
    seed ^ 0x00C0_FFEE_0000_0001
}

fn sample_seed(seed: u64) -> u64 {
    seed ^ 0x00C0_FFEE_0000_0002
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_distribution, ExactConfig};
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn preparing_phase_catches_high_probability_butterflies() {
        // Every Fig. 1 butterfly has P(B) ≥ 0.036; with 200 preparing
        // trials the miss probability per butterfly is < 0.07% — and the
        // chosen seed finds all three.
        let g = fig1();
        let ols = OrderingListingSampling::new(OlsConfig {
            prep_trials: 200,
            seed: 42,
            ..Default::default()
        });
        let cs = ols.prepare(&g);
        assert_eq!(cs.len(), 3, "candidate set {:?}", cs);
    }

    #[test]
    fn ols_optimized_converges_to_exact() {
        let g = fig1();
        let result = OrderingListingSampling::new(OlsConfig {
            prep_trials: 200,
            seed: 7,
            estimator: EstimatorKind::Optimized { trials: 60_000 },
            ..Default::default()
        })
        .run(&g);
        let exact = exact_distribution(&g, ExactConfig::default()).unwrap();
        for (b, &p) in exact.iter() {
            assert!(
                (result.distribution.prob(b) - p).abs() < 0.01,
                "{b}: est {} vs exact {}",
                result.distribution.prob(b),
                p
            );
        }
        assert_eq!(result.mpmb().unwrap().0, exact.mpmb().unwrap().0);
    }

    #[test]
    fn ols_karp_luby_converges_to_exact() {
        let g = fig1();
        let result = OrderingListingSampling::new(OlsConfig {
            prep_trials: 200,
            seed: 8,
            estimator: EstimatorKind::KarpLuby {
                policy: KlTrialPolicy::Fixed(60_000),
            },
            ..Default::default()
        })
        .run(&g);
        let exact = exact_distribution(&g, ExactConfig::default()).unwrap();
        for (b, &p) in exact.iter() {
            assert!(
                (result.distribution.prob(b) - p).abs() < 0.01,
                "{b}: est {} vs exact {}",
                result.distribution.prob(b),
                p
            );
        }
        assert!(result.kl_report.is_some());
    }

    #[test]
    fn both_estimators_agree_with_each_other() {
        let g = fig1();
        let base = OlsConfig {
            prep_trials: 200,
            seed: 12,
            ..Default::default()
        };
        let opt = OrderingListingSampling::new(OlsConfig {
            estimator: EstimatorKind::Optimized { trials: 40_000 },
            ..base
        })
        .run(&g);
        let kl = OrderingListingSampling::new(OlsConfig {
            estimator: EstimatorKind::KarpLuby {
                policy: KlTrialPolicy::Fixed(40_000),
            },
            ..base
        })
        .run(&g);
        assert!(
            opt.distribution.max_abs_diff(&kl.distribution) < 0.015,
            "diff = {}",
            opt.distribution.max_abs_diff(&kl.distribution)
        );
    }

    #[test]
    fn ols_exact_prefix_matches_exact_distribution() {
        let g = fig1();
        let result = OrderingListingSampling::new(OlsConfig {
            prep_trials: 200,
            seed: 21,
            estimator: EstimatorKind::ExactPrefix {
                max_union_edges: 16,
                fallback_trials: 1_000,
            },
            ..Default::default()
        })
        .run(&g);
        let exact = exact_distribution(&g, ExactConfig::default()).unwrap();
        // All three Fig. 1 butterflies are in the candidate set (checked
        // by `preparing_phase_catches_high_probability_butterflies`), so
        // the candidate-conditional probabilities are the true ones —
        // with zero sampling error.
        for (b, &p) in exact.iter() {
            assert!(
                (result.distribution.prob(b) - p).abs() < 1e-12,
                "{b}: {} vs {}",
                result.distribution.prob(b),
                p
            );
        }
    }

    #[test]
    fn exact_prefix_falls_back_when_union_too_large() {
        let g = fig1();
        let result = OrderingListingSampling::new(OlsConfig {
            prep_trials: 200,
            seed: 22,
            estimator: EstimatorKind::ExactPrefix {
                max_union_edges: 1, // force the fallback
                fallback_trials: 40_000,
            },
            ..Default::default()
        })
        .run(&g);
        let exact = exact_distribution(&g, ExactConfig::default()).unwrap();
        let (b, p) = exact.mpmb().unwrap();
        assert!(
            (result.distribution.prob(&b) - p).abs() < 0.01,
            "fallback estimate off: {} vs {p}",
            result.distribution.prob(&b)
        );
    }

    #[test]
    fn empty_graph_yields_empty_result() {
        let g = GraphBuilder::new().build().unwrap();
        let result = OrderingListingSampling::new(OlsConfig::default()).run(&g);
        assert!(result.distribution.is_empty());
        assert!(result.candidates.is_empty());
        assert!(result.mpmb().is_none());
    }

    #[test]
    fn runs_are_reproducible() {
        let g = fig1();
        let cfg = OlsConfig {
            prep_trials: 100,
            seed: 3,
            estimator: EstimatorKind::Optimized { trials: 2_000 },
            ..Default::default()
        };
        let a = OrderingListingSampling::new(cfg).run(&g);
        let b = OrderingListingSampling::new(cfg).run(&g);
        assert_eq!(a.distribution.max_abs_diff(&b.distribution), 0.0);
        assert_eq!(a.candidates.len(), b.candidates.len());
    }

    #[test]
    fn threads_do_not_change_results() {
        let g = fig1();
        let estimators = [
            EstimatorKind::Optimized { trials: 2_000 },
            EstimatorKind::KarpLuby {
                policy: KlTrialPolicy::Fixed(1_000),
            },
        ];
        for estimator in estimators {
            let base = OlsConfig {
                prep_trials: 150,
                seed: 9,
                estimator,
                ..Default::default()
            };
            let seq = OrderingListingSampling::new(base).run(&g);
            for threads in [2, 3, 8] {
                let par = OrderingListingSampling::new(OlsConfig { threads, ..base }).run(&g);
                assert_eq!(
                    seq.distribution.max_abs_diff(&par.distribution),
                    0.0,
                    "threads={threads}"
                );
                assert_eq!(seq.candidates.len(), par.candidates.len());
                for i in 0..seq.candidates.len() {
                    assert_eq!(
                        seq.candidates.get(i).butterfly,
                        par.candidates.get(i).butterfly,
                        "candidate index {i} differs at threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_is_sorted_by_probability() {
        let g = fig1();
        let result = OrderingListingSampling::new(OlsConfig {
            prep_trials: 200,
            seed: 5,
            estimator: EstimatorKind::Optimized { trials: 20_000 },
            ..Default::default()
        })
        .run(&g);
        let top = result.top_k(3);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Exact order: B(0,1,1,2) > B(0,1,0,2) > B(0,1,0,1).
        assert_eq!(
            top[0].0,
            Butterfly::new(Left(0), Left(1), Right(1), Right(2))
        );
    }
}
