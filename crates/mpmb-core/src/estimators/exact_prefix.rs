//! Exact candidate-conditional probabilities (extension).
//!
//! The Lemma VI.5 proof derives the closed form
//! `P(B_i) = Pr[E(B_i)] · (1 − Pr[⋃_{j ≤ L(i)} E(B_j ∖ B_i)])` — both
//! estimators of §VI approximate exactly this quantity over `C_MB`. But
//! when the union of residual edge sets for a candidate is small (a few
//! dozen edges at most in practice, since each residual has ≤ 4 edges and
//! heavier candidates overlap), the union probability can be computed
//! **exactly** by enumerating assignments of just those edges — no
//! sampling error at all, independent of the rest of the graph.
//!
//! This is not in the paper; it dominates both Algorithm 4 and
//! Algorithm 5 whenever it is applicable, and serves as a precision
//! reference in tests and experiments.

use crate::candidates::CandidateSet;
use crate::distribution::Distribution;
use crate::exact::ExactError;
use bigraph::fx::FxHashMap;
use bigraph::{EdgeId, UncertainBipartiteGraph};

/// Computes `P(B_i)` exactly over the candidate set for every candidate,
/// by enumerating the union of its heavier rivals' residual edges.
///
/// Fails with [`ExactError::TooManyUncertainEdges`] if any candidate's
/// residual union exceeds `max_union_edges` (the per-candidate cost is
/// `O(2^|union| · L(i))`).
///
/// Like OLS itself, the result is conditioned on the candidate set: a
/// heavier butterfly missing from `C_MB` still inflates the answer by at
/// most the Lemma VI.5 bound.
pub fn estimate_exact_prefix(
    g: &UncertainBipartiteGraph,
    candidates: &CandidateSet,
    max_union_edges: u32,
) -> Result<Distribution, ExactError> {
    let mut probs = FxHashMap::default();
    for i in 0..candidates.len() {
        let cand = candidates.get(i);
        let l_i = candidates.larger_count(i);

        // Residual events over a dense local index of their union edges.
        let mut edge_index: FxHashMap<EdgeId, u32> = FxHashMap::default();
        let mut union_edges: Vec<EdgeId> = Vec::new();
        let mut residual_masks: Vec<u64> = Vec::with_capacity(l_i);
        for j in 0..l_i {
            let mut mask = 0u64;
            let mut impossible = false;
            for e in candidates.residual(j, i) {
                if g.prob(e) == 0.0 {
                    impossible = true;
                    break;
                }
                let next = union_edges.len() as u32;
                let idx = *edge_index.entry(e).or_insert_with(|| {
                    union_edges.push(e);
                    next
                });
                mask |= 1 << idx;
            }
            if !impossible {
                residual_masks.push(mask);
            }
            if union_edges.len() > max_union_edges as usize {
                return Err(ExactError::TooManyUncertainEdges {
                    found: union_edges.len(),
                    limit: max_union_edges,
                });
            }
        }

        // Pr[⋃ E(D_j)] by exact enumeration over the union edges.
        let k = union_edges.len();
        let mut union_prob = 0.0;
        if !residual_masks.is_empty() {
            for world in 0u64..(1 << k) {
                if residual_masks.iter().all(|&m| m & world != m) {
                    continue;
                }
                let mut wp = 1.0;
                for (idx, &e) in union_edges.iter().enumerate() {
                    let p = g.prob(e);
                    wp *= if world >> idx & 1 == 1 { p } else { 1.0 - p };
                }
                union_prob += wp;
            }
        }
        probs.insert(cand.butterfly, cand.existence_prob * (1.0 - union_prob));
    }
    Ok(Distribution::from_exact(probs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::enumerate_backbone_butterflies;
    use crate::exact::{exact_distribution, ExactConfig};
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_candidate_set_matches_global_exact() {
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let local = estimate_exact_prefix(&g, &cs, 20).unwrap();
        let global = exact_distribution(&g, ExactConfig::default()).unwrap();
        for (b, &p) in global.iter() {
            assert!(
                (local.prob(b) - p).abs() < 1e-12,
                "{b}: {} vs {}",
                local.prob(b),
                p
            );
        }
        // Exactness: zero statistical error, unlike Algorithms 4/5.
        assert_eq!(local.len(), cs.len());
    }

    #[test]
    fn truncated_candidate_set_overestimates_within_lemma_vi5() {
        let g = fig1();
        let all = enumerate_backbone_butterflies(&g);
        let global = exact_distribution(&g, ExactConfig::default()).unwrap();
        // Drop the middle-weight butterfly.
        let full = CandidateSet::from_butterflies(&g, all.clone());
        let kept: Vec<_> = (0..full.len())
            .filter(|&i| i != 1)
            .map(|i| full.get(i).butterfly)
            .collect();
        let cs = CandidateSet::from_butterflies(&g, kept);
        let local = estimate_exact_prefix(&g, &cs, 20).unwrap();
        for i in 0..cs.len() {
            let b = cs.get(i).butterfly;
            let over = local.prob(&b) - global.prob(&b);
            let bound = global.prob(&full.get(1).butterfly);
            assert!(over >= -1e-12, "{b} underestimated");
            assert!(
                over <= bound + 1e-12,
                "{b}: {over} > Lemma VI.5 bound {bound}"
            );
        }
    }

    #[test]
    fn heaviest_candidate_is_pure_existence() {
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let local = estimate_exact_prefix(&g, &cs, 20).unwrap();
        let top = cs.get(0);
        assert!((local.prob(&top.butterfly) - top.existence_prob).abs() < 1e-15);
    }

    #[test]
    fn refuses_oversized_unions() {
        // Many disjoint heavy butterflies force a large residual union
        // for the lightest candidate.
        let mut b = GraphBuilder::new();
        for i in 0..4u32 {
            let w = 10.0 - i as f64;
            b.add_edge(Left(2 * i), Right(2 * i), w, 0.5).unwrap();
            b.add_edge(Left(2 * i), Right(2 * i + 1), w, 0.5).unwrap();
            b.add_edge(Left(2 * i + 1), Right(2 * i), w, 0.5).unwrap();
            b.add_edge(Left(2 * i + 1), Right(2 * i + 1), w, 0.5)
                .unwrap();
        }
        let g = b.build().unwrap();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        // The lightest candidate's residual union spans 3 disjoint heavier
        // butterflies = 12 edges > 8.
        let err = estimate_exact_prefix(&g, &cs, 8).unwrap_err();
        assert!(matches!(err, ExactError::TooManyUncertainEdges { .. }));
        // With a sufficient limit it succeeds and matches global exact.
        let local = estimate_exact_prefix(&g, &cs, 12).unwrap();
        let global = exact_distribution(&g, ExactConfig::default()).unwrap();
        for (b, &p) in global.iter() {
            assert!((local.prob(b) - p).abs() < 1e-12, "{b}");
        }
    }

    #[test]
    fn shared_edges_between_rivals_handled_exactly() {
        // Two heavier butterflies overlapping each other: the union
        // probability is NOT the sum of their residual probabilities.
        // K_{2,3} with graded weights provides exactly this structure;
        // correctness is already asserted against global enumeration in
        // `full_candidate_set_matches_global_exact`, here we pin the
        // specific value for the lightest butterfly of Fig. 1.
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let local = estimate_exact_prefix(&g, &cs, 20).unwrap();
        let lightest = crate::Butterfly::new(Left(0), Left(1), Right(0), Right(2));
        // Exact value from the hand-computed Fig. 1 distribution.
        assert!((local.prob(&lightest) - 0.06384).abs() < 1e-12);
    }
}
