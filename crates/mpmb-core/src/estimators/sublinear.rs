//! Sublinear-time approximate butterfly counting (the `fast` tier).
//!
//! Every other method in the workspace pays at least one full pass over
//! the edge set *per trial*; on paper-scale inputs that makes a tight
//! serving deadline produce a cached partial and a 503 instead of an
//! answer. This module implements the sampling estimator of Luo et al.
//! (*Approximate Butterfly Counting in Sublinear Time*), adapted to
//! uncertain graphs with the vertex-sampling variance control of
//! Sanei-Mehri et al. (*Butterfly Counting in Bipartite Networks*): each
//! trial touches one sampled wedge and two adjacency lists, never the
//! whole graph.
//!
//! # What one trial does
//!
//! The estimand is the expected butterfly count over possible worlds,
//! `E[X] = Σ_B Pr[E(B)]` — the same quantity
//! [`bigraph::expected::expected_butterfly_count`] computes in closed
//! form with a full pass. Every butterfly contains exactly two
//! right-centered wedges, so with `W = Σ_v C(d(v), 2)` wedges overall:
//!
//! `E[X] = ½ · Σ_{(u1,v,u2)} p(u1v) p(u2v) · Σ_{v'≠v} p(u1v') p(u2v')`
//!
//! where `v'` ranges over common neighbors of the left pair. A trial
//! samples one wedge uniformly (probability `1/W`), computes the inner
//! sum by a sorted-adjacency intersection, and reports the
//! Horvitz–Thompson reweighted value `X_t = W · f(wedge)`. `E[X_t] =
//! E[X]` exactly — the estimator is unbiased at any trial count.
//!
//! # Determinism
//!
//! The engine follows the [`engine`](crate::engine) contract. Wedge
//! selection for trial `t` draws from `trial_rng(seed ^ FAST_SALT, t)`
//! (integer draws only: a global wedge index unranked through the
//! degree-ordered prefix table, then a pair index within the vertex).
//! The accumulator is a vector of `(trial index, value bits)` rows and
//! `merge` concatenates; [`SublinearTrials::finalize`] sorts rows by
//! trial index and folds the moment sums in that canonical order, so
//! the estimate is bit-identical at any thread count, cancellation
//! point, resume schedule, or cluster partition.
//!
//! The confidence interval is distribution-free (Chebyshev over the
//! sample variance, [`crate::bounds::chebyshev_half_width`]): at
//! confidence `1 − δ` the interval `estimate ± half_width` covers the
//! true expectation, conservatively.

use crate::bounds::chebyshev_half_width;
use crate::engine::{Cancel, Executor, TrialEngine};
use crate::observer::TrialObserver;
use bigraph::{trial_rng, Left, Right, UncertainBipartiteGraph};
use rand::Rng;

/// Domain separator: the fast tier draws from its own stream family so
/// it never correlates with `os`/`count` trials under a shared seed.
const FAST_SALT: u64 = 0xFA_57_B1_7E;

/// One completed fast-tier trial: `(trial index, f64 bits of the
/// reweighted sample)`. Kept index-tagged so finalization can impose a
/// canonical accumulation order regardless of scheduling.
pub type FastSample = (u64, u64);

/// Parameters of a fast-tier estimate.
#[derive(Clone, Copy, Debug)]
pub struct SublinearConfig {
    /// Sampling trials (one wedge probe each).
    pub trials: u64,
    /// Base RNG seed (caller-facing; the engine salts it).
    pub seed: u64,
    /// CI failure probability `δ` for the reported interval.
    pub delta: f64,
}

impl Default for SublinearConfig {
    fn default() -> Self {
        SublinearConfig {
            trials: 20_000,
            seed: 0x5EED,
            delta: 0.05,
        }
    }
}

/// Finalized fast-tier answer: point estimate, sample variance of the
/// per-trial estimator, and a `1 − δ` confidence interval.
#[derive(Clone, Copy, Debug)]
pub struct FastEstimate {
    /// Unbiased estimate of the expected butterfly count.
    pub estimate: f64,
    /// Unbiased sample variance of the per-trial estimator `X_t`.
    pub variance: f64,
    /// Interval lower end (clamped at 0; counts are non-negative).
    pub ci_low: f64,
    /// Interval upper end.
    pub ci_high: f64,
    /// Half-width over the estimate (`1.0` when the estimate is 0 but
    /// the interval is not degenerate — "100% uncertain", which keeps
    /// the field a finite JSON number and trips escalation).
    pub relative_error: f64,
    /// Trials behind the estimate.
    pub trials: u64,
    /// The `δ` the interval was computed at.
    pub delta: f64,
}

impl FastEstimate {
    /// Whether `value` lies inside the reported interval.
    pub fn covers(&self, value: f64) -> bool {
        self.ci_low <= value && value <= self.ci_high
    }
}

/// The fast tier as a [`TrialEngine`]: per-trial wedge sampling with
/// Horvitz–Thompson reweighting. Construction builds the degree-ordered
/// sampling table (one `O(|V_R| log |V_R|)` pass); trials are
/// `O(log |V_R| + d(v) + d(u1) + d(u2))` — sublinear in the edge count.
pub struct SublinearTrials<'g> {
    g: &'g UncertainBipartiteGraph,
    seed: u64,
    /// Total right-centered wedges `W`.
    total_wedges: u64,
    /// Right ids holding ≥ 1 wedge, degree-descending (ties by id):
    /// hub wedges sit in the table prefix, so the unranking binary
    /// search resolves the common (heavy-mass) draws fastest.
    order: Vec<u32>,
    /// `prefix[i]` = cumulative wedge count over `order[..=i]`.
    prefix: Vec<u64>,
}

impl<'g> SublinearTrials<'g> {
    /// Builds the engine and its sampling table.
    pub fn new(g: &'g UncertainBipartiteGraph, seed: u64) -> Self {
        let mut order: Vec<u32> = (0..g.num_right() as u32)
            .filter(|&v| g.right_degree(Right(v)) >= 2)
            .collect();
        order.sort_unstable_by_key(|&v| (usize::MAX - g.right_degree(Right(v)), v));
        let mut prefix = Vec::with_capacity(order.len());
        let mut total = 0u64;
        for &v in &order {
            let d = g.right_degree(Right(v)) as u64;
            total += d * (d - 1) / 2;
            prefix.push(total);
        }
        SublinearTrials {
            g,
            seed: seed ^ FAST_SALT,
            total_wedges: total,
            order,
            prefix,
        }
    }

    /// The wedge count `W` the reweighting uses.
    pub fn total_wedges(&self) -> u64 {
        self.total_wedges
    }

    /// One trial's reweighted sample `X_t = W · f(wedge_t)`.
    fn sample_value(&self, t: u64) -> f64 {
        if self.total_wedges == 0 {
            return 0.0;
        }
        let mut rng = trial_rng(self.seed, t);
        let x = rng.random_range(0..self.total_wedges);
        // Degree-ordered unranking: first table entry whose cumulative
        // mass exceeds the draw.
        let i = self.prefix.partition_point(|&p| p <= x);
        let v = self.order[i];
        let local = x - if i > 0 { self.prefix[i - 1] } else { 0 };
        let adj = self.g.right_adj(Right(v));
        let (ai, bi) = unrank_pair(local, adj.len());
        let (u1, e1) = (adj[ai].nbr, adj[ai].edge);
        let (u2, e2) = (adj[bi].nbr, adj[bi].edge);
        // Inner sum over common neighbors v' ≠ v of (u1, u2), walked in
        // ascending-id order (both adjacency slices are sorted), so the
        // float fold has one canonical order.
        let (mut a, mut b) = (
            self.g.left_adj(Left(u1)).iter(),
            self.g.left_adj(Left(u2)).iter(),
        );
        let (mut x1, mut x2) = (a.next(), b.next());
        let mut inner = 0.0f64;
        while let (Some(p), Some(q)) = (x1, x2) {
            match p.nbr.cmp(&q.nbr) {
                std::cmp::Ordering::Less => x1 = a.next(),
                std::cmp::Ordering::Greater => x2 = b.next(),
                std::cmp::Ordering::Equal => {
                    if p.nbr != v {
                        inner += self.g.prob(p.edge) * self.g.prob(q.edge);
                    }
                    x1 = a.next();
                    x2 = b.next();
                }
            }
        }
        0.5 * self.total_wedges as f64 * self.g.prob(e1) * self.g.prob(e2) * inner
    }

    /// Folds completed rows into the final estimate at failure
    /// probability `delta`. Rows may arrive in any order (parallel
    /// chunks, cluster pieces); they are sorted by trial index first, so
    /// every schedule folds the same canonical sum.
    pub fn finalize(&self, mut rows: Vec<FastSample>, delta: f64) -> FastEstimate {
        finalize_rows(&mut rows, delta)
    }
}

/// [`SublinearTrials::finalize`] without the engine (the serving layer
/// finalizes restored checkpoints whose graph is already dropped).
pub fn finalize_rows(rows: &mut [FastSample], delta: f64) -> FastEstimate {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    rows.sort_unstable_by_key(|r| r.0);
    let n = rows.len() as u64;
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &(_, bits) in rows.iter() {
        let x = f64::from_bits(bits);
        s1 += x;
        s2 += x * x;
    }
    let estimate = if n > 0 { s1 / n as f64 } else { 0.0 };
    let variance = if n > 1 {
        ((s2 - s1 * s1 / n as f64) / (n - 1) as f64).max(0.0)
    } else {
        0.0
    };
    let half = if n > 0 {
        chebyshev_half_width(variance, n, delta)
    } else {
        0.0
    };
    let relative_error = if estimate > 0.0 {
        half / estimate
    } else if half == 0.0 {
        0.0
    } else {
        1.0
    };
    FastEstimate {
        estimate,
        variance,
        ci_low: (estimate - half).max(0.0),
        ci_high: estimate + half,
        relative_error,
        trials: n,
        delta,
    }
}

impl TrialEngine for SublinearTrials<'_> {
    type Acc = Vec<FastSample>;
    type Scratch = ();

    fn new_acc(&self) -> Self::Acc {
        Vec::new()
    }

    fn new_scratch(&self) {}

    fn trial(
        &self,
        t: u64,
        _scratch: &mut (),
        acc: &mut Self::Acc,
        _observer: &mut dyn TrialObserver,
    ) {
        acc.push((t, self.sample_value(t).to_bits()));
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        into.extend(from);
    }

    fn phase(&self) -> &'static str {
        "fast.sample"
    }
}

/// Maps a rank in `0..C(len, 2)` to the pair `(a, b)` with `a < b` in
/// the combinatorial-number-system order `(0,1), (0,2), …, (1,2), …`.
fn unrank_pair(rank: u64, len: usize) -> (usize, usize) {
    debug_assert!(len >= 2);
    let mut a = 0usize;
    let mut rem = rank;
    loop {
        let row = (len - 1 - a) as u64;
        if rem < row {
            return (a, a + 1 + rem as usize);
        }
        rem -= row;
        a += 1;
    }
}

/// Runs the whole fast-tier estimate in one call: `cfg.trials` wedge
/// probes on `threads` workers, finalized at `cfg.delta`. Bit-identical
/// at every thread count.
pub fn estimate_fast(
    g: &UncertainBipartiteGraph,
    cfg: &SublinearConfig,
    threads: usize,
) -> FastEstimate {
    assert!(cfg.trials > 0, "trials must be positive");
    let engine = SublinearTrials::new(g, cfg.seed);
    let partial = Executor::new(threads).run(&engine, cfg.trials, &Cancel::never());
    engine.finalize(partial.acc, cfg.delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::expected::expected_butterfly_count;
    use bigraph::GraphBuilder;

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn dense(n: u32, p: f64) -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in 0..n {
                b.add_edge(Left(u), Right(v), 1.0, p).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn wedge_table_counts_every_wedge() {
        let g = fig1();
        let e = SublinearTrials::new(&g, 0);
        // Two left vertices fully connected to three rights: C(2,2)=1
        // wedge per right vertex.
        assert_eq!(e.total_wedges(), 3);
        let g = dense(4, 0.5);
        assert_eq!(SublinearTrials::new(&g, 0).total_wedges(), 4 * 6);
    }

    #[test]
    fn unrank_pair_is_a_bijection() {
        for len in 2..=7usize {
            let mut seen = std::collections::BTreeSet::new();
            let pairs = (len * (len - 1) / 2) as u64;
            for rank in 0..pairs {
                let (a, b) = unrank_pair(rank, len);
                assert!(a < b && b < len, "rank {rank} len {len} -> ({a},{b})");
                assert!(seen.insert((a, b)), "duplicate pair at rank {rank}");
            }
            assert_eq!(seen.len() as u64, pairs);
        }
    }

    #[test]
    fn estimate_converges_to_closed_form_expectation() {
        let g = fig1();
        let expect = expected_butterfly_count(&g); // 0.2544
        let fe = estimate_fast(
            &g,
            &SublinearConfig {
                trials: 60_000,
                seed: 7,
                delta: 0.05,
            },
            2,
        );
        assert!(
            (fe.estimate - expect).abs() < 0.02,
            "estimate {} vs {expect}",
            fe.estimate
        );
        assert!(fe.covers(expect), "CI [{}, {}]", fe.ci_low, fe.ci_high);
        assert!(fe.variance > 0.0);
    }

    #[test]
    fn deterministic_graph_estimate_is_exact_with_zero_variance() {
        let g = dense(3, 1.0);
        let fe = estimate_fast(
            &g,
            &SublinearConfig {
                trials: 500,
                seed: 3,
                delta: 0.1,
            },
            1,
        );
        // Every wedge probe sees the same fully-present neighborhood.
        assert_eq!(fe.estimate, 9.0);
        assert_eq!(fe.variance, 0.0);
        assert_eq!(fe.relative_error, 0.0);
        assert!(fe.covers(9.0));
    }

    #[test]
    fn butterfly_free_graph_estimates_zero() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.9).unwrap();
        b.add_edge(Left(1), Right(1), 1.0, 0.9).unwrap();
        let g = b.build().unwrap();
        let fe = estimate_fast(
            &g,
            &SublinearConfig {
                trials: 100,
                seed: 1,
                delta: 0.1,
            },
            1,
        );
        assert_eq!(fe.estimate, 0.0);
        assert_eq!(fe.variance, 0.0);
        assert_eq!((fe.ci_low, fe.ci_high), (0.0, 0.0));
        assert_eq!(fe.relative_error, 0.0);
    }

    #[test]
    fn bit_identical_across_thread_counts_and_resume() {
        let g = fig1();
        let cfg = SublinearConfig {
            trials: 4_000,
            seed: 11,
            delta: 0.1,
        };
        let seq = estimate_fast(&g, &cfg, 1);
        for threads in [2, 3, 8] {
            let par = estimate_fast(&g, &cfg, threads);
            assert_eq!(seq.estimate.to_bits(), par.estimate.to_bits());
            assert_eq!(seq.variance.to_bits(), par.variance.to_bits());
            assert_eq!(seq.ci_low.to_bits(), par.ci_low.to_bits());
            assert_eq!(seq.ci_high.to_bits(), par.ci_high.to_bits());
        }
        // Cancel mid-run, resume on a different thread count: same bits.
        let engine = SublinearTrials::new(&g, cfg.seed);
        let mut p = Executor::new(2).run(&engine, cfg.trials, &Cancel::after_trials(700));
        assert!(!p.completed());
        Executor::new(3).resume(&engine, &mut p, &Cancel::never());
        let resumed = engine.finalize(p.acc, cfg.delta);
        assert_eq!(seq.estimate.to_bits(), resumed.estimate.to_bits());
        assert_eq!(seq.ci_high.to_bits(), resumed.ci_high.to_bits());
    }

    #[test]
    fn finalize_of_zero_rows_is_well_defined() {
        let fe = finalize_rows(&mut [], 0.1);
        assert_eq!(fe.estimate, 0.0);
        assert_eq!(fe.variance, 0.0);
        assert_eq!(fe.relative_error, 0.0);
        assert_eq!(fe.trials, 0);
        assert!(fe.estimate.is_finite() && fe.ci_high.is_finite());
    }

    /// The satellite calibration property: across seeds, the `1 − δ` CI
    /// covers the exact expected count at least `1 − δ` of the time
    /// (Chebyshev is conservative, so in practice nearly always).
    #[test]
    fn ci_calibration_covers_exact_count_across_seeds() {
        // Heterogeneous probabilities so the per-wedge estimator has
        // genuine variance (a uniform dense graph makes every probe
        // return the exact value and the interval degenerate).
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                let p = 0.25 + 0.1 * ((u + 2 * v) % 6) as f64;
                b.add_edge(Left(u), Right(v), 1.0, p).unwrap();
            }
        }
        let hetero = b.build().unwrap();
        let delta = 0.1;
        for g in [fig1(), hetero] {
            let expect = expected_butterfly_count(&g);
            let seeds = 20u64;
            let covered = (0..seeds)
                .filter(|&s| {
                    estimate_fast(
                        &g,
                        &SublinearConfig {
                            trials: 5_000,
                            seed: 1000 + s,
                            delta,
                        },
                        2,
                    )
                    .covers(expect)
                })
                .count();
            let floor = ((1.0 - delta) * seeds as f64).floor() as usize;
            assert!(
                covered >= floor,
                "only {covered}/{seeds} CIs covered {expect}"
            );
        }
    }

    #[test]
    fn per_trial_cost_is_local_not_global() {
        // A star-heavy graph: one hub right vertex plus many isolated
        // edges. The sampling table must hold only the hub.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            b.add_edge(Left(u), Right(0), 1.0, 0.5).unwrap();
        }
        for i in 0..50u32 {
            b.add_edge(Left(100 + i), Right(1 + i), 1.0, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let e = SublinearTrials::new(&g, 0);
        assert_eq!(e.order.len(), 1, "only the hub holds wedges");
        assert_eq!(e.total_wedges(), 15);
    }
}
