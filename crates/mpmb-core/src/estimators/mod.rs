//! OLS sampling-phase probability estimators: the paper's optimized
//! shared-trial sampler (Algorithm 5) and Karp-Luby (Algorithm 4).

pub mod exact_prefix;
pub mod karp_luby;
pub mod optimized;
pub mod sublinear;
