//! The Karp-Luby probability estimator (Algorithm 4) — "OLS-KL".
//!
//! For each candidate `B_i`, `P(B_i) = Pr[E(B_i)] · (1 − Pr[⋃_{j≤L(i)}
//! E(B_j ∖ B_i)])`: the butterfly must exist and no strictly heavier
//! candidate may. The union probability is estimated with Karp-Luby
//! coverage sampling over the shared edge space: pick event `j` with
//! probability `Pr[E(D_j)]/S_i`, force `D_j`'s edges present, lazily draw
//! everything else, and count the trial iff no earlier event is fully
//! present. The estimate is `S_i · Cnt/N`.
//!
//! Per Lemma VI.4 / Eq. 8, the trial count can be fixed or derived per
//! candidate ([`KlTrialPolicy`]).

use crate::bounds::kl_over_op_ratio;
use crate::candidates::CandidateSet;
use crate::distribution::Distribution;
use crate::engine::{Cancel, Executor, TrialEngine};
use crate::observer::TrialObserver;
use bigraph::fx::FxHashMap;
use bigraph::{trial_rng, EdgeId, LazyEdgeSampler, UncertainBipartiteGraph};
use rand::Rng;

/// How many Karp-Luby trials each candidate receives.
#[derive(Clone, Copy, Debug)]
pub enum KlTrialPolicy {
    /// The same trial count for every candidate.
    Fixed(u64),
    /// Per-candidate `N_kl = ratio · base` with the Eq. 8 ratio
    /// `Pr[E(B_i)]·S_i·(Pr[E(B_i)]/μ − 1)`, clamped to `[min, cap]` —
    /// the §VIII-B "dynamic" configuration.
    Dynamic {
        /// Target probability scale `μ` (paper uses 0.05–0.1).
        mu: f64,
        /// The `N_op` the ratio multiplies (paper default `2·10⁴`).
        base: u64,
        /// Lower clamp: never fewer trials than this.
        min: u64,
        /// Upper clamp: never more trials than this.
        cap: u64,
    },
}

impl KlTrialPolicy {
    /// Trials for a candidate with existence probability `p_exist` and
    /// residual probability mass `s_i`.
    pub fn trials_for(&self, p_exist: f64, s_i: f64) -> u64 {
        match *self {
            KlTrialPolicy::Fixed(n) => n,
            KlTrialPolicy::Dynamic { mu, base, min, cap } => {
                let ratio = kl_over_op_ratio(p_exist, s_i, mu).max(0.0);
                ((ratio * base as f64).ceil() as u64).clamp(min, cap)
            }
        }
    }
}

impl Default for KlTrialPolicy {
    fn default() -> Self {
        KlTrialPolicy::Dynamic {
            mu: 0.05,
            base: 20_000,
            min: 1_000,
            cap: 200_000,
        }
    }
}

/// Result of a Karp-Luby estimation run, including the per-candidate
/// bookkeeping plotted in Fig. 10.
#[derive(Clone, Debug)]
pub struct KlReport {
    /// Estimated probabilities.
    pub distribution: Distribution,
    /// Trials spent per candidate (sorted order of the candidate set).
    pub trials_per_candidate: Vec<u64>,
    /// `S_i = Σ_{j≤L(i)} Pr[E(B_j ∖ B_i)]` per candidate.
    pub s_values: Vec<f64>,
}

impl KlReport {
    /// Total Karp-Luby trials across all candidates.
    pub fn total_trials(&self) -> u64 {
        self.trials_per_candidate.iter().sum()
    }
}

/// Runs Algorithm 4 over a candidate set.
pub fn estimate_karp_luby(
    g: &UncertainBipartiteGraph,
    candidates: &CandidateSet,
    policy: KlTrialPolicy,
    seed: u64,
) -> KlReport {
    let kl = KarpLubyTrials::new(g, candidates, policy, seed);
    let partial = Executor::new(1)
        .check_every(1)
        .run(&kl, kl.trials(), &Cancel::never());
    kl.finalize(partial.acc)
}

/// Outcome of Algorithm 4 for one candidate: its estimated probability,
/// the trials it consumed, and its residual mass `S_i`.
#[derive(Clone, Copy, Debug)]
pub struct KlCandidate {
    /// Estimated `P(B_i)`, clamped to `[0, 1]`.
    pub prob: f64,
    /// Karp-Luby trials spent (0 when `S_i = 0`).
    pub trials: u64,
    /// `S_i = Σ_{j≤L(i)} Pr[E(B_j ∖ B_i)]`.
    pub s_value: f64,
}

/// Runs Algorithm 4 for exactly one candidate index, with the
/// per-`(candidate, trial)` RNG stream `trial_rng(seed ^ (0xA5A5… | i),
/// t)` — the unit every execution mode (sequential, parallel, resumed)
/// is built from.
pub fn kl_single_candidate(
    g: &UncertainBipartiteGraph,
    candidates: &CandidateSet,
    i: usize,
    policy: KlTrialPolicy,
    seed: u64,
) -> KlCandidate {
    let cand = candidates.get(i);
    let l_i = candidates.larger_count(i);

    // Residual events D_j = B_j ∖ B_i and their probabilities
    // (Algorithm 4 lines 3–4). Impossible events (p = 0) can never
    // occur and are excluded from the union outright.
    let mut residuals: Vec<Vec<EdgeId>> = Vec::with_capacity(l_i);
    let mut prefix: Vec<f64> = Vec::with_capacity(l_i);
    let mut s_i = 0.0;
    for j in 0..l_i {
        let d_j = candidates.residual(j, i);
        let p_j: f64 = g.edges_existence_prob(&d_j);
        if p_j > 0.0 {
            s_i += p_j;
            residuals.push(d_j);
            prefix.push(s_i);
        }
    }
    if s_i == 0.0 {
        // No heavier candidate can ever exist: P(B_i) = Pr[E(B_i)].
        return KlCandidate {
            prob: cand.existence_prob,
            trials: 0,
            s_value: 0.0,
        };
    }

    let n = policy.trials_for(cand.existence_prob, s_i).max(1);
    let mut sampler = LazyEdgeSampler::new(g.num_edges());
    let mut cnt = 0u64;
    for t in 0..n {
        // Independent stream per (candidate, trial).
        let mut rng = trial_rng(seed ^ (0xA5A5_0000_0000_0000 | i as u64), t);
        sampler.begin_trial();
        // Line 6: choose event j with probability Pr[E(D_j)]/S_i.
        let x: f64 = rng.random::<f64>() * s_i;
        let j = prefix.partition_point(|&c| c <= x).min(residuals.len() - 1);
        // Line 7: condition on D_j present.
        for &e in &residuals[j] {
            sampler.force_present(e);
        }
        // Line 8: canonical iff no earlier event fully present.
        let mut canonical = true;
        'earlier: for d_k in residuals.iter().take(j) {
            if d_k.iter().all(|&e| sampler.is_present(g, e, &mut rng)) {
                canonical = false;
                break 'earlier;
            }
        }
        if canonical {
            cnt += 1;
        }
    }
    // Line 10; clamped because the unbiased estimate of
    // 1 − S·Cnt/N can stray outside [0,1] when S_i > 1.
    let union_est = s_i * cnt as f64 / n as f64;
    KlCandidate {
        prob: ((1.0 - union_est) * cand.existence_prob).clamp(0.0, 1.0),
        trials: n,
        s_value: s_i,
    }
}

/// Algorithm 4 as a [`TrialEngine`]: executor trial `t` runs *candidate*
/// `t` end to end (its whole inner trial loop), so cancellation and
/// resume operate at candidate granularity and the per-candidate RNG
/// streams are untouched by scheduling. Run with
/// [`Executor::check_every`]`(1)` — one "trial" here is heavy.
pub struct KarpLubyTrials<'a> {
    g: &'a UncertainBipartiteGraph,
    candidates: &'a CandidateSet,
    policy: KlTrialPolicy,
    seed: u64,
}

impl<'a> KarpLubyTrials<'a> {
    /// Builds the engine over a prepared candidate set.
    pub fn new(
        g: &'a UncertainBipartiteGraph,
        candidates: &'a CandidateSet,
        policy: KlTrialPolicy,
        seed: u64,
    ) -> Self {
        KarpLubyTrials {
            g,
            candidates,
            policy,
            seed,
        }
    }

    /// The executor trial count: one trial per candidate.
    pub fn trials(&self) -> u64 {
        self.candidates.len() as u64
    }

    /// Assembles the final report from a *complete* accumulator (one row
    /// per candidate, any order).
    ///
    /// # Panics
    /// Panics if `acc` does not cover every candidate exactly once.
    pub fn finalize(&self, mut acc: Vec<(u32, KlCandidate)>) -> KlReport {
        assert_eq!(
            acc.len(),
            self.candidates.len(),
            "finalize requires a completed run"
        );
        acc.sort_by_key(|&(i, _)| i);
        let mut probs: FxHashMap<crate::butterfly::Butterfly, f64> = FxHashMap::default();
        let mut trials_per_candidate = Vec::with_capacity(acc.len());
        let mut s_values = Vec::with_capacity(acc.len());
        let mut max_trials = 1u64;
        for (i, single) in acc {
            probs.insert(self.candidates.get(i as usize).butterfly, single.prob);
            trials_per_candidate.push(single.trials);
            s_values.push(single.s_value);
            max_trials = max_trials.max(single.trials);
        }
        KlReport {
            distribution: Distribution::from_estimates(probs, max_trials),
            trials_per_candidate,
            s_values,
        }
    }

    /// Karp-Luby trials actually consumed by the rows of a (possibly
    /// partial) accumulator — the server reports these as `trials_done`.
    pub fn consumed(acc: &[(u32, KlCandidate)]) -> u64 {
        acc.iter().map(|(_, s)| s.trials).sum()
    }
}

impl TrialEngine for KarpLubyTrials<'_> {
    type Acc = Vec<(u32, KlCandidate)>;
    type Scratch = ();

    fn new_acc(&self) -> Self::Acc {
        Vec::new()
    }

    fn new_scratch(&self) {}

    fn trial(
        &self,
        t: u64,
        _scratch: &mut (),
        acc: &mut Self::Acc,
        _observer: &mut dyn TrialObserver,
    ) {
        let i = t as usize;
        acc.push((
            t as u32,
            kl_single_candidate(self.g, self.candidates, i, self.policy, self.seed),
        ));
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        into.extend(from);
    }

    fn phase(&self) -> &'static str {
        "ols.kl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::{enumerate_backbone_butterflies, Butterfly};
    use crate::exact::{exact_distribution, ExactConfig};
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_candidate_set_converges_to_exact() {
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let report = estimate_karp_luby(&g, &cs, KlTrialPolicy::Fixed(60_000), 13);
        let exact = exact_distribution(&g, ExactConfig::default()).unwrap();
        for (b, &p) in exact.iter() {
            let est = report.distribution.prob(b);
            assert!((est - p).abs() < 0.01, "{b}: est {est} vs exact {p}");
        }
    }

    #[test]
    fn heaviest_candidate_needs_no_trials() {
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let report = estimate_karp_luby(&g, &cs, KlTrialPolicy::Fixed(100), 1);
        // The weight-10 butterfly has no heavier rival: S_0 = 0, 0 trials,
        // P = Pr[E(B)] exactly.
        assert_eq!(report.trials_per_candidate[0], 0);
        assert_eq!(report.s_values[0], 0.0);
        let b0 = cs.get(0).butterfly;
        assert!((report.distribution.prob(&b0) - cs.get(0).existence_prob).abs() < 1e-15);
    }

    #[test]
    fn s_values_are_monotone_with_position_within_fig1() {
        // S_i sums residual masses over strictly heavier candidates; the
        // lighter the candidate, the more (or equal) events accumulate.
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let report = estimate_karp_luby(&g, &cs, KlTrialPolicy::Fixed(10), 2);
        // Same weight class ⇒ same L(i) ⇒ both tied candidates see the
        // single heavier butterfly.
        assert_eq!(report.s_values.len(), 3);
        assert!(report.s_values[1] > 0.0 && report.s_values[2] > 0.0);
    }

    #[test]
    fn dynamic_policy_clamps() {
        let p = KlTrialPolicy::Dynamic {
            mu: 0.05,
            base: 20_000,
            min: 500,
            cap: 2_000,
        };
        // Tiny existence probability → ratio ≤ 0 → min clamp.
        assert_eq!(p.trials_for(0.01, 1.0), 500);
        // Large existence probability and S → cap clamp.
        assert_eq!(p.trials_for(0.9, 5.0), 2_000);
        // Fixed ignores inputs.
        assert_eq!(KlTrialPolicy::Fixed(7).trials_for(0.5, 3.0), 7);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let r1 = estimate_karp_luby(&g, &cs, KlTrialPolicy::Fixed(500), 3);
        let r2 = estimate_karp_luby(&g, &cs, KlTrialPolicy::Fixed(500), 3);
        assert_eq!(r1.distribution.max_abs_diff(&r2.distribution), 0.0);
        assert_eq!(r1.trials_per_candidate, r2.trials_per_candidate);
    }

    #[test]
    fn certain_heavier_rival_zeroes_the_estimate() {
        // B_heavy has p=1 edges; B_light can exist but is never maximum.
        let mut b = GraphBuilder::new();
        for (u, v) in [(0u32, 0u32), (0, 1), (1, 0), (1, 1)] {
            b.add_edge(Left(u), Right(v), 5.0, 1.0).unwrap();
        }
        for (u, v) in [(2u32, 2u32), (2, 3), (3, 2), (3, 3)] {
            b.add_edge(Left(u), Right(v), 1.0, 0.9).unwrap();
        }
        let g = b.build().unwrap();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let report = estimate_karp_luby(&g, &cs, KlTrialPolicy::Fixed(200), 4);
        let light = Butterfly::new(Left(2), Left(3), Right(2), Right(3));
        assert_eq!(report.distribution.prob(&light), 0.0);
        let heavy = Butterfly::new(Left(0), Left(1), Right(0), Right(1));
        assert_eq!(report.distribution.prob(&heavy), 1.0);
    }

    #[test]
    fn report_totals() {
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let report = estimate_karp_luby(&g, &cs, KlTrialPolicy::Fixed(100), 5);
        assert_eq!(report.total_trials(), 200, "2 non-top candidates x 100");
    }
}
