//! The paper's optimized probability estimator (Algorithm 5).
//!
//! All candidates **share each trial**: candidates are scanned in weight
//! order, each butterfly's edges are sampled lazily (memoized within the
//! trial, so shared edges are drawn once), and the scan stops at the first
//! weight class below the heaviest existing butterfly. One trial therefore
//! costs `O(|C_MB|)` worst case but typically far less — versus Karp-Luby's
//! per-candidate trials (`O(N·|C_MB|²)` total, Lemma VI.2 vs VI.3).

use crate::butterfly::Butterfly;
use crate::candidates::CandidateSet;
use crate::distribution::{Distribution, Tally};
use crate::engine::{Cancel, Executor, TrialEngine};
use crate::observer::{NoopObserver, TrialObserver};
use bigraph::{trial_rng, LazyEdgeSampler, UncertainBipartiteGraph};

/// Runs Algorithm 5: `trials` shared trials over the candidate set.
pub fn estimate_optimized(
    g: &UncertainBipartiteGraph,
    candidates: &CandidateSet,
    trials: u64,
    seed: u64,
) -> Distribution {
    estimate_optimized_with_observer(g, candidates, trials, seed, &mut NoopObserver)
}

/// [`estimate_optimized`] with a per-trial observer (Fig. 11 convergence).
pub fn estimate_optimized_with_observer(
    g: &UncertainBipartiteGraph,
    candidates: &CandidateSet,
    trials: u64,
    seed: u64,
    observer: &mut dyn TrialObserver,
) -> Distribution {
    assert!(trials > 0, "trials must be positive");
    Executor::new(1)
        .run_with_observer(
            &OptimizedTrials::new(g, candidates, seed),
            trials,
            &Cancel::never(),
            observer,
        )
        .acc
        .into_distribution()
}

/// Algorithm 5's shared trial as a [`TrialEngine`]: scan candidates in
/// weight order, sample their edges lazily (memoized within the trial),
/// stop below the first existing weight class, tally the survivors.
pub struct OptimizedTrials<'a> {
    g: &'a UncertainBipartiteGraph,
    candidates: &'a CandidateSet,
    seed: u64,
}

impl<'a> OptimizedTrials<'a> {
    /// Builds the engine over a prepared candidate set.
    pub fn new(g: &'a UncertainBipartiteGraph, candidates: &'a CandidateSet, seed: u64) -> Self {
        OptimizedTrials {
            g,
            candidates,
            seed,
        }
    }
}

impl TrialEngine for OptimizedTrials<'_> {
    type Acc = Tally;
    type Scratch = (LazyEdgeSampler, Vec<Butterfly>);

    fn new_acc(&self) -> Tally {
        Tally::new()
    }

    fn new_scratch(&self) -> Self::Scratch {
        (LazyEdgeSampler::new(self.g.num_edges()), Vec::new())
    }

    fn trial(
        &self,
        t: u64,
        (sampler, smb): &mut Self::Scratch,
        tally: &mut Tally,
        observer: &mut dyn TrialObserver,
    ) {
        let mut rng = trial_rng(self.seed, t);
        sampler.begin_trial();
        smb.clear();
        let mut w_max = f64::NEG_INFINITY;
        for cand in self.candidates.iter() {
            // Algorithm 5 lines 5–6: strictly lighter candidates cannot be
            // maximum once some butterfly exists.
            if cand.weight < w_max {
                break;
            }
            // Lines 7–10: sample unseen edges, memoized within the trial.
            let exists = cand
                .edges
                .iter()
                .all(|&e| sampler.is_present(self.g, e, &mut rng));
            if exists {
                smb.push(cand.butterfly);
                w_max = cand.weight;
            }
        }
        observer.observe(t, smb);
        tally.record_trial(smb.iter());
    }

    fn merge(&self, into: &mut Tally, from: Tally) {
        into.merge(from);
    }

    fn phase(&self) -> &'static str {
        "ols.sample"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::enumerate_backbone_butterflies;
    use crate::exact::{exact_distribution, ExactConfig};
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_candidate_set_converges_to_exact() {
        // With C_MB = all butterflies there is no truncation error
        // (Lemma VI.5 bound is 0), so estimates converge to exact P(B).
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let d = estimate_optimized(&g, &cs, 60_000, 21);
        let exact = exact_distribution(&g, ExactConfig::default()).unwrap();
        for (b, &p) in exact.iter() {
            assert!(
                (d.prob(b) - p).abs() < 0.01,
                "{b}: est {} vs exact {}",
                d.prob(b),
                p
            );
        }
    }

    #[test]
    fn tied_candidates_all_get_sampled() {
        // Two disjoint butterflies with equal weight: both should be able
        // to be maximum in the same trial (S_MB ties).
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            b.add_edge(Left(u), Right(v), 1.0, 1.0).unwrap();
        }
        for (u, v) in [(2, 2), (2, 3), (3, 2), (3, 3)] {
            b.add_edge(Left(u), Right(v), 1.0, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let d = estimate_optimized(&g, &cs, 100, 1);
        // Both certain and tied: each is always a maximum butterfly.
        for c in cs.iter() {
            assert_eq!(d.prob(&c.butterfly), 1.0, "{}", c.butterfly);
        }
    }

    #[test]
    fn shared_edges_drawn_once_per_trial() {
        // Two butterflies overlapping in two edges, equal weight. If the
        // shared edges were redrawn independently the joint behaviour
        // would be wrong; with p = 1 on shared edges and p = 0 elsewhere
        // the lighter candidate must never exist.
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 1.0).unwrap();
        b.add_edge(Left(0), Right(1), 1.0, 1.0).unwrap();
        b.add_edge(Left(1), Right(0), 1.0, 1.0).unwrap();
        b.add_edge(Left(1), Right(1), 1.0, 1.0).unwrap();
        b.add_edge(Left(2), Right(0), 1.0, 0.0).unwrap();
        b.add_edge(Left(2), Right(1), 1.0, 0.0).unwrap();
        let g = b.build().unwrap();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let d = estimate_optimized(&g, &cs, 200, 2);
        let certain = crate::butterfly::Butterfly::new(Left(0), Left(1), Right(0), Right(1));
        assert_eq!(d.prob(&certain), 1.0);
        assert_eq!(d.len(), 1, "impossible butterflies acquired mass");
    }

    #[test]
    fn deterministic_across_runs() {
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        let d1 = estimate_optimized(&g, &cs, 1_000, 5);
        let d2 = estimate_optimized(&g, &cs, 1_000, 5);
        assert_eq!(d1.max_abs_diff(&d2), 0.0);
    }

    #[test]
    fn empty_candidate_set_yields_empty_distribution() {
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, []);
        let d = estimate_optimized(&g, &cs, 10, 0);
        assert!(d.is_empty());
    }

    #[test]
    fn observer_receives_trials() {
        let g = fig1();
        let cs = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        struct Count(u64);
        impl TrialObserver for Count {
            fn observe(&mut self, _t: u64, _s: &[Butterfly]) {
                self.0 += 1;
            }
        }
        let mut c = Count(0);
        estimate_optimized_with_observer(&g, &cs, 77, 0, &mut c);
        assert_eq!(c.0, 77);
    }
}
