//! Exact computation of `P(B)` by possible-world enumeration.
//!
//! Computing `P(B)` is #P-Hard (Lemma III.1), so this engine is strictly a
//! small-instance tool: it enumerates the `2^k` assignments of the `k`
//! *uncertain* edges (`0 < p < 1`; deterministic edges are fixed), finds
//! each world's maximum-weighted butterfly set by brute force, and
//! accumulates Equation 4 exactly. It exists to provide ground truth for
//! the sampling solvers' tests and to validate the §III-B hardness
//! reduction empirically.

use crate::butterfly::{enumerate_backbone_butterflies, Butterfly};
use crate::distribution::Distribution;
use bigraph::fx::FxHashMap;
use bigraph::{EdgeId, UncertainBipartiteGraph, Weight};
use std::fmt;

/// Configuration for the exact engine.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Upper bound on the number of uncertain edges; the engine refuses
    /// graphs above it rather than silently running for 2^k worlds.
    pub max_uncertain_edges: u32,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_uncertain_edges: 22,
        }
    }
}

/// Errors from the exact engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExactError {
    /// The graph has more uncertain edges than the configured limit.
    TooManyUncertainEdges {
        /// Uncertain edges found in the graph.
        found: usize,
        /// The configured limit.
        limit: u32,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooManyUncertainEdges { found, limit } => write!(
                f,
                "{found} uncertain edges exceed the exact-enumeration limit {limit} \
                 (2^{found} possible worlds)"
            ),
        }
    }
}

impl std::error::Error for ExactError {}

/// A backbone butterfly prepared for subset tests against world masks.
struct MaskedButterfly {
    butterfly: Butterfly,
    weight: Weight,
    /// Bitmask over the *uncertain* edge list; certain-present edges need
    /// no condition, and butterflies with a certain-absent edge are
    /// dropped outright.
    mask: u64,
}

/// Computes the exact `P(B)` for every butterfly of `g` (Equation 4).
///
/// Butterflies that are never maximum in any world do not appear in the
/// output (their exact probability is 0).
pub fn exact_distribution(
    g: &UncertainBipartiteGraph,
    cfg: ExactConfig,
) -> Result<Distribution, ExactError> {
    let uncertain: Vec<EdgeId> = g
        .edge_ids()
        .filter(|&e| g.prob(e) > 0.0 && g.prob(e) < 1.0)
        .collect();
    if uncertain.len() > cfg.max_uncertain_edges as usize || uncertain.len() >= 63 {
        return Err(ExactError::TooManyUncertainEdges {
            found: uncertain.len(),
            limit: cfg.max_uncertain_edges,
        });
    }
    let uncertain_index: FxHashMap<EdgeId, u32> = uncertain
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, i as u32))
        .collect();

    // Prepare candidate butterflies sorted by weight descending.
    let mut masked: Vec<MaskedButterfly> = Vec::new();
    'butterflies: for b in enumerate_backbone_butterflies(g) {
        let edges = b.edges(g).expect("backbone butterfly");
        let mut mask = 0u64;
        for e in edges {
            let p = g.prob(e);
            if p == 0.0 {
                continue 'butterflies; // can never exist
            }
            if let Some(&i) = uncertain_index.get(&e) {
                mask |= 1 << i;
            }
        }
        masked.push(MaskedButterfly {
            butterfly: b,
            weight: b.weight(g).expect("backbone butterfly"),
            mask,
        });
    }
    masked.sort_unstable_by(|a, b| {
        b.weight
            .total_cmp(&a.weight)
            .then_with(|| a.butterfly.cmp(&b.butterfly))
    });

    let k = uncertain.len();
    let mut probs: FxHashMap<Butterfly, f64> = FxHashMap::default();
    for world in 0u64..(1u64 << k) {
        let mut world_prob = 1.0;
        for (i, &e) in uncertain.iter().enumerate() {
            let p = g.prob(e);
            world_prob *= if world >> i & 1 == 1 { p } else { 1.0 - p };
        }
        if world_prob == 0.0 {
            continue;
        }
        // First (heaviest) butterfly alive in this world sets w_max; then
        // credit every tied butterfly.
        let mut w_max: Option<Weight> = None;
        for mb in &masked {
            if let Some(w) = w_max {
                if mb.weight.total_cmp(&w) == std::cmp::Ordering::Less {
                    break;
                }
            }
            if mb.mask & world == mb.mask {
                w_max = Some(mb.weight);
                *probs.entry(mb.butterfly).or_insert(0.0) += world_prob;
            }
        }
    }
    Ok(Distribution::from_exact(probs))
}

/// Exact `P(B)` for a single butterfly.
pub fn exact_prob(
    g: &UncertainBipartiteGraph,
    b: &Butterfly,
    cfg: ExactConfig,
) -> Result<f64, ExactError> {
    Ok(exact_distribution(g, cfg)?.prob(b))
}

/// Exact MPMB (Definition 5).
pub fn exact_mpmb(
    g: &UncertainBipartiteGraph,
    cfg: ExactConfig,
) -> Result<Option<(Butterfly, f64)>, ExactError> {
    Ok(exact_distribution(g, cfg)?.mpmb())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn bf(u1: u32, u2: u32, v1: u32, v2: u32) -> Butterfly {
        Butterfly::new(Left(u1), Left(u2), Right(v1), Right(v2))
    }

    /// Independent reference: enumerate worlds via `PossibleWorld` and the
    /// brute-force `max_butterflies_in_world`, with none of the masking
    /// machinery.
    fn reference_distribution(g: &UncertainBipartiteGraph) -> FxHashMap<Butterfly, f64> {
        use bigraph::PossibleWorld;
        let m = g.num_edges();
        assert!(m <= 16);
        let mut probs: FxHashMap<Butterfly, f64> = FxHashMap::default();
        for mask in 0u32..(1 << m) {
            let mut w = PossibleWorld::empty(m);
            for i in 0..m {
                if mask >> i & 1 == 1 {
                    w.insert(EdgeId(i as u32));
                }
            }
            let wp = w.probability(g);
            let (_, smb) = crate::butterfly::max_butterflies_in_world(g, &w);
            for b in smb {
                *probs.entry(b).or_insert(0.0) += wp;
            }
        }
        probs
    }

    #[test]
    fn fig1_exact_matches_reference() {
        let g = fig1();
        let d = exact_distribution(&g, ExactConfig::default()).unwrap();
        let r = reference_distribution(&g);
        assert_eq!(d.len(), r.len());
        for (b, &p) in &r {
            assert!((d.prob(b) - p).abs() < 1e-12, "{b}: {} vs {}", d.prob(b), p);
        }
    }

    #[test]
    fn fig1_hand_checked_heaviest_butterfly() {
        // B(u0,u1,v0,v1) weighs 10 and is the unique heaviest; it is max
        // exactly when it exists: P = 0.5·0.6·0.3·0.4 = 0.036.
        let g = fig1();
        let p = exact_prob(&g, &bf(0, 1, 0, 1), ExactConfig::default()).unwrap();
        assert!((p - 0.036).abs() < 1e-12, "p={p}");
    }

    #[test]
    fn fig1_exact_mpmb() {
        // Candidates: B(0,1,0,1): exists ⇒ max, P = .036.
        // B(0,1,0,2) (w=7): max iff exists ∧ ¬B(0,1,0,1), i.e. (u0,v1)·(u1,v1) not both:
        //   .5·.8·.3·.7 · (1−.24) = .084·.76 = .06384.
        // B(0,1,1,2) (w=7): exists ∧ ¬heavy: .6·.8·.4·.7·(1−.15)=.13440·.85=.114240.
        //   (¬heavy given this one exists: 1 − .5·.3 = .85.)
        let g = fig1();
        let d = exact_distribution(&g, ExactConfig::default()).unwrap();
        assert!((d.prob(&bf(0, 1, 0, 2)) - 0.06384).abs() < 1e-12);
        assert!((d.prob(&bf(0, 1, 1, 2)) - 0.11424).abs() < 1e-12);
        let (best, p) = exact_mpmb(&g, ExactConfig::default()).unwrap().unwrap();
        assert_eq!(best, bf(0, 1, 1, 2));
        assert!((p - 0.11424).abs() < 1e-12);
    }

    #[test]
    fn deterministic_edges_do_not_blow_up_enumeration() {
        // 2x2 certain butterfly plus one uncertain spoiler edge pair.
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 1.0).unwrap();
        b.add_edge(Left(0), Right(1), 1.0, 1.0).unwrap();
        b.add_edge(Left(1), Right(0), 1.0, 1.0).unwrap();
        b.add_edge(Left(1), Right(1), 1.0, 1.0).unwrap();
        b.add_edge(Left(2), Right(0), 5.0, 0.5).unwrap();
        b.add_edge(Left(2), Right(1), 5.0, 0.5).unwrap();
        let g = b.build().unwrap();
        // Only 2 uncertain edges → 4 worlds even though |E| = 6.
        let d = exact_distribution(
            &g,
            ExactConfig {
                max_uncertain_edges: 2,
            },
        )
        .unwrap();
        // Certain butterfly (w=4) is max unless a u2-butterfly (w=12) exists;
        // those exist iff both uncertain edges do (p=.25 each pair with u0/u1).
        let certain = bf(0, 1, 0, 1);
        assert!((d.prob(&certain) - 0.75).abs() < 1e-12);
        // The two heavy butterflies tie at weight 12 and coexist: both max.
        assert!((d.prob(&bf(0, 2, 0, 1)) - 0.25).abs() < 1e-12);
        assert!((d.prob(&bf(1, 2, 0, 1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn certain_absent_edges_kill_butterflies() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.0).unwrap();
        b.add_edge(Left(0), Right(1), 1.0, 1.0).unwrap();
        b.add_edge(Left(1), Right(0), 1.0, 1.0).unwrap();
        b.add_edge(Left(1), Right(1), 1.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let d = exact_distribution(&g, ExactConfig::default()).unwrap();
        assert!(d.is_empty(), "p=0 edge admitted a butterfly");
    }

    #[test]
    fn refuses_oversized_instances() {
        let mut b = GraphBuilder::new();
        for i in 0..5u32 {
            b.add_edge(Left(i), Right(i), 1.0, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let err = exact_distribution(
            &g,
            ExactConfig {
                max_uncertain_edges: 4,
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExactError::TooManyUncertainEdges { found: 5, limit: 4 }
        );
    }

    #[test]
    fn graph_without_butterflies_yields_empty_distribution() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.5).unwrap();
        b.add_edge(Left(1), Right(1), 1.0, 0.5).unwrap();
        let g = b.build().unwrap();
        let d = exact_distribution(&g, ExactConfig::default()).unwrap();
        assert!(d.is_empty());
        assert_eq!(exact_mpmb(&g, ExactConfig::default()).unwrap(), None);
    }

    #[test]
    fn total_mass_is_probability_some_butterfly_is_max_when_unique() {
        // With all-distinct butterfly weights, each world credits at most
        // one butterfly, so total mass = Pr[world has ≥1 butterfly] ≤ 1.
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.9).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.9).unwrap();
        b.add_edge(Left(1), Right(0), 4.0, 0.9).unwrap();
        b.add_edge(Left(1), Right(1), 8.0, 0.9).unwrap();
        b.add_edge(Left(2), Right(0), 16.0, 0.9).unwrap();
        b.add_edge(Left(2), Right(1), 32.0, 0.9).unwrap();
        let g = b.build().unwrap();
        let d = exact_distribution(&g, ExactConfig::default()).unwrap();
        assert!(d.total_mass() <= 1.0 + 1e-12);
        assert!(d.total_mass() > 0.5);
    }
}
