//! The distribution of the per-world *maximum butterfly weight*.
//!
//! Every Ordering Sampling trial already computes `w_max(W)` — the weight
//! of the sampled world's maximum butterfly (0 when none exists). Tallying
//! those values yields the full distribution of the maximum weight, which
//! answers threshold queries the MPMB problem itself does not:
//! "how likely is a butterfly of weight ≥ T to exist at all?" — the
//! reliability-style question of the uncertain-graph literature, here for
//! free on top of Algorithm 2's machinery.

use crate::engine::{Cancel, Executor, TrialEngine};
use crate::observer::TrialObserver;
use crate::os::{OsConfig, OsEngine, StreamingOracle};
use bigraph::{trial_rng, UncertainBipartiteGraph, Weight};

/// Sampled distribution of `w_max` over possible worlds.
#[derive(Clone, Debug)]
pub struct MaxWeightDistribution {
    /// Sorted distinct observed `w_max` values with their trial counts.
    /// Worlds with no butterfly are recorded under the `none_count`
    /// instead of as a weight.
    values: Vec<(Weight, u64)>,
    /// Trials whose world contained no butterfly at all.
    none_count: u64,
    /// Total trials.
    trials: u64,
}

impl MaxWeightDistribution {
    /// Total trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Empirical probability that the world contains no butterfly.
    pub fn prob_no_butterfly(&self) -> f64 {
        self.none_count as f64 / self.trials as f64
    }

    /// Empirical `Pr[w_max ≥ t]` (threshold/reliability query).
    pub fn tail_prob(&self, t: Weight) -> f64 {
        let hits: u64 = self
            .values
            .iter()
            .filter(|&&(w, _)| w >= t)
            .map(|&(_, n)| n)
            .sum();
        hits as f64 / self.trials as f64
    }

    /// Empirical mean of `w_max` (no-butterfly worlds contribute 0).
    pub fn mean(&self) -> f64 {
        let sum: f64 = self.values.iter().map(|&(w, n)| w * n as f64).sum();
        sum / self.trials as f64
    }

    /// The empirical `q`-quantile of `w_max` (`0 < q ≤ 1`), with
    /// no-butterfly worlds ordered below every weight. Returns `None` if
    /// the quantile falls in the no-butterfly mass.
    pub fn quantile(&self, q: f64) -> Option<Weight> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0,1]");
        let rank = (q * self.trials as f64).ceil() as u64;
        if rank <= self.none_count {
            return None;
        }
        let mut cum = self.none_count;
        for &(w, n) in &self.values {
            cum += n;
            if cum >= rank {
                return Some(w);
            }
        }
        self.values.last().map(|&(w, _)| w)
    }

    /// The sorted `(w_max, count)` support.
    pub fn support(&self) -> &[(Weight, u64)] {
        &self.values
    }
}

/// Samples the distribution of the maximum butterfly weight over
/// `trials` possible worlds, using the OS engine per trial.
pub fn max_weight_distribution(
    g: &UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
) -> MaxWeightDistribution {
    assert!(trials > 0, "trials must be positive");
    let (counts, none_count) = Executor::new(1)
        .run(&MaxWeightTrials::new(g, seed), trials, &Cancel::never())
        .acc;
    let mut values: Vec<(Weight, u64)> = counts
        .into_iter()
        .map(|(bits, n)| (f64::from_bits(bits), n))
        .collect();
    values.sort_by(|a, b| a.0.total_cmp(&b.0));
    MaxWeightDistribution {
        values,
        none_count,
        trials,
    }
}

/// `w_max` sampling as a [`TrialEngine`]: the accumulator is a
/// `(weight-bits → count)` histogram plus the no-butterfly count, so
/// merges are pure integer additions.
struct MaxWeightTrials<'g> {
    g: &'g UncertainBipartiteGraph,
    cfg: OsConfig,
    seed: u64,
}

impl<'g> MaxWeightTrials<'g> {
    fn new(g: &'g UncertainBipartiteGraph, seed: u64) -> Self {
        MaxWeightTrials {
            g,
            cfg: OsConfig::default(),
            seed: seed ^ 0x7119_E501D,
        }
    }
}

impl<'g> TrialEngine for MaxWeightTrials<'g> {
    type Acc = (bigraph::fx::FxHashMap<u64, u64>, u64);
    type Scratch = (OsEngine<'g>, Vec<crate::Butterfly>);

    fn new_acc(&self) -> Self::Acc {
        (Default::default(), 0)
    }

    fn new_scratch(&self) -> Self::Scratch {
        (OsEngine::new(self.g, &self.cfg), Vec::new())
    }

    fn trial(
        &self,
        t: u64,
        (engine, smb): &mut Self::Scratch,
        (counts, none_count): &mut Self::Acc,
        _observer: &mut dyn TrialObserver,
    ) {
        let mut rng = trial_rng(self.seed, t);
        // Single-scan engine: streaming oracle, same stream as the lazy
        // sampler drew, no memo writes.
        let mut oracle = StreamingOracle::new(self.g, &mut rng);
        let w = engine.trial(&mut oracle, smb);
        if smb.is_empty() {
            *none_count += 1;
        } else {
            *counts.entry(w.to_bits()).or_insert(0) += 1;
        }
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        for (bits, n) in from.0 {
            *into.0.entry(bits).or_insert(0) += n;
        }
        into.1 += from.1;
    }

    fn phase(&self) -> &'static str {
        "threshold.sample"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    /// Exact tail probabilities via world enumeration.
    fn reference_tail(g: &UncertainBipartiteGraph, t: f64) -> f64 {
        use bigraph::{EdgeId, PossibleWorld};
        let m = g.num_edges();
        let mut total = 0.0;
        for mask in 0u32..(1 << m) {
            let mut w = PossibleWorld::empty(m);
            for i in 0..m {
                if mask >> i & 1 == 1 {
                    w.insert(EdgeId(i as u32));
                }
            }
            let (wt, smb) = crate::butterfly::max_butterflies_in_world(g, &w);
            if !smb.is_empty() && wt >= t {
                total += w.probability(g);
            }
        }
        total
    }

    #[test]
    fn tail_probabilities_match_enumeration() {
        let g = fig1();
        let d = max_weight_distribution(&g, 40_000, 7);
        for t in [1.0, 4.0, 7.0, 10.0] {
            let exact = reference_tail(&g, t);
            let est = d.tail_prob(t);
            assert!((est - exact).abs() < 0.01, "t={t}: {est} vs {exact}");
        }
        // Beyond the heaviest possible butterfly the tail is zero.
        assert_eq!(d.tail_prob(10.5), 0.0);
    }

    #[test]
    fn no_butterfly_mass_accounted() {
        let g = fig1();
        let d = max_weight_distribution(&g, 20_000, 8);
        let support_mass: u64 = d.support().iter().map(|&(_, n)| n).sum();
        assert_eq!(
            support_mass + (d.prob_no_butterfly() * d.trials() as f64).round() as u64,
            d.trials()
        );
        assert!(
            d.prob_no_butterfly() > 0.3,
            "Fig. 1 worlds often lack butterflies"
        );
    }

    #[test]
    fn quantiles_are_ordered_and_respect_none_mass() {
        let g = fig1();
        let d = max_weight_distribution(&g, 20_000, 9);
        // Low quantiles fall into the no-butterfly mass.
        assert_eq!(d.quantile(0.05), None);
        let q9 = d.quantile(0.9);
        let q99 = d.quantile(0.99);
        if let (Some(a), Some(b)) = (q9, q99) {
            assert!(a <= b);
            assert!([4.0, 7.0, 10.0].contains(&a), "unexpected w_max {a}");
        }
    }

    #[test]
    fn mean_is_bounded_by_max_possible_weight() {
        let g = fig1();
        let d = max_weight_distribution(&g, 5_000, 10);
        assert!(d.mean() > 0.0);
        assert!(d.mean() <= 10.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = fig1();
        let a = max_weight_distribution(&g, 2_000, 11);
        let b = max_weight_distribution(&g, 2_000, 11);
        assert_eq!(a.support(), b.support());
        assert_eq!(a.prob_no_butterfly(), b.prob_no_butterfly());
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1]")]
    fn rejects_bad_quantile() {
        let g = fig1();
        let d = max_weight_distribution(&g, 100, 1);
        let _ = d.quantile(0.0);
    }
}
