//! Butterflies (Definition 4) and brute-force enumeration references.
//!
//! A butterfly `B(u₁,u₂,v₁,v₂)` is a (2,2)-biclique: two left vertices, two
//! right vertices, and all four connecting edges. The type is kept
//! canonical (`u₁ < u₂`, `v₁ < v₂`) so structural equality, hashing, and
//! ordering agree with the paper's set semantics for `S_MB`.

use bigraph::{EdgeId, Left, PossibleWorld, Right, UncertainBipartiteGraph, Weight};
use std::fmt;

/// A canonical butterfly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Butterfly {
    /// Smaller left vertex.
    pub u1: Left,
    /// Larger left vertex.
    pub u2: Left,
    /// Smaller right vertex.
    pub v1: Right,
    /// Larger right vertex.
    pub v2: Right,
}

impl Butterfly {
    /// Builds a canonical butterfly from arbitrary vertex order.
    ///
    /// # Panics
    /// Panics if `a == b` or `c == d` — a butterfly requires two distinct
    /// vertices on each side.
    pub fn new(a: Left, b: Left, c: Right, d: Right) -> Self {
        assert_ne!(a, b, "butterfly needs two distinct left vertices");
        assert_ne!(c, d, "butterfly needs two distinct right vertices");
        Butterfly {
            u1: a.min(b),
            u2: a.max(b),
            v1: c.min(d),
            v2: c.max(d),
        }
    }

    /// The four edges of this butterfly in the backbone, in canonical
    /// order `(u₁v₁, u₁v₂, u₂v₁, u₂v₂)`, or `None` if any is missing from
    /// the backbone (then this vertex quadruple is not a butterfly of `g`).
    pub fn edges(&self, g: &UncertainBipartiteGraph) -> Option<[EdgeId; 4]> {
        Some([
            g.find_edge(self.u1, self.v1)?,
            g.find_edge(self.u1, self.v2)?,
            g.find_edge(self.u2, self.v1)?,
            g.find_edge(self.u2, self.v2)?,
        ])
    }

    /// Canonical butterfly weight (Equation 2): the sum of its four edge
    /// weights, always accumulated in canonical edge order so equality
    /// comparisons are reproducible.
    pub fn weight(&self, g: &UncertainBipartiteGraph) -> Option<Weight> {
        let [a, b, c, d] = self.edges(g)?;
        Some(g.weight(a) + g.weight(b) + g.weight(c) + g.weight(d))
    }

    /// Existence probability `Pr[E(B)] = Π p(e)` over the four edges.
    pub fn existence_prob(&self, g: &UncertainBipartiteGraph) -> Option<f64> {
        let [a, b, c, d] = self.edges(g)?;
        Some(g.prob(a) * g.prob(b) * g.prob(c) * g.prob(d))
    }

    /// Whether all four edges are present in `world`.
    pub fn exists_in(&self, g: &UncertainBipartiteGraph, world: &PossibleWorld) -> bool {
        match self.edges(g) {
            Some(es) => es.iter().all(|&e| world.contains(e)),
            None => false,
        }
    }

    /// The vertices as a `(left, left, right, right)` tuple.
    pub fn vertices(&self) -> (Left, Left, Right, Right) {
        (self.u1, self.u2, self.v1, self.v2)
    }
}

impl fmt::Display for Butterfly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B({},{},{},{})", self.u1, self.u2, self.v1, self.v2)
    }
}

/// Enumeration of every butterfly in the backbone of `g`, in canonical
/// `(u₁, u₂)`-major order.
///
/// For graphs with many butterflies prefer [`for_each_backbone_butterfly`]
/// (streams without materializing the output vector) or the
/// multi-threaded [`crate::listing::enumerate_backbone_butterflies_parallel`]
/// (identical output, shard-parallel).
pub fn enumerate_backbone_butterflies(g: &UncertainBipartiteGraph) -> Vec<Butterfly> {
    let mut out = Vec::new();
    for_each_backbone_butterfly(g, |b| out.push(b));
    out
}

/// Streams every backbone butterfly of `g` to `f`, each exactly once, in
/// canonical `(u₁, u₂)`-major order.
///
/// Backed by the wedge kernel in [`crate::listing`]: `O(Σ wedges)` rather
/// than the `O(|L|²)` pair scan the order is defined by.
pub fn for_each_backbone_butterfly(g: &UncertainBipartiteGraph, f: impl FnMut(Butterfly)) {
    crate::listing::for_each_sequential(g, f);
}

/// Counts backbone butterflies without materializing them.
pub fn count_backbone_butterflies(g: &UncertainBipartiteGraph) -> u64 {
    crate::listing::count_backbone_butterflies_parallel(g, 1)
}

/// Brute-force maximum-weighted butterfly set `S_MB(W)` (Equation 3) of a
/// fixed possible world. Returns `(w_max, butterflies)`; empty vec when
/// the world contains no butterfly.
pub fn max_butterflies_in_world(
    g: &UncertainBipartiteGraph,
    world: &PossibleWorld,
) -> (Weight, Vec<Butterfly>) {
    let mut best = f64::NEG_INFINITY;
    let mut smb: Vec<Butterfly> = Vec::new();
    for b in enumerate_backbone_butterflies(g) {
        if !b.exists_in(g, world) {
            continue;
        }
        let w = b.weight(g).expect("backbone butterfly has edges");
        match w.total_cmp(&best) {
            std::cmp::Ordering::Greater => {
                best = w;
                smb.clear();
                smb.push(b);
            }
            std::cmp::Ordering::Equal => smb.push(b),
            std::cmp::Ordering::Less => {}
        }
    }
    if smb.is_empty() {
        (0.0, smb)
    } else {
        (best, smb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn canonicalization_sorts_both_sides() {
        let b = Butterfly::new(Left(5), Left(2), Right(9), Right(3));
        assert_eq!(b.vertices(), (Left(2), Left(5), Right(3), Right(9)));
        assert_eq!(b, Butterfly::new(Left(2), Left(5), Right(3), Right(9)));
    }

    #[test]
    #[should_panic(expected = "distinct left")]
    fn rejects_degenerate_left_pair() {
        let _ = Butterfly::new(Left(1), Left(1), Right(0), Right(1));
    }

    #[test]
    fn fig1_butterfly_weight_matches_paper() {
        // Figure 1(b): B(u1, u2, v2, v3) has weight 7 (ids are 0-based here).
        let g = fig1();
        let b = Butterfly::new(Left(0), Left(1), Right(1), Right(2));
        assert_eq!(b.weight(&g), Some(7.0));
        let p = b.existence_prob(&g).unwrap();
        assert!((p - 0.6 * 0.8 * 0.4 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn missing_edge_means_no_butterfly() {
        let mut bld = GraphBuilder::new();
        bld.add_edge(Left(0), Right(0), 1.0, 0.5).unwrap();
        bld.add_edge(Left(0), Right(1), 1.0, 0.5).unwrap();
        bld.add_edge(Left(1), Right(0), 1.0, 0.5).unwrap();
        let g = bld.build().unwrap();
        let b = Butterfly::new(Left(0), Left(1), Right(0), Right(1));
        assert_eq!(b.edges(&g), None);
        assert_eq!(b.weight(&g), None);
        assert!(!b.exists_in(&g, &PossibleWorld::full(&g)));
    }

    #[test]
    fn fig1_has_three_backbone_butterflies() {
        // K_{2,3} contains C(3,2) = 3 butterflies.
        let g = fig1();
        let all = enumerate_backbone_butterflies(&g);
        assert_eq!(all.len(), 3);
        let weights: Vec<f64> = all.iter().map(|b| b.weight(&g).unwrap()).collect();
        let mut sorted = weights.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![7.0, 7.0, 10.0]);
    }

    #[test]
    fn smb_of_full_world_is_unique_max() {
        let g = fig1();
        let (w, smb) = max_butterflies_in_world(&g, &PossibleWorld::full(&g));
        assert_eq!(w, 10.0);
        assert_eq!(
            smb,
            vec![Butterfly::new(Left(0), Left(1), Right(0), Right(1))]
        );
    }

    #[test]
    fn smb_collects_ties() {
        let g = fig1();
        // Remove (u1,v1) and (u2,v1): kills both butterflies through v1...
        let mut w = PossibleWorld::full(&g);
        w.remove(g.find_edge(Left(0), Right(0)).unwrap());
        let (wt, smb) = max_butterflies_in_world(&g, &w);
        // Without u1–v1 only the butterfly avoiding v1 on u1 survives:
        // B(u1,u2,v2,v3) with weight 7.
        assert_eq!(wt, 7.0);
        assert_eq!(
            smb,
            vec![Butterfly::new(Left(0), Left(1), Right(1), Right(2))]
        );
    }

    #[test]
    fn empty_world_has_no_butterflies() {
        let g = fig1();
        let (w, smb) = max_butterflies_in_world(&g, &PossibleWorld::empty(g.num_edges()));
        assert_eq!(w, 0.0);
        assert!(smb.is_empty());
    }

    #[test]
    fn display_format() {
        let b = Butterfly::new(Left(0), Left(1), Right(2), Right(3));
        assert_eq!(b.to_string(), "B(u0,u1,v2,v3)");
    }
}
