//! Targeted queries: estimate `P(B)` for a *given* butterfly.
//!
//! The solvers answer the arg-max question; applications often also need
//! the probability of one specific butterfly (e.g. "how likely is this
//! recommendation pair to be the strongest signal?"). Two routes:
//!
//! * [`estimate_prob_of`] — conditioned sampling: since
//!   `P(B) = Pr[E(B)] · Pr[no heavier butterfly exists | E(B)]`, force
//!   `B`'s edges present, sample the rest lazily in weight order, and
//!   count trials where nothing heavier materializes. The conditioning
//!   removes the `Pr[E(B)]` factor from the variance, so the estimate
//!   needs ~`Pr[E(B)]⁻¹` fewer trials than waiting for `B` to appear in
//!   unconditioned OS runs (the same trick Karp-Luby exploits).
//! * The exact engine ([`crate::exact`]) for small instances.

use crate::butterfly::Butterfly;
use crate::engine::{Cancel, Executor, TrialEngine};
use crate::observer::TrialObserver;
use crate::os::{OsConfig, OsEngine, SamplingOracle};
use bigraph::{trial_rng, EdgeId, LazyEdgeSampler, UncertainBipartiteGraph, Weight};

/// Result of a conditioned probability query.
#[derive(Clone, Copy, Debug)]
pub struct QueryResult {
    /// `Pr[E(B)]`, computed exactly from the edge probabilities.
    pub existence_prob: f64,
    /// Estimated `Pr[B ∈ S_MB | E(B)]`.
    pub conditional_max_prob: f64,
    /// The product: the estimated `P(B)`.
    pub prob: f64,
    /// Trials used.
    pub trials: u64,
}

/// Estimates `P(B)` for a specific backbone butterfly by conditioned
/// sampling. Returns `None` if `B` is not a butterfly of `g`'s backbone.
pub fn estimate_prob_of(
    g: &UncertainBipartiteGraph,
    b: &Butterfly,
    trials: u64,
    seed: u64,
) -> Option<QueryResult> {
    assert!(trials > 0, "trials must be positive");
    let query = QueryTrials::new(g, b, seed)?;
    let hits = Executor::new(1).run(&query, trials, &Cancel::never()).acc;
    Some(query.finalize(hits, trials))
}

/// Conditioned sampling for one target butterfly as a [`TrialEngine`]:
/// each trial forces `B`'s edges present, runs an OS trial over the
/// rest, and counts a hit when nothing strictly heavier materializes.
/// The accumulator is the hit count — merging is addition.
pub struct QueryTrials<'g> {
    g: &'g UncertainBipartiteGraph,
    cfg: OsConfig,
    edges: [EdgeId; 4],
    existence_prob: f64,
    w_b: Weight,
    seed: u64,
}

impl<'g> QueryTrials<'g> {
    /// Builds the engine; `None` if `b` is not a backbone butterfly.
    pub fn new(g: &'g UncertainBipartiteGraph, b: &Butterfly, seed: u64) -> Option<Self> {
        Some(QueryTrials {
            g,
            cfg: OsConfig::default(),
            edges: b.edges(g)?,
            existence_prob: b.existence_prob(g)?,
            w_b: b.weight(g)?,
            seed,
        })
    }

    /// Assembles the query result from a hit count over `trials` trials.
    pub fn finalize(&self, hits: u64, trials: u64) -> QueryResult {
        let conditional = hits as f64 / trials as f64;
        QueryResult {
            existence_prob: self.existence_prob,
            conditional_max_prob: conditional,
            prob: self.existence_prob * conditional,
            trials,
        }
    }
}

impl<'g> TrialEngine for QueryTrials<'g> {
    type Acc = u64;
    type Scratch = (OsEngine<'g>, LazyEdgeSampler, Vec<Butterfly>);

    fn new_acc(&self) -> u64 {
        0
    }

    fn new_scratch(&self) -> Self::Scratch {
        (
            OsEngine::new(self.g, &self.cfg),
            LazyEdgeSampler::new(self.g.num_edges()),
            Vec::new(),
        )
    }

    fn trial(
        &self,
        t: u64,
        (engine, sampler, smb): &mut Self::Scratch,
        hits: &mut u64,
        observer: &mut dyn TrialObserver,
    ) {
        let mut rng = trial_rng(self.seed, t);
        sampler.begin_trial();
        for &e in &self.edges {
            sampler.force_present(e);
        }
        let mut oracle = SamplingOracle::new(self.g, sampler, &mut rng);
        let w_max = engine.trial(&mut oracle, smb);
        observer.observe(t, smb);
        // B is maximum iff nothing strictly heavier exists. B itself is
        // present (forced), so w_max ≥ w(B) always; equality means B ties
        // for the maximum, which Equation 3 counts as "maximum".
        if w_max <= self.w_b {
            *hits += 1;
        }
    }

    fn merge(&self, into: &mut u64, from: u64) {
        *into += from;
    }

    fn phase(&self) -> &'static str {
        "query.sample"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_distribution, ExactConfig};
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn conditioned_estimates_match_exact_for_every_butterfly() {
        let g = fig1();
        let exact = exact_distribution(&g, ExactConfig::default()).unwrap();
        for b in crate::enumerate_backbone_butterflies(&g) {
            let q = estimate_prob_of(&g, &b, 30_000, 7).unwrap();
            let p = exact.prob(&b);
            assert!(
                (q.prob - p).abs() < 0.01,
                "{b}: est {} vs exact {p}",
                q.prob
            );
            assert!((0.0..=1.0).contains(&q.conditional_max_prob));
            assert!((q.existence_prob - b.existence_prob(&g).unwrap()).abs() < 1e-15);
        }
    }

    #[test]
    fn heaviest_butterfly_is_always_conditionally_maximum() {
        let g = fig1();
        let heavy = Butterfly::new(Left(0), Left(1), Right(0), Right(1));
        let q = estimate_prob_of(&g, &heavy, 500, 3).unwrap();
        assert_eq!(q.conditional_max_prob, 1.0);
        assert!((q.prob - q.existence_prob).abs() < 1e-15);
    }

    #[test]
    fn non_backbone_butterfly_returns_none() {
        let g = fig1();
        let bogus = Butterfly::new(Left(0), Left(5), Right(0), Right(1));
        assert!(estimate_prob_of(&g, &bogus, 10, 0).is_none());
    }

    #[test]
    fn conditioning_beats_unconditioned_sampling_at_low_existence() {
        // A butterfly with tiny Pr[E(B)] but conditional probability 1:
        // unconditioned OS would need ~1/Pr[E] trials to even see it once;
        // the conditioned query nails it with a handful.
        let mut bld = GraphBuilder::new();
        for (u, v) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            bld.add_edge(Left(u), Right(v), 5.0, 0.05).unwrap();
        }
        let g = bld.build().unwrap();
        let b = Butterfly::new(Left(0), Left(1), Right(0), Right(1));
        let q = estimate_prob_of(&g, &b, 50, 4).unwrap();
        let expect = 0.05f64.powi(4);
        assert!((q.prob - expect).abs() < 1e-12, "q={} vs {expect}", q.prob);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = fig1();
        let b = Butterfly::new(Left(0), Left(1), Right(1), Right(2));
        let q1 = estimate_prob_of(&g, &b, 2_000, 9).unwrap();
        let q2 = estimate_prob_of(&g, &b, 2_000, 9).unwrap();
        assert_eq!(q1.prob, q2.prob);
    }
}
