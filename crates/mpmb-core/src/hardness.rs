//! The §III-B hardness construction: Monotone #2-SAT → MPMB probability.
//!
//! Lemma III.1 proves computing `P(B)` #P-Hard by building, from a
//! monotone 2-CNF `F` over variables `y₁..y_n`, an uncertain bipartite
//! network `G#` and a reference butterfly `B` such that
//! `P(B) = #SAT(F) / 2ⁿ`. This module implements the construction exactly
//! as published, plus a brute-force model counter, so the reduction can be
//! validated empirically against the exact engine.
//!
//! **A caveat the paper does not state:** the construction can admit
//! *accidental* butterflies — 4-cycles among clause-gadget edges that do
//! not correspond to any clause (e.g. three pairwise clauses
//! `{a,b},{a,c},{b,c}` create the weight-4 cycle
//! `(u_a,v_b),(u_a,v_c),(u_b,v_b)… `). Such butterflies can outweigh `B`
//! in worlds where `F` is satisfied, breaking the claimed equality. The
//! [`Reduction::is_exactly_sound`] predicate detects instances with
//! accidental butterflies; the equality `P(B) = #SAT/2ⁿ` is asserted by
//! tests on sound instances and documented as an inequality otherwise.

use crate::butterfly::{enumerate_backbone_butterflies, Butterfly};
use crate::exact::{exact_prob, ExactConfig, ExactError};
use bigraph::fx::FxHashSet;
use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};

/// A monotone 2-CNF formula: every literal positive, clauses of the form
/// `(y_a ∨ y_b)` with `a = b` allowed (unit clauses written as `(y_a ∨ y_a)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Monotone2Sat {
    num_vars: u32,
    clauses: Vec<(u32, u32)>,
}

impl Monotone2Sat {
    /// Creates a formula over variables `1..=num_vars` (1-based, matching
    /// the paper's indexing).
    ///
    /// # Panics
    /// Panics if any clause mentions variable 0 or one above `num_vars`.
    pub fn new(num_vars: u32, clauses: Vec<(u32, u32)>) -> Self {
        for &(a, b) in &clauses {
            assert!(
                (1..=num_vars).contains(&a) && (1..=num_vars).contains(&b),
                "clause ({a},{b}) out of range 1..={num_vars}"
            );
        }
        Monotone2Sat { num_vars, clauses }
    }

    /// Number of variables `n`.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[(u32, u32)] {
        &self.clauses
    }

    /// Evaluates the formula under an assignment bitmask (bit `i−1` =
    /// value of `y_i`).
    pub fn eval(&self, assignment: u64) -> bool {
        self.clauses
            .iter()
            .all(|&(a, b)| assignment >> (a - 1) & 1 == 1 || assignment >> (b - 1) & 1 == 1)
    }

    /// Brute-force model count `|{x : F(x) = 1}|`.
    ///
    /// # Panics
    /// Panics for more than 24 variables.
    pub fn count_satisfying(&self) -> u64 {
        assert!(self.num_vars <= 24, "brute-force counter capped at 24 vars");
        (0u64..(1 << self.num_vars))
            .filter(|&x| self.eval(x))
            .count() as u64
    }
}

/// The output of the Lemma III.1 construction.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The constructed uncertain bipartite network `G#`.
    pub graph: UncertainBipartiteGraph,
    /// The reference butterfly `B(u_{n+1}, u_{n+2}, v_{n+1}, v_{n+2})`.
    pub target: Butterfly,
    /// The source formula.
    pub formula: Monotone2Sat,
}

impl Reduction {
    /// Builds `G#` from a monotone 2-CNF, following §III-B parts (i)–(iv).
    ///
    /// Vertex layout (0-based ids for the paper's 1-based names):
    /// `u_0 ↦ Left(0)`, `u_i ↦ Left(i)`, `u_{n+1} ↦ Left(n+1)`,
    /// `u_{n+2} ↦ Left(n+2)`; same on the right.
    pub fn build(formula: Monotone2Sat) -> Self {
        let n = formula.num_vars;
        let mut b = GraphBuilder::new();
        b.reserve_vertices(n + 3, n + 3);

        // (i) one uncertain edge per variable: (u_i, v_i), p = 0.5, w = 1.
        for i in 1..=n {
            b.add_edge(Left(i), Right(i), 1.0, 0.5).unwrap();
        }
        // (ii)/(iii) clause edges, p = 1, w = 1; repeated clauses would
        // produce duplicate edges, so dedup.
        let mut added: FxHashSet<(u32, u32)> = FxHashSet::default();
        let mut clause_edge = |b: &mut GraphBuilder, u: u32, v: u32| {
            if added.insert((u, v)) {
                b.add_edge(Left(u), Right(v), 1.0, 1.0).unwrap();
            }
        };
        for &(i1, i2) in formula.clauses() {
            if i1 != i2 {
                clause_edge(&mut b, i1, i2);
                clause_edge(&mut b, i2, i1);
            } else {
                // Unit clause via the constant-true vertices u_0 / v_0.
                // Erratum: the published construction lists only the two
                // edges (u_i, v_0), (u_0, v_i); without the (u_0, v_0)
                // edge the unit-clause butterfly B(u_0, u_i, v_0, v_i) can
                // never complete and the reduction claims P(B) = 1
                // regardless of F. Adding (u_0, v_0) with p = 1, w = 1
                // restores the intended semantics (the butterfly exists
                // iff the variable edge does, i.e. iff y_i is false).
                clause_edge(&mut b, i1, 0);
                clause_edge(&mut b, 0, i1);
                clause_edge(&mut b, 0, 0);
            }
        }
        // (iv) the independent reference butterfly, p = 1, w = 0.5.
        for (u, v) in [
            (n + 1, n + 1),
            (n + 1, n + 2),
            (n + 2, n + 1),
            (n + 2, n + 2),
        ] {
            b.add_edge(Left(u), Right(v), 0.5, 1.0).unwrap();
        }

        let graph = b.build().expect("reduction graph is valid");
        let target = Butterfly::new(Left(n + 1), Left(n + 2), Right(n + 1), Right(n + 2));
        Reduction {
            graph,
            target,
            formula,
        }
    }

    /// The butterfly encoding clause `(i1 ∨ i2)`, `i1 ≠ i2`:
    /// `B(u_{i1}, u_{i2}, v_{i1}, v_{i2})`. Unit clauses use `u_0/v_0`.
    pub fn clause_butterfly(&self, clause: (u32, u32)) -> Butterfly {
        let (i1, i2) = clause;
        if i1 != i2 {
            Butterfly::new(Left(i1), Left(i2), Right(i1), Right(i2))
        } else {
            Butterfly::new(Left(0), Left(i1), Right(0), Right(i1))
        }
    }

    /// Whether every weight-≥2 backbone butterfly of `G#` other than the
    /// target is a clause butterfly. When true, the published equality
    /// `P(B) = #SAT/2ⁿ` holds exactly; accidental butterflies (see module
    /// docs) can otherwise suppress `P(B)` below it.
    pub fn is_exactly_sound(&self) -> bool {
        let clause_bfs: FxHashSet<Butterfly> = self
            .formula
            .clauses()
            .iter()
            .map(|&c| self.clause_butterfly(c))
            .collect();
        enumerate_backbone_butterflies(&self.graph)
            .into_iter()
            .all(|b| {
                b == self.target
                    || clause_bfs.contains(&b)
                    || b.weight(&self.graph).unwrap() < self.target.weight(&self.graph).unwrap()
            })
    }

    /// `P(B)` of the target butterfly via the exact engine.
    pub fn exact_target_prob(&self) -> Result<f64, ExactError> {
        exact_prob(
            &self.graph,
            &self.target,
            ExactConfig {
                max_uncertain_edges: self.formula.num_vars(),
            },
        )
    }

    /// The value the reduction claims: `#SAT(F) / 2ⁿ`.
    pub fn claimed_prob(&self) -> f64 {
        self.formula.count_satisfying() as f64 / 2f64.powi(self.formula.num_vars() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_eval_and_count() {
        // (y1 ∨ y2) ∧ (y2 ∨ y3): satisfying assignments of 3 vars.
        let f = Monotone2Sat::new(3, vec![(1, 2), (2, 3)]);
        assert!(f.eval(0b010)); // y2 alone satisfies both
        assert!(!f.eval(0b000));
        assert!(!f.eval(0b001)); // y1 only: second clause fails
        assert_eq!(f.count_satisfying(), 5);
    }

    #[test]
    fn unit_clause_via_constant_vertex() {
        let f = Monotone2Sat::new(2, vec![(1, 1)]);
        assert_eq!(f.count_satisfying(), 2); // y1 must hold; y2 free
        let r = Reduction::build(f);
        // u_0 and v_0 edges exist with p = 1.
        assert!(r.graph.find_edge(Left(1), Right(0)).is_some());
        assert!(r.graph.find_edge(Left(0), Right(1)).is_some());
        assert!(r.is_exactly_sound());
        let p = r.exact_target_prob().unwrap();
        assert!(
            (p - r.claimed_prob()).abs() < 1e-12,
            "{p} vs {}",
            r.claimed_prob()
        );
    }

    #[test]
    fn graph_shape_matches_construction() {
        let f = Monotone2Sat::new(3, vec![(1, 2), (2, 3)]);
        let r = Reduction::build(f);
        // Vertices 0..=n+2 on both sides.
        assert_eq!(r.graph.num_left(), 6);
        assert_eq!(r.graph.num_right(), 6);
        // Edges: 3 variable + 4 clause + 4 reference = 11.
        assert_eq!(r.graph.num_edges(), 11);
        // Variable edges are the only uncertain ones.
        let uncertain = r
            .graph
            .edge_ids()
            .filter(|&e| r.graph.prob(e) > 0.0 && r.graph.prob(e) < 1.0)
            .count();
        assert_eq!(uncertain, 3);
        // Target butterfly exists with weight 2 and certainty 1.
        assert_eq!(r.target.weight(&r.graph), Some(2.0));
        assert_eq!(r.target.existence_prob(&r.graph), Some(1.0));
    }

    #[test]
    fn single_clause_reduction_is_exact() {
        // F = (y1 ∨ y2): 3 of 4 assignments satisfy.
        let f = Monotone2Sat::new(2, vec![(1, 2)]);
        let r = Reduction::build(f);
        assert!(r.is_exactly_sound());
        let p = r.exact_target_prob().unwrap();
        assert!((p - 0.75).abs() < 1e-12, "p={p}");
    }

    #[test]
    fn chain_reductions_are_exact() {
        // Chains (y1∨y2)∧(y2∨y3)∧…∧ have no clause triangles.
        for n in 2..=6u32 {
            let clauses: Vec<(u32, u32)> = (1..n).map(|i| (i, i + 1)).collect();
            let f = Monotone2Sat::new(n, clauses);
            let r = Reduction::build(f);
            assert!(r.is_exactly_sound(), "n={n}");
            let p = r.exact_target_prob().unwrap();
            let claimed = r.claimed_prob();
            assert!((p - claimed).abs() < 1e-12, "n={n}: {p} vs {claimed}");
        }
    }

    #[test]
    fn clause_triangle_creates_accidental_butterflies() {
        // {1,2},{1,3},{2,3} — the triangle case from the module docs.
        // The reduction is not exactly sound here; the exact probability
        // must still never *exceed* the claim (extra heavy butterflies can
        // only demote the target).
        let f = Monotone2Sat::new(3, vec![(1, 2), (1, 3), (2, 3)]);
        let r = Reduction::build(f.clone());
        assert!(!r.is_exactly_sound(), "triangle unexpectedly sound");
        let p = r.exact_target_prob().unwrap();
        assert!(
            p <= r.claimed_prob() + 1e-12,
            "accidental butterflies should only suppress: {p} vs {}",
            r.claimed_prob()
        );
    }

    #[test]
    fn sampling_solver_agrees_with_reduction_on_sound_instance() {
        // End-to-end: OS estimates P(target) ≈ #SAT/2ⁿ on a sound formula.
        let f = Monotone2Sat::new(4, vec![(1, 2), (3, 4)]);
        let r = Reduction::build(f);
        assert!(r.is_exactly_sound());
        let claimed = r.claimed_prob(); // (3/4)² = 0.5625
        let d = crate::os::OrderingSampling::new(crate::os::OsConfig {
            trials: 40_000,
            seed: 77,
            ..Default::default()
        })
        .run(&r.graph);
        let est = d.prob(&r.target);
        assert!(
            (est - claimed).abs() < 0.01,
            "est {est} vs claimed {claimed}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_clause() {
        let _ = Monotone2Sat::new(2, vec![(1, 3)]);
    }
}
