//! Angles (Definition 3) and the §V-C top-two angle slots.
//!
//! An angle `∠(x, m, y)` is a 2-path: endpoints `x, y` on one side, middle
//! `m` on the other. Ordering Sampling only ever needs, per endpoint pair,
//! the angles of the two largest weight classes (`A₁`, `A₂`): any heavier
//! butterfly over that pair could otherwise be formed from two retained
//! angles, contradicting maximality (§V-C). [`TopTwoAngles`] implements
//! exactly the Table II update rules.
//!
//! [`SlotTable`] is the trial-loop container for those slots. A generic
//! hash map of `TopTwoAngles` is the natural shape, but a terrible fit
//! for the workload: on dense graphs a single trial creates tens of
//! thousands of endpoint-pair slots, nearly all of which receive exactly
//! **one** angle — so a map of heap-backed slots spends its time
//! allocating, dropping, and re-clearing `Vec`s. The table instead keeps
//! one flat open-addressed bucket array whose entries embed the
//! overwhelmingly common single-mid classes inline, generation-stamps
//! buckets so a new trial clears in O(1), and spills the rare multi-mid
//! (tied) classes into a pooled `Vec<TopTwoAngles>` that is reused
//! across trials. Semantics are exactly `FxHashMap<(x, y), TopTwoAngles>`
//! (property-tested below); enumeration order is first-insertion order,
//! which is deterministic because the trial scan is.

use bigraph::Weight;

/// The `A₁`/`A₂` slots for one endpoint pair: all angles of the top weight
/// class and all angles of the second weight class, each angle identified
/// by its middle vertex (the endpoints are fixed by the map key).
#[derive(Clone, Debug, PartialEq)]
pub struct TopTwoAngles {
    /// Weight of the `A₁` class; `NEG_INFINITY` when empty.
    w1: Weight,
    /// Middle vertices of the `A₁` class.
    mids1: Vec<u32>,
    /// Weight of the `A₂` class; `NEG_INFINITY` when empty.
    w2: Weight,
    /// Middle vertices of the `A₂` class.
    mids2: Vec<u32>,
}

impl Default for TopTwoAngles {
    fn default() -> Self {
        TopTwoAngles {
            w1: f64::NEG_INFINITY,
            mids1: Vec::new(),
            w2: f64::NEG_INFINITY,
            mids2: Vec::new(),
        }
    }
}

impl TopTwoAngles {
    /// Creates empty slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the angle with middle vertex `mid` and weight `w`,
    /// following Table II. Middles are unique per endpoint pair in a
    /// simple bipartite graph, so no dedup is needed.
    pub fn insert(&mut self, mid: u32, w: Weight) {
        if w > self.w1 {
            // New top class: old A₁ demotes to A₂.
            std::mem::swap(&mut self.mids1, &mut self.mids2);
            self.w2 = self.w1;
            self.mids1.clear();
            self.mids1.push(mid);
            self.w1 = w;
        } else if w == self.w1 {
            self.mids1.push(mid);
        } else if w > self.w2 {
            self.mids2.clear();
            self.mids2.push(mid);
            self.w2 = w;
        } else if w == self.w2 {
            self.mids2.push(mid);
        }
        // w < w2: ignored (Table II last row).
    }

    /// Weight of the `A₁` class (`None` when empty).
    pub fn w1(&self) -> Option<Weight> {
        self.mids1.first().map(|_| self.w1)
    }

    /// Weight of the `A₂` class (`None` when empty).
    pub fn w2(&self) -> Option<Weight> {
        self.mids2.first().map(|_| self.w2)
    }

    /// Middle vertices of the `A₁` class.
    pub fn mids1(&self) -> &[u32] {
        &self.mids1
    }

    /// Middle vertices of the `A₂` class.
    pub fn mids2(&self) -> &[u32] {
        &self.mids2
    }

    /// Weight of the heaviest butterfly formable over this endpoint pair:
    /// `2·w₁` when `|A₁| ≥ 2`, else `w₁ + w₂` when `A₂` is non-empty
    /// (§V-D), else `None` when fewer than two angles exist.
    pub fn best_butterfly_weight(&self) -> Option<Weight> {
        if self.mids1.len() >= 2 {
            Some(self.w1 + self.w1)
        } else if !self.mids1.is_empty() && !self.mids2.is_empty() {
            Some(self.w1 + self.w2)
        } else {
            None
        }
    }

    /// Clears the slots, keeping list capacity for reuse across trials.
    pub fn clear(&mut self) {
        self.w1 = f64::NEG_INFINITY;
        self.w2 = f64::NEG_INFINITY;
        self.mids1.clear();
        self.mids2.clear();
    }
}

/// Sentinel for "no spill slot".
const NO_SPILL: u32 = u32::MAX;

/// One open-addressed bucket: probe metadata and the inline slot state
/// live side by side so a lookup touches a single cache line.
#[derive(Clone, Copy)]
struct Bucket {
    /// Packed endpoint pair `(x << 32) | y`.
    key: u64,
    /// Trial generation that owns this bucket; stale = empty.
    gen: u32,
    /// Index into the spill pool once a weight class holds ≥ 2 mids.
    spill: u32,
    /// `A₁` weight (`NEG_INFINITY` never occurs inline: a live bucket
    /// has at least one angle).
    w1: Weight,
    /// `A₂` weight; `NEG_INFINITY` when the class is empty.
    w2: Weight,
    /// The single `A₁` middle.
    m1: u32,
    /// The single `A₂` middle (meaningful iff `w2` is finite).
    m2: u32,
}

/// Flat slot container for one trial's endpoint-pair angle slots — see
/// the module docs for why this beats a hash map of [`TopTwoAngles`].
pub struct SlotTable {
    buckets: Vec<Bucket>,
    mask: usize,
    /// Bucket indices in first-insertion order (the live set).
    live: Vec<u32>,
    /// Pooled storage for tied (multi-mid) classes, reused across trials.
    spill: Vec<TopTwoAngles>,
    spill_used: usize,
    gen: u32,
}

impl Default for SlotTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SlotTable {
    /// An empty table; buckets grow on demand and then persist.
    pub fn new() -> Self {
        let cap = 1024;
        SlotTable {
            buckets: vec![
                Bucket {
                    key: 0,
                    gen: 0,
                    spill: NO_SPILL,
                    w1: f64::NEG_INFINITY,
                    w2: f64::NEG_INFINITY,
                    m1: 0,
                    m2: 0,
                };
                cap
            ],
            mask: cap - 1,
            live: Vec::new(),
            spill: Vec::new(),
            spill_used: 0,
            gen: 0,
        }
    }

    /// Starts a fresh trial: every bucket becomes logically empty in
    /// O(1) (generation bump), the spill pool rewinds without dropping
    /// its `Vec` capacities.
    pub fn begin_trial(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation wrapped: physically clear the stamps once.
            for b in &mut self.buckets {
                b.gen = 0;
            }
            self.gen = 1;
        }
        self.live.clear();
        self.spill_used = 0;
    }

    /// Number of live slots this trial.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no slot has been touched this trial.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    #[inline]
    fn probe(&self, key: u64) -> usize {
        // SplitMix64-style finalizer: full-width mixing so the low bits
        // used by the mask depend on every key bit.
        let mut h = key ^ (key >> 33);
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        let mut i = h as usize & self.mask;
        loop {
            let b = &self.buckets[i];
            if b.gen != self.gen || b.key == key {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Doubles the bucket array, re-inserting live buckets. `live` keeps
    /// its insertion order; only the bucket *indices* change.
    #[cold]
    fn grow(&mut self) {
        let old = std::mem::take(&mut self.buckets);
        let cap = (self.mask + 1) * 2;
        self.buckets = vec![
            Bucket {
                key: 0,
                gen: 0,
                spill: NO_SPILL,
                w1: f64::NEG_INFINITY,
                w2: f64::NEG_INFINITY,
                m1: 0,
                m2: 0,
            };
            cap
        ];
        self.mask = cap - 1;
        let live = std::mem::take(&mut self.live);
        for &i in &live {
            let b = old[i as usize];
            let j = self.probe(b.key);
            self.buckets[j] = b;
            self.live.push(j as u32);
        }
        debug_assert_eq!(self.live.len(), live.len());
    }

    /// Moves an inline bucket's state into a pooled [`TopTwoAngles`] so
    /// it can hold a tied (multi-mid) class, and returns the pool index.
    #[cold]
    fn spill_bucket(&mut self, i: usize) -> usize {
        let s = self.spill_used;
        if s == self.spill.len() {
            self.spill.push(TopTwoAngles::new());
        } else {
            self.spill[s].clear();
        }
        self.spill_used += 1;
        let b = self.buckets[i];
        // Replay the retained classes heaviest-first; arrival order
        // within single-mid classes is trivially preserved.
        self.spill[s].insert(b.m1, b.w1);
        if b.w2 > f64::NEG_INFINITY {
            self.spill[s].insert(b.m2, b.w2);
        }
        self.buckets[i].spill = s as u32;
        s
    }

    /// Inserts the angle `∠(x, mid, y)` of weight `w` and returns the
    /// slot's best butterfly weight (`None` until it has two angles with
    /// distinct middles) — exactly `TopTwoAngles::insert` followed by
    /// `best_butterfly_weight`, on the slot keyed `(x, y)`.
    #[inline]
    pub fn insert(&mut self, x: u32, y: u32, mid: u32, w: Weight) -> Option<Weight> {
        // Beyond 3/4 load the probe chains (and miss rate) degrade;
        // grow before inserting so `probe` always terminates.
        if (self.live.len() + 1) * 4 > (self.mask + 1) * 3 {
            self.grow();
        }
        let key = (u64::from(x) << 32) | u64::from(y);
        let i = self.probe(key);
        let b = &mut self.buckets[i];
        if b.gen != self.gen {
            *b = Bucket {
                key,
                gen: self.gen,
                spill: NO_SPILL,
                w1: w,
                w2: f64::NEG_INFINITY,
                m1: mid,
                m2: 0,
            };
            self.live.push(i as u32);
            return None;
        }
        if b.spill == NO_SPILL {
            if w > b.w1 {
                // New top class: old A₁ demotes to A₂ (dropping old A₂).
                b.w2 = b.w1;
                b.m2 = b.m1;
                b.w1 = w;
                b.m1 = mid;
            } else if w > b.w2 && w < b.w1 {
                b.w2 = w;
                b.m2 = mid;
            } else if w == b.w1 || w == b.w2 {
                // A tie makes a class multi-mid: move to the spill pool.
                let s = self.spill_bucket(i);
                self.spill[s].insert(mid, w);
                return self.spill[s].best_butterfly_weight();
            }
            // (w < w2: ignored, Table II last row.)
            let b = self.buckets[i];
            return if b.w2 > f64::NEG_INFINITY {
                Some(b.w1 + b.w2)
            } else {
                None
            };
        }
        let s = b.spill as usize;
        self.spill[s].insert(mid, w);
        self.spill[s].best_butterfly_weight()
    }

    /// Visits every live slot in first-insertion order (deterministic:
    /// the trial scan order decides it, not hashing) as
    /// `f(x, y, w1, mids1, w2, mids2)`; `mids2` is empty when the `A₂`
    /// class is, and `w2` is then `NEG_INFINITY`.
    pub fn for_each_live(&self, mut f: impl FnMut(u32, u32, Weight, &[u32], Weight, &[u32])) {
        for &i in &self.live {
            let b = &self.buckets[i as usize];
            let (x, y) = ((b.key >> 32) as u32, b.key as u32);
            if b.spill == NO_SPILL {
                let mids2 = if b.w2 > f64::NEG_INFINITY {
                    std::slice::from_ref(&b.m2)
                } else {
                    &[]
                };
                f(x, y, b.w1, std::slice::from_ref(&b.m1), b.w2, mids2);
            } else {
                let t = &self.spill[b.spill as usize];
                let (w1, w2) = (
                    t.w1().unwrap_or(f64::NEG_INFINITY),
                    t.w2().unwrap_or(f64::NEG_INFINITY),
                );
                f(x, y, w1, t.mids1(), w2, t.mids2());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type WeightClass = Option<(f64, Vec<u32>)>;

    /// Reference implementation: keep everything, compute top-2 classes.
    fn reference(angles: &[(u32, f64)]) -> (WeightClass, WeightClass) {
        let mut ws: Vec<f64> = angles.iter().map(|&(_, w)| w).collect();
        ws.sort_by(|a, b| b.total_cmp(a));
        ws.dedup();
        let class = |w: f64| -> Vec<u32> {
            let mut v: Vec<u32> = angles
                .iter()
                .filter(|&&(_, aw)| aw == w)
                .map(|&(m, _)| m)
                .collect();
            v.sort_unstable();
            v
        };
        let first = ws.first().map(|&w| (w, class(w)));
        let second = ws.get(1).map(|&w| (w, class(w)));
        (first, second)
    }

    fn slots_of(angles: &[(u32, f64)]) -> TopTwoAngles {
        let mut t = TopTwoAngles::new();
        for &(m, w) in angles {
            t.insert(m, w);
        }
        t
    }

    fn sorted(v: &[u32]) -> Vec<u32> {
        let mut v = v.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn table2_case_greater_than_w1() {
        let t = slots_of(&[(1, 5.0), (2, 7.0)]);
        assert_eq!(t.w1(), Some(7.0));
        assert_eq!(t.mids1(), &[2]);
        assert_eq!(t.w2(), Some(5.0));
        assert_eq!(t.mids2(), &[1]);
    }

    #[test]
    fn table2_case_equal_w1_appends() {
        let t = slots_of(&[(1, 5.0), (2, 5.0)]);
        assert_eq!(t.w1(), Some(5.0));
        assert_eq!(sorted(t.mids1()), vec![1, 2]);
        assert_eq!(t.w2(), None);
    }

    #[test]
    fn table2_case_between_replaces_a2() {
        let t = slots_of(&[(1, 5.0), (2, 2.0), (3, 3.0)]);
        assert_eq!(t.w2(), Some(3.0));
        assert_eq!(t.mids2(), &[3]);
    }

    #[test]
    fn table2_case_equal_w2_appends() {
        let t = slots_of(&[(1, 5.0), (2, 3.0), (3, 3.0)]);
        assert_eq!(t.w2(), Some(3.0));
        assert_eq!(sorted(t.mids2()), vec![2, 3]);
    }

    #[test]
    fn table2_case_below_w2_ignored() {
        let t = slots_of(&[(1, 5.0), (2, 3.0), (3, 1.0)]);
        assert_eq!(t.w1(), Some(5.0));
        assert_eq!(t.w2(), Some(3.0));
        assert_eq!(t.mids2(), &[2]);
    }

    #[test]
    fn promotion_demotes_whole_a1_class() {
        let t = slots_of(&[(1, 5.0), (2, 5.0), (3, 9.0)]);
        assert_eq!(t.w1(), Some(9.0));
        assert_eq!(t.mids1(), &[3]);
        assert_eq!(t.w2(), Some(5.0));
        assert_eq!(sorted(t.mids2()), vec![1, 2]);
    }

    #[test]
    fn best_butterfly_weight_cases() {
        assert_eq!(TopTwoAngles::new().best_butterfly_weight(), None);
        assert_eq!(slots_of(&[(1, 5.0)]).best_butterfly_weight(), None);
        assert_eq!(
            slots_of(&[(1, 5.0), (2, 5.0)]).best_butterfly_weight(),
            Some(10.0)
        );
        assert_eq!(
            slots_of(&[(1, 5.0), (2, 3.0)]).best_butterfly_weight(),
            Some(8.0)
        );
        assert_eq!(
            slots_of(&[(1, 5.0), (2, 5.0), (3, 3.0)]).best_butterfly_weight(),
            Some(10.0)
        );
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut t = slots_of(&[(1, 5.0), (2, 5.0), (3, 3.0)]);
        t.clear();
        assert_eq!(t.w1(), None);
        assert_eq!(t.w2(), None);
        assert_eq!(t.best_butterfly_weight(), None);
        t.insert(9, 1.0);
        assert_eq!(t.w1(), Some(1.0));
    }

    #[test]
    fn slot_table_matches_hashmap_of_top_two_angles() {
        // The table must behave exactly like a map of TopTwoAngles:
        // same per-insert best-weight answers, same final class content,
        // across growth (many keys) and ties (spill path).
        let mut table = SlotTable::new();
        // Deterministic LCG so the exercise covers collisions and ties.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _trial in 0..3 {
            table.begin_trial();
            let mut reference: Vec<((u32, u32), TopTwoAngles)> = Vec::new();
            for _ in 0..4000 {
                let x = (next() % 50) as u32;
                let y = x + 1 + (next() % 50) as u32;
                let mid = (next() % 30) as u32;
                let w = (next() % 8) as f64;
                let got = table.insert(x, y, mid, w);
                let slot = match reference.iter_mut().find(|(k, _)| *k == (x, y)) {
                    Some((_, s)) => s,
                    None => {
                        reference.push(((x, y), TopTwoAngles::new()));
                        &mut reference.last_mut().unwrap().1
                    }
                };
                slot.insert(mid, w);
                assert_eq!(got, slot.best_butterfly_weight());
            }
            assert_eq!(table.len(), reference.len());
            let mut seen = 0;
            table.for_each_live(|x, y, w1, m1, w2, m2| {
                let (_, want) = &reference[seen];
                assert_eq!(reference[seen].0, (x, y), "insertion order");
                assert_eq!(Some(w1), want.w1());
                assert_eq!(m1, want.mids1());
                assert_eq!(m2, want.mids2());
                if !m2.is_empty() {
                    assert_eq!(Some(w2), want.w2());
                }
                seen += 1;
            });
            assert_eq!(seen, reference.len());
        }
    }

    #[test]
    fn matches_reference_on_random_sequences() {
        // Small deterministic pseudo-random exercise across permutations.
        let weights = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0];
        let mut angles: Vec<(u32, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u32, w))
            .collect();
        // Try several rotations as insertion orders.
        for rot in 0..angles.len() {
            angles.rotate_left(1);
            let t = slots_of(&angles);
            let (r1, r2) = reference(&angles);
            let (w1, m1) = r1.unwrap();
            assert_eq!(t.w1(), Some(w1), "rot={rot}");
            assert_eq!(sorted(t.mids1()), m1);
            let (w2, m2) = r2.unwrap();
            assert_eq!(t.w2(), Some(w2));
            assert_eq!(sorted(t.mids2()), m2);
        }
    }
}
