//! Angles (Definition 3) and the §V-C top-two angle slots.
//!
//! An angle `∠(x, m, y)` is a 2-path: endpoints `x, y` on one side, middle
//! `m` on the other. Ordering Sampling only ever needs, per endpoint pair,
//! the angles of the two largest weight classes (`A₁`, `A₂`): any heavier
//! butterfly over that pair could otherwise be formed from two retained
//! angles, contradicting maximality (§V-C). [`TopTwoAngles`] implements
//! exactly the Table II update rules.

use bigraph::Weight;

/// The `A₁`/`A₂` slots for one endpoint pair: all angles of the top weight
/// class and all angles of the second weight class, each angle identified
/// by its middle vertex (the endpoints are fixed by the map key).
#[derive(Clone, Debug, PartialEq)]
pub struct TopTwoAngles {
    /// Weight of the `A₁` class; `NEG_INFINITY` when empty.
    w1: Weight,
    /// Middle vertices of the `A₁` class.
    mids1: Vec<u32>,
    /// Weight of the `A₂` class; `NEG_INFINITY` when empty.
    w2: Weight,
    /// Middle vertices of the `A₂` class.
    mids2: Vec<u32>,
}

impl Default for TopTwoAngles {
    fn default() -> Self {
        TopTwoAngles {
            w1: f64::NEG_INFINITY,
            mids1: Vec::new(),
            w2: f64::NEG_INFINITY,
            mids2: Vec::new(),
        }
    }
}

impl TopTwoAngles {
    /// Creates empty slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the angle with middle vertex `mid` and weight `w`,
    /// following Table II. Middles are unique per endpoint pair in a
    /// simple bipartite graph, so no dedup is needed.
    pub fn insert(&mut self, mid: u32, w: Weight) {
        if w > self.w1 {
            // New top class: old A₁ demotes to A₂.
            std::mem::swap(&mut self.mids1, &mut self.mids2);
            self.w2 = self.w1;
            self.mids1.clear();
            self.mids1.push(mid);
            self.w1 = w;
        } else if w == self.w1 {
            self.mids1.push(mid);
        } else if w > self.w2 {
            self.mids2.clear();
            self.mids2.push(mid);
            self.w2 = w;
        } else if w == self.w2 {
            self.mids2.push(mid);
        }
        // w < w2: ignored (Table II last row).
    }

    /// Weight of the `A₁` class (`None` when empty).
    pub fn w1(&self) -> Option<Weight> {
        self.mids1.first().map(|_| self.w1)
    }

    /// Weight of the `A₂` class (`None` when empty).
    pub fn w2(&self) -> Option<Weight> {
        self.mids2.first().map(|_| self.w2)
    }

    /// Middle vertices of the `A₁` class.
    pub fn mids1(&self) -> &[u32] {
        &self.mids1
    }

    /// Middle vertices of the `A₂` class.
    pub fn mids2(&self) -> &[u32] {
        &self.mids2
    }

    /// Weight of the heaviest butterfly formable over this endpoint pair:
    /// `2·w₁` when `|A₁| ≥ 2`, else `w₁ + w₂` when `A₂` is non-empty
    /// (§V-D), else `None` when fewer than two angles exist.
    pub fn best_butterfly_weight(&self) -> Option<Weight> {
        if self.mids1.len() >= 2 {
            Some(self.w1 + self.w1)
        } else if !self.mids1.is_empty() && !self.mids2.is_empty() {
            Some(self.w1 + self.w2)
        } else {
            None
        }
    }

    /// Clears the slots, keeping list capacity for reuse across trials.
    pub fn clear(&mut self) {
        self.w1 = f64::NEG_INFINITY;
        self.w2 = f64::NEG_INFINITY;
        self.mids1.clear();
        self.mids2.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type WeightClass = Option<(f64, Vec<u32>)>;

    /// Reference implementation: keep everything, compute top-2 classes.
    fn reference(angles: &[(u32, f64)]) -> (WeightClass, WeightClass) {
        let mut ws: Vec<f64> = angles.iter().map(|&(_, w)| w).collect();
        ws.sort_by(|a, b| b.total_cmp(a));
        ws.dedup();
        let class = |w: f64| -> Vec<u32> {
            let mut v: Vec<u32> = angles
                .iter()
                .filter(|&&(_, aw)| aw == w)
                .map(|&(m, _)| m)
                .collect();
            v.sort_unstable();
            v
        };
        let first = ws.first().map(|&w| (w, class(w)));
        let second = ws.get(1).map(|&w| (w, class(w)));
        (first, second)
    }

    fn slots_of(angles: &[(u32, f64)]) -> TopTwoAngles {
        let mut t = TopTwoAngles::new();
        for &(m, w) in angles {
            t.insert(m, w);
        }
        t
    }

    fn sorted(v: &[u32]) -> Vec<u32> {
        let mut v = v.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn table2_case_greater_than_w1() {
        let t = slots_of(&[(1, 5.0), (2, 7.0)]);
        assert_eq!(t.w1(), Some(7.0));
        assert_eq!(t.mids1(), &[2]);
        assert_eq!(t.w2(), Some(5.0));
        assert_eq!(t.mids2(), &[1]);
    }

    #[test]
    fn table2_case_equal_w1_appends() {
        let t = slots_of(&[(1, 5.0), (2, 5.0)]);
        assert_eq!(t.w1(), Some(5.0));
        assert_eq!(sorted(t.mids1()), vec![1, 2]);
        assert_eq!(t.w2(), None);
    }

    #[test]
    fn table2_case_between_replaces_a2() {
        let t = slots_of(&[(1, 5.0), (2, 2.0), (3, 3.0)]);
        assert_eq!(t.w2(), Some(3.0));
        assert_eq!(t.mids2(), &[3]);
    }

    #[test]
    fn table2_case_equal_w2_appends() {
        let t = slots_of(&[(1, 5.0), (2, 3.0), (3, 3.0)]);
        assert_eq!(t.w2(), Some(3.0));
        assert_eq!(sorted(t.mids2()), vec![2, 3]);
    }

    #[test]
    fn table2_case_below_w2_ignored() {
        let t = slots_of(&[(1, 5.0), (2, 3.0), (3, 1.0)]);
        assert_eq!(t.w1(), Some(5.0));
        assert_eq!(t.w2(), Some(3.0));
        assert_eq!(t.mids2(), &[2]);
    }

    #[test]
    fn promotion_demotes_whole_a1_class() {
        let t = slots_of(&[(1, 5.0), (2, 5.0), (3, 9.0)]);
        assert_eq!(t.w1(), Some(9.0));
        assert_eq!(t.mids1(), &[3]);
        assert_eq!(t.w2(), Some(5.0));
        assert_eq!(sorted(t.mids2()), vec![1, 2]);
    }

    #[test]
    fn best_butterfly_weight_cases() {
        assert_eq!(TopTwoAngles::new().best_butterfly_weight(), None);
        assert_eq!(slots_of(&[(1, 5.0)]).best_butterfly_weight(), None);
        assert_eq!(
            slots_of(&[(1, 5.0), (2, 5.0)]).best_butterfly_weight(),
            Some(10.0)
        );
        assert_eq!(
            slots_of(&[(1, 5.0), (2, 3.0)]).best_butterfly_weight(),
            Some(8.0)
        );
        assert_eq!(
            slots_of(&[(1, 5.0), (2, 5.0), (3, 3.0)]).best_butterfly_weight(),
            Some(10.0)
        );
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut t = slots_of(&[(1, 5.0), (2, 5.0), (3, 3.0)]);
        t.clear();
        assert_eq!(t.w1(), None);
        assert_eq!(t.w2(), None);
        assert_eq!(t.best_butterfly_weight(), None);
        t.insert(9, 1.0);
        assert_eq!(t.w1(), Some(1.0));
    }

    #[test]
    fn matches_reference_on_random_sequences() {
        // Small deterministic pseudo-random exercise across permutations.
        let weights = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0];
        let mut angles: Vec<(u32, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u32, w))
            .collect();
        // Try several rotations as insertion orders.
        for rot in 0..angles.len() {
            angles.rotate_left(1);
            let t = slots_of(&angles);
            let (r1, r2) = reference(&angles);
            let (w1, m1) = r1.unwrap();
            assert_eq!(t.w1(), Some(w1), "rot={rot}");
            assert_eq!(sorted(t.mids1()), m1);
            let (w2, m2) = r2.unwrap();
            assert_eq!(t.w2(), Some(w2));
            assert_eq!(sorted(t.mids2()), m2);
        }
    }
}
