//! Deterministic (parallel) backbone butterfly listing.
//!
//! The listing phase — enumerating every butterfly of the backbone, or
//! building a full-backbone [`CandidateSet`] — used to be the last
//! single-threaded wall in the pipeline: the sampling phases have had
//! deterministic multi-threaded runners in [`crate::parallel`] since the
//! start, but `for_each_backbone_butterfly` walked all `O(|L|²)` left
//! pairs on one core.
//!
//! This module replaces that with a wedge-based kernel in the style of
//! BFC-VP [Wang et al., PVLDB 2019] / parallel butterfly counting
//! [Shi & Shun, 2020]:
//!
//! * **Wedge enumeration** — for a start vertex `u₁`, walk each right
//!   neighbor `v` and each of `v`'s left neighbors `u₂ > u₁`; bucketing
//!   the wedge middles per `u₂` yields every common-neighbor list in one
//!   pass, `O(Σ wedges)` instead of `O(|L|²)` pair probes.
//! * **Work-balanced shards** — start vertices are partitioned into
//!   contiguous shards whose *estimated* wedge work (the degree-profile
//!   cost model that BFC-VP's priority order is built from) is equal, so
//!   one hub vertex cannot serialize the run.
//! * **Deterministic merge** — each worker writes into a private buffer
//!   and buffers are concatenated in shard order. Because shards are
//!   contiguous start-vertex ranges, the merged stream is *exactly* the
//!   sequential canonical `(u₁, u₂)`-major order, independent of how the
//!   OS schedules workers.
//!
//! The ordering guarantee is not cosmetic: OLS keys the Karp-Luby
//! per-candidate RNG streams by candidate *index*, so a candidate set
//! whose indices depend on thread count would silently change results.
//! Everything here is byte-for-byte identical to the sequential build at
//! every thread count (property-tested in `tests/listing_proptests.rs`).

use crate::butterfly::Butterfly;
use crate::candidates::{Candidate, CandidateSet};
use bigraph::{Left, Right, UncertainBipartiteGraph};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shards handed out per worker: oversubscription lets fast workers
/// steal remaining shards when the work estimate is off.
const SHARDS_PER_THREAD: usize = 4;

/// Reusable per-worker buckets for one start vertex's wedge expansion.
///
/// `buckets[u₂]` collects the right middles common to the current start
/// and `u₂`; `touched` remembers which buckets are dirty so clearing is
/// `O(touched)` rather than `O(|L|)` per start vertex.
struct WedgeScratch {
    buckets: Vec<Vec<u32>>,
    touched: Vec<u32>,
}

impl WedgeScratch {
    fn new(num_left: usize) -> Self {
        WedgeScratch {
            buckets: vec![Vec::new(); num_left],
            touched: Vec::new(),
        }
    }
}

/// Streams every butterfly with smaller left vertex `a`, in canonical
/// order (`u₂` ascending, then `(v₁, v₂)` lexicographic) — the same
/// order the pairwise reference produces for this start vertex.
fn for_each_from_start(
    g: &UncertainBipartiteGraph,
    a: u32,
    scratch: &mut WedgeScratch,
    f: &mut impl FnMut(Butterfly),
) {
    for adj in g.left_adj(Left(a)) {
        let radj = g.right_adj(Right(adj.nbr));
        // Only wedges toward larger left ids: each butterfly is listed
        // exactly once, from its smaller left vertex.
        let from = radj.partition_point(|x| x.nbr <= a);
        for x in &radj[from..] {
            let bucket = &mut scratch.buckets[x.nbr as usize];
            if bucket.is_empty() {
                scratch.touched.push(x.nbr);
            }
            // Middles arrive ascending because `left_adj(a)` is id-sorted.
            bucket.push(adj.nbr);
        }
    }
    scratch.touched.sort_unstable();
    for &b in &scratch.touched {
        let common = &scratch.buckets[b as usize];
        for x in 0..common.len() {
            for &v2 in &common[(x + 1)..] {
                f(Butterfly::new(
                    Left(a),
                    Left(b),
                    Right(common[x]),
                    Right(v2),
                ));
            }
        }
    }
    for &b in &scratch.touched {
        scratch.buckets[b as usize].clear();
    }
    scratch.touched.clear();
}

/// Butterflies with smaller left vertex `a`, counted without
/// materialization: each bucket of `c` common middles holds `C(c, 2)`.
fn count_from_start(g: &UncertainBipartiteGraph, a: u32, scratch: &mut WedgeScratch) -> u64 {
    let mut n = 0u64;
    for adj in g.left_adj(Left(a)) {
        let radj = g.right_adj(Right(adj.nbr));
        let from = radj.partition_point(|x| x.nbr <= a);
        for x in &radj[from..] {
            let bucket = &mut scratch.buckets[x.nbr as usize];
            if bucket.is_empty() {
                scratch.touched.push(x.nbr);
            }
            bucket.push(adj.nbr);
        }
    }
    for &b in &scratch.touched {
        let c = scratch.buckets[b as usize].len() as u64;
        n += c * (c - 1) / 2;
        scratch.buckets[b as usize].clear();
    }
    scratch.touched.clear();
    n
}

/// Sequential wedge-kernel enumeration over all start vertices, in
/// canonical order. [`crate::for_each_backbone_butterfly`] delegates
/// here.
pub(crate) fn for_each_sequential(g: &UncertainBipartiteGraph, mut f: impl FnMut(Butterfly)) {
    let mut scratch = WedgeScratch::new(g.num_left());
    for a in 0..g.num_left() as u32 {
        for_each_from_start(g, a, &mut scratch, &mut f);
    }
}

/// Estimated listing work for start vertex `a`: the number of wedges it
/// expands (`Σ_{v ∈ N(a)} deg(v)`), plus one so degree-0 vertices still
/// carry weight and shards stay non-degenerate.
fn start_vertex_work(g: &UncertainBipartiteGraph, a: u32) -> u64 {
    1 + g
        .left_adj(Left(a))
        .iter()
        .map(|adj| g.right_degree(Right(adj.nbr)) as u64)
        .sum::<u64>()
}

/// Partitions the start vertices `0..|L|` into at most `parts`
/// contiguous ranges of approximately equal estimated wedge work (the
/// degree-based cost model behind BFC-VP's priority order).
///
/// The split is a pure function of the graph and `parts` — never of
/// scheduling — so shard-order merges are deterministic.
pub fn listing_shards(g: &UncertainBipartiteGraph, parts: usize) -> Vec<Range<u32>> {
    let nl = g.num_left() as u32;
    if nl == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, nl as usize) as u64;
    let total: u64 = (0..nl).map(|a| start_vertex_work(g, a)).sum();
    let target = total.div_ceil(parts);
    let mut shards = Vec::with_capacity(parts as usize);
    let mut start = 0u32;
    let mut acc = 0u64;
    for a in 0..nl {
        acc += start_vertex_work(g, a);
        // Cut when the shard reached its work target, unless the shards
        // left behind would outnumber the vertices left to place.
        let remaining_vertices = (nl - a - 1) as u64;
        let remaining_shards = parts - shards.len() as u64 - 1;
        if acc >= target && remaining_shards <= remaining_vertices {
            shards.push(start..a + 1);
            start = a + 1;
            acc = 0;
        }
    }
    if start < nl {
        shards.push(start..nl);
    }
    shards
}

/// Runs `work` over every shard on `threads` workers and returns the
/// per-shard results **in shard order**, regardless of which worker ran
/// which shard. Workers pull shards from a shared counter, so a
/// mis-estimated heavy shard only occupies one of them.
fn run_sharded<T: Send>(
    g: &UncertainBipartiteGraph,
    threads: usize,
    shards: &[Range<u32>],
    work: impl Fn(Range<u32>, &mut WedgeScratch) -> T + Sync,
) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let workers = threads.min(shards.len()).max(1);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, work) = (&next, &work);
                scope.spawn(move || {
                    let mut scratch = WedgeScratch::new(g.num_left());
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = shards.get(i) else { break };
                        out.push((i, work(shard.clone(), &mut scratch)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("listing worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// Parallel backbone butterfly enumeration: bit-identical (content *and*
/// order) to [`crate::enumerate_backbone_butterflies`] at every thread
/// count.
pub fn enumerate_backbone_butterflies_parallel(
    g: &UncertainBipartiteGraph,
    threads: usize,
) -> Vec<Butterfly> {
    let mut span = obs::span("listing.enumerate");
    span.field("threads", threads.max(1));
    let out = if threads.max(1) == 1 {
        let mut out = Vec::new();
        for_each_sequential(g, |b| out.push(b));
        out
    } else {
        let shards = listing_shards(g, threads * SHARDS_PER_THREAD);
        let buffers = run_sharded(g, threads, &shards, |shard, scratch| {
            let mut buf = Vec::new();
            for a in shard {
                for_each_from_start(g, a, scratch, &mut |b| buf.push(b));
            }
            buf
        });
        let mut out = Vec::with_capacity(buffers.iter().map(Vec::len).sum());
        for buf in buffers {
            out.extend(buf);
        }
        out
    };
    span.items(out.len() as u64);
    out
}

/// Parallel backbone butterfly count: equals
/// [`crate::count_backbone_butterflies`] at every thread count.
pub fn count_backbone_butterflies_parallel(g: &UncertainBipartiteGraph, threads: usize) -> u64 {
    if threads.max(1) == 1 {
        let mut scratch = WedgeScratch::new(g.num_left());
        return (0..g.num_left() as u32)
            .map(|a| count_from_start(g, a, &mut scratch))
            .sum();
    }
    let shards = listing_shards(g, threads * SHARDS_PER_THREAD);
    run_sharded(g, threads, &shards, |shard, scratch| {
        shard.map(|a| count_from_start(g, a, scratch)).sum::<u64>()
    })
    .into_iter()
    .sum()
}

/// Builds the [`CandidateSet`] of the **entire backbone** in parallel:
/// each worker lists its shard and precomputes candidate attributes
/// (edge ids, weight, existence probability); buffers merge in shard
/// order and the final weight sort uses the same total order as
/// [`CandidateSet::from_butterflies`], so candidate *indices* are
/// byte-identical to the sequential build at every thread count.
pub fn backbone_candidate_set(g: &UncertainBipartiteGraph, threads: usize) -> CandidateSet {
    let mut span = obs::span("listing.candidates");
    let shards = listing_shards(g, threads.max(1) * SHARDS_PER_THREAD);
    let buffers = run_sharded(g, threads.max(1), &shards, |shard, scratch| {
        let mut buf: Vec<Candidate> = Vec::new();
        for a in shard {
            for_each_from_start(g, a, scratch, &mut |b| {
                let edges = b.edges(g).expect("listed butterfly is in the backbone");
                buf.push(Candidate {
                    butterfly: b,
                    weight: b.weight(g).expect("edges exist"),
                    edges,
                    existence_prob: b.existence_prob(g).expect("edges exist"),
                });
            });
        }
        buf
    });
    let mut candidates = Vec::with_capacity(buffers.iter().map(Vec::len).sum());
    for buf in buffers {
        candidates.extend(buf);
    }
    // Listing emits each butterfly exactly once: no dedup pass needed.
    span.items(candidates.len() as u64);
    span.field("threads", threads.max(1));
    CandidateSet::from_unique_candidates(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::enumerate_backbone_butterflies;
    use bigraph::GraphBuilder;

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn k33_distinct_weights() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                b.add_edge(Left(u), Right(v), (3 * u + v) as f64, 0.5)
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn shards_partition_all_start_vertices() {
        let g = k33_distinct_weights();
        for parts in [1, 2, 3, 7, 100] {
            let shards = listing_shards(&g, parts);
            assert!(shards.len() <= parts.min(g.num_left()));
            let mut expect = 0u32;
            for s in &shards {
                assert_eq!(s.start, expect, "parts={parts}");
                assert!(!s.is_empty());
                expect = s.end;
            }
            assert_eq!(expect, g.num_left() as u32);
        }
    }

    #[test]
    fn empty_graph_has_no_shards_or_butterflies() {
        let g = GraphBuilder::new().build().unwrap();
        assert!(listing_shards(&g, 4).is_empty());
        assert!(enumerate_backbone_butterflies_parallel(&g, 4).is_empty());
        assert_eq!(count_backbone_butterflies_parallel(&g, 4), 0);
        assert!(backbone_candidate_set(&g, 4).is_empty());
    }

    #[test]
    fn parallel_enumeration_matches_sequential_order() {
        for g in [fig1(), k33_distinct_weights()] {
            let seq = enumerate_backbone_butterflies(&g);
            for threads in [1, 2, 3, 8] {
                assert_eq!(
                    enumerate_backbone_butterflies_parallel(&g, threads),
                    seq,
                    "threads={threads}"
                );
                assert_eq!(
                    count_backbone_butterflies_parallel(&g, threads),
                    seq.len() as u64
                );
            }
        }
    }

    #[test]
    fn parallel_candidate_set_is_byte_identical() {
        let g = k33_distinct_weights();
        let seq = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        for threads in [1, 2, 3, 8] {
            let par = backbone_candidate_set(&g, threads);
            assert_eq!(par.len(), seq.len());
            for i in 0..seq.len() {
                let (a, b) = (seq.get(i), par.get(i));
                assert_eq!(a.butterfly, b.butterfly, "index {i} threads {threads}");
                assert_eq!(a.weight.to_bits(), b.weight.to_bits());
                assert_eq!(a.edges, b.edges);
                assert_eq!(a.existence_prob.to_bits(), b.existence_prob.to_bits());
                assert_eq!(seq.larger_count(i), par.larger_count(i));
            }
        }
    }

    #[test]
    fn pairwise_reference_agrees_with_wedge_kernel() {
        // The original O(|L|²) pair-merge enumeration, kept as a test
        // oracle for the wedge kernel's order guarantee.
        let g = k33_distinct_weights();
        let mut reference = Vec::new();
        let nl = g.num_left() as u32;
        for a in 0..nl {
            for b in (a + 1)..nl {
                let (la, lb) = (g.left_adj(Left(a)), g.left_adj(Left(b)));
                let mut common: Vec<u32> = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < la.len() && j < lb.len() {
                    match la[i].nbr.cmp(&lb[j].nbr) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            common.push(la[i].nbr);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                for x in 0..common.len() {
                    for &v2 in &common[(x + 1)..] {
                        reference.push(Butterfly::new(
                            Left(a),
                            Left(b),
                            Right(common[x]),
                            Right(v2),
                        ));
                    }
                }
            }
        }
        assert_eq!(enumerate_backbone_butterflies(&g), reference);
    }
}
