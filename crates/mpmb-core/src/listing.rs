//! Deterministic (parallel) backbone butterfly listing.
//!
//! The listing phase — enumerating every butterfly of the backbone, or
//! building a full-backbone [`CandidateSet`] — used to be the last
//! single-threaded wall in the pipeline: the sampling phases have had
//! deterministic multi-threaded runners in [`crate::parallel`] since the
//! start, but `for_each_backbone_butterfly` walked all `O(|L|²)` left
//! pairs on one core.
//!
//! This module replaces that with a wedge-based kernel in the style of
//! BFC-VP [Wang et al., PVLDB 2019] / parallel butterfly counting
//! [Shi & Shun, 2020]:
//!
//! * **Wedge enumeration** — for a start vertex `u₁`, walk each right
//!   neighbor `v` and each of `v`'s left neighbors `u₂ > u₁`; bucketing
//!   the wedge middles per `u₂` yields every common-neighbor list in one
//!   pass, `O(Σ wedges)` instead of `O(|L|²)` pair probes.
//! * **Work-balanced shards** — start vertices are partitioned into
//!   contiguous shards whose *estimated* wedge work (the degree-profile
//!   cost model that BFC-VP's priority order is built from) is equal, so
//!   one hub vertex cannot serialize the run.
//! * **Deterministic merge** — each worker writes into a private buffer
//!   and buffers are concatenated in shard order. Because shards are
//!   contiguous start-vertex ranges, the merged stream is *exactly* the
//!   sequential canonical `(u₁, u₂)`-major order, independent of how the
//!   OS schedules workers.
//!
//! The ordering guarantee is not cosmetic: OLS keys the Karp-Luby
//! per-candidate RNG streams by candidate *index*, so a candidate set
//! whose indices depend on thread count would silently change results.
//! Everything here is byte-for-byte identical to the sequential build at
//! every thread count (property-tested in `tests/listing_proptests.rs`).

use crate::butterfly::Butterfly;
use crate::candidates::{Candidate, CandidateSet};
use bigraph::{EdgeId, Left, Right, UncertainBipartiteGraph};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shards handed out per worker: oversubscription lets fast workers
/// steal remaining shards when the work estimate is off.
const SHARDS_PER_THREAD: usize = 4;

/// Reusable per-worker scratch for one start vertex's wedge expansion:
/// a flat `u32` bucket arena over **degree-ranked** left ids.
///
/// Buckets are indexed by the graph's degree-descending left rank rather
/// than the raw vertex id (`bigraph::degree_desc_ranks`): high-degree
/// vertices close the most wedges, so the counters that are hit on
/// nearly every wedge all live at the head of `counts`/`base` and stay
/// cache-resident — the BFC-VP / Shi–Shun wedge-aggregation layout. The
/// relabeling is pure index bookkeeping: emission translates ranks back
/// through `left_by_rank` and sorts by *original* id, so the canonical
/// `(u₁, u₂)`-major butterfly stream is untouched.
///
/// Middles land in one flat `arena` (bases from a prefix sum over the
/// touched ranks) instead of per-vertex `Vec<Vec<u32>>`, killing the
/// per-start allocation and pointer chase of the old layout; `touched`
/// keeps clearing `O(touched ranks)`.
///
/// Each arena entry also carries the ids of the two wedge edges
/// `(a, mid)` and `(b, mid)` — both are in hand for free while walking
/// the adjacency lists. A butterfly's four backbone edges are exactly
/// the edges of its two wedges, so emission can hand every butterfly its
/// canonical edge ids without a single [`find_edge`] binary search —
/// candidate-set construction (edge ids, weight, existence probability)
/// becomes pure array reads. On butterfly-dense graphs those lookups,
/// not the bucketing, dominate listing time.
///
/// [`find_edge`]: UncertainBipartiteGraph::find_edge
struct WedgeScratch {
    /// Per-rank middle count; doubles as the placement cursor in pass 2
    /// (it ends back at the bucket length, which emission reads).
    counts: Vec<u32>,
    /// Per-rank start offset into `arena`.
    base: Vec<u32>,
    /// Flat middle storage; bucket `r` is `arena[base[r]..][..counts[r]]`.
    arena: Vec<WedgeMid>,
    /// Ranks with non-empty buckets, in first-touch order.
    touched: Vec<u32>,
    /// Blocked wedge iteration: per middle `v` of the start vertex, the
    /// `(v, partition_point, edge(a, v))` triple caching where its `> a`
    /// tail begins, so the second (placement) pass replays whole
    /// neighbor blocks without re-running the binary search.
    tails: Vec<(u32, u32, EdgeId)>,
}

/// One bucketed wedge middle: the right vertex plus the ids of the two
/// edges forming the wedge `a – v – b` (`a` the start vertex owning the
/// scratch, `b` the bucket's far endpoint).
#[derive(Clone, Copy)]
struct WedgeMid {
    /// The middle (right) vertex id.
    v: u32,
    /// Edge id of `(a, v)`.
    ea: EdgeId,
    /// Edge id of `(b, v)`.
    eb: EdgeId,
}

impl WedgeScratch {
    fn new(num_left: usize) -> Self {
        WedgeScratch {
            counts: vec![0; num_left],
            base: vec![0; num_left],
            arena: Vec::new(),
            touched: Vec::new(),
            tails: Vec::new(),
        }
    }

    /// Pass 1: count middles per rank over the wedges of start vertex
    /// `a`, caching each middle's tail start. Returns the total wedge
    /// count (the arena size needed).
    fn count_pass(&mut self, g: &UncertainBipartiteGraph, a: u32) -> usize {
        let ranks = g.left_ranks();
        let mut total = 0usize;
        for adj in g.left_adj(Left(a)) {
            let radj = g.right_adj(Right(adj.nbr));
            // Only wedges toward larger left ids: each butterfly is
            // listed exactly once, from its smaller left vertex.
            let from = radj.partition_point(|x| x.nbr <= a);
            let tail = &radj[from..];
            if tail.is_empty() {
                continue;
            }
            total += tail.len();
            self.tails.push((adj.nbr, from as u32, adj.edge));
            for x in tail {
                let r = ranks[x.nbr as usize] as usize;
                if self.counts[r] == 0 {
                    self.touched.push(r as u32);
                }
                self.counts[r] += 1;
            }
        }
        total
    }

    /// Resets the touched counters (and the tail cache) to pristine.
    fn clear(&mut self) {
        for &r in &self.touched {
            self.counts[r as usize] = 0;
        }
        self.touched.clear();
        self.tails.clear();
    }
}

/// Streams every butterfly with smaller left vertex `a`, in canonical
/// order (`u₂` ascending, then `(v₁, v₂)` lexicographic) — the same
/// order the pairwise reference produces for this start vertex. Each
/// butterfly arrives with its four backbone edge ids in canonical
/// `[(u₁,v₁), (u₁,v₂), (u₂,v₁), (u₂,v₂)]` order, assembled from the
/// wedge edges cached in the arena (no adjacency lookups).
fn for_each_from_start(
    g: &UncertainBipartiteGraph,
    a: u32,
    scratch: &mut WedgeScratch,
    f: &mut impl FnMut(Butterfly, [EdgeId; 4]),
) {
    let total = scratch.count_pass(g, a);
    if total == 0 {
        scratch.clear();
        return;
    }
    if scratch.arena.len() < total {
        let fill = WedgeMid {
            v: 0,
            ea: EdgeId(0),
            eb: EdgeId(0),
        };
        scratch.arena.resize(total, fill);
    }
    // Assign contiguous arena regions (first-touch order is fine — the
    // regions only need to be disjoint), resetting counts to act as
    // placement cursors.
    let mut acc = 0u32;
    for &r in &scratch.touched {
        scratch.base[r as usize] = acc;
        acc += scratch.counts[r as usize];
        scratch.counts[r as usize] = 0;
    }
    // Pass 2: replay the cached neighbor blocks, placing each middle in
    // its rank's region. Middles arrive ascending per bucket because
    // `left_adj(a)` is id-sorted — same as the old per-bucket pushes.
    let ranks = g.left_ranks();
    for &(mid, from, ea) in &scratch.tails {
        let radj = g.right_adj(Right(mid));
        for x in &radj[from as usize..] {
            let r = ranks[x.nbr as usize] as usize;
            scratch.arena[(scratch.base[r] + scratch.counts[r]) as usize] = WedgeMid {
                v: mid,
                ea,
                eb: x.edge,
            };
            scratch.counts[r] += 1;
        }
    }
    // Emit in canonical order: ranks sorted by ORIGINAL id, so the
    // relabeling is invisible in the output stream.
    let by_rank = g.left_by_rank();
    scratch
        .touched
        .sort_unstable_by_key(|&r| by_rank[r as usize]);
    for &r in &scratch.touched {
        let b = by_rank[r as usize];
        let start = scratch.base[r as usize] as usize;
        let len = scratch.counts[r as usize] as usize;
        let common = &scratch.arena[start..start + len];
        emit_pairs(a, b, common, f);
    }
    scratch.clear();
}

/// The butterfly `(a, b, v₁, v₂)` plus its canonical edge-id array,
/// assembled from the two wedge entries. Kernel invariants `a < b` and
/// `v₁ < v₂` mean the tuple is already canonical, so the wedge edges map
/// onto [`Butterfly::edges`]'s `[(u₁,v₁), (u₁,v₂), (u₂,v₁), (u₂,v₂)]`
/// order directly.
#[inline]
fn assemble(a: u32, b: u32, w1: WedgeMid, w2: WedgeMid) -> (Butterfly, [EdgeId; 4]) {
    (
        Butterfly::new(Left(a), Left(b), Right(w1.v), Right(w2.v)),
        [w1.ea, w2.ea, w1.eb, w2.eb],
    )
}

/// Emits every middle pair of one bucket as a butterfly, in `(v₁, v₂)`
/// lexicographic order.
#[cfg(not(feature = "hotpath-unroll"))]
#[inline]
fn emit_pairs(a: u32, b: u32, common: &[WedgeMid], f: &mut impl FnMut(Butterfly, [EdgeId; 4])) {
    for x in 0..common.len() {
        for &w2 in &common[(x + 1)..] {
            let (bf, edges) = assemble(a, b, common[x], w2);
            f(bf, edges);
        }
    }
}

/// Unrolled variant of [`emit_pairs`]: the inner loop walks the tail two
/// middles at a time. Emission order — and therefore the canonical
/// stream — is identical; the existing bit-identity proptests gate it.
#[cfg(feature = "hotpath-unroll")]
#[inline]
fn emit_pairs(a: u32, b: u32, common: &[WedgeMid], f: &mut impl FnMut(Butterfly, [EdgeId; 4])) {
    for x in 0..common.len() {
        let w1 = common[x];
        let tail = &common[(x + 1)..];
        let mut chunks = tail.chunks_exact(2);
        for pair in &mut chunks {
            let (bf, edges) = assemble(a, b, w1, pair[0]);
            f(bf, edges);
            let (bf, edges) = assemble(a, b, w1, pair[1]);
            f(bf, edges);
        }
        for &w2 in chunks.remainder() {
            let (bf, edges) = assemble(a, b, w1, w2);
            f(bf, edges);
        }
    }
}

/// Butterflies with smaller left vertex `a`, counted without
/// materialization: each bucket of `c` common middles holds `C(c, 2)`.
/// Only needs the counting pass — no arena placement, no ordering.
fn count_from_start(g: &UncertainBipartiteGraph, a: u32, scratch: &mut WedgeScratch) -> u64 {
    scratch.count_pass(g, a);
    let mut n = 0u64;
    for &r in &scratch.touched {
        let c = scratch.counts[r as usize] as u64;
        n += c * (c - 1) / 2;
    }
    scratch.clear();
    n
}

/// Sequential wedge-kernel enumeration over all start vertices, in
/// canonical order. [`crate::for_each_backbone_butterfly`] delegates
/// here.
pub(crate) fn for_each_sequential(g: &UncertainBipartiteGraph, mut f: impl FnMut(Butterfly)) {
    let mut scratch = WedgeScratch::new(g.num_left());
    for a in 0..g.num_left() as u32 {
        for_each_from_start(g, a, &mut scratch, &mut |b, _| f(b));
    }
}

/// Estimated listing work for start vertex `a`: the number of wedges it
/// expands (`Σ_{v ∈ N(a)} deg(v)`), plus one so degree-0 vertices still
/// carry weight and shards stay non-degenerate.
fn start_vertex_work(g: &UncertainBipartiteGraph, a: u32) -> u64 {
    1 + g
        .left_adj(Left(a))
        .iter()
        .map(|adj| g.right_degree(Right(adj.nbr)) as u64)
        .sum::<u64>()
}

/// Partitions the start vertices `0..|L|` into at most `parts`
/// contiguous ranges of approximately equal estimated wedge work (the
/// degree-based cost model behind BFC-VP's priority order).
///
/// The split is a pure function of the graph and `parts` — never of
/// scheduling — so shard-order merges are deterministic.
pub fn listing_shards(g: &UncertainBipartiteGraph, parts: usize) -> Vec<Range<u32>> {
    let nl = g.num_left() as u32;
    if nl == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, nl as usize) as u64;
    let total: u64 = (0..nl).map(|a| start_vertex_work(g, a)).sum();
    let target = total.div_ceil(parts);
    let mut shards = Vec::with_capacity(parts as usize);
    let mut start = 0u32;
    let mut acc = 0u64;
    for a in 0..nl {
        acc += start_vertex_work(g, a);
        // Cut when the shard reached its work target, unless the shards
        // left behind would outnumber the vertices left to place.
        let remaining_vertices = (nl - a - 1) as u64;
        let remaining_shards = parts - shards.len() as u64 - 1;
        if acc >= target && remaining_shards <= remaining_vertices {
            shards.push(start..a + 1);
            start = a + 1;
            acc = 0;
        }
    }
    if start < nl {
        shards.push(start..nl);
    }
    shards
}

/// Runs `work` over every shard on `threads` workers and returns the
/// per-shard results **in shard order**, regardless of which worker ran
/// which shard. Workers pull shards from a shared counter, so a
/// mis-estimated heavy shard only occupies one of them.
fn run_sharded<T: Send>(
    g: &UncertainBipartiteGraph,
    threads: usize,
    shards: &[Range<u32>],
    work: impl Fn(Range<u32>, &mut WedgeScratch) -> T + Sync,
) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let workers = threads.min(shards.len()).max(1);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, work) = (&next, &work);
                scope.spawn(move || {
                    let mut scratch = WedgeScratch::new(g.num_left());
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = shards.get(i) else { break };
                        out.push((i, work(shard.clone(), &mut scratch)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("listing worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// Parallel backbone butterfly enumeration: bit-identical (content *and*
/// order) to [`crate::enumerate_backbone_butterflies`] at every thread
/// count.
pub fn enumerate_backbone_butterflies_parallel(
    g: &UncertainBipartiteGraph,
    threads: usize,
) -> Vec<Butterfly> {
    let mut span = obs::span("listing.enumerate");
    span.field("threads", threads.max(1));
    let out = if threads.max(1) == 1 {
        let mut out = Vec::new();
        for_each_sequential(g, |b| out.push(b));
        out
    } else {
        let shards = listing_shards(g, threads * SHARDS_PER_THREAD);
        let buffers = run_sharded(g, threads, &shards, |shard, scratch| {
            let mut buf = Vec::new();
            for a in shard {
                for_each_from_start(g, a, scratch, &mut |b, _| buf.push(b));
            }
            buf
        });
        let mut out = Vec::with_capacity(buffers.iter().map(Vec::len).sum());
        for buf in buffers {
            out.extend(buf);
        }
        out
    };
    span.items(out.len() as u64);
    out
}

/// Parallel backbone butterfly count: equals
/// [`crate::count_backbone_butterflies`] at every thread count.
pub fn count_backbone_butterflies_parallel(g: &UncertainBipartiteGraph, threads: usize) -> u64 {
    if threads.max(1) == 1 {
        let mut scratch = WedgeScratch::new(g.num_left());
        return (0..g.num_left() as u32)
            .map(|a| count_from_start(g, a, &mut scratch))
            .sum();
    }
    let shards = listing_shards(g, threads * SHARDS_PER_THREAD);
    run_sharded(g, threads, &shards, |shard, scratch| {
        shard.map(|a| count_from_start(g, a, scratch)).sum::<u64>()
    })
    .into_iter()
    .sum()
}

/// Builds the [`CandidateSet`] of the **entire backbone** in parallel:
/// each worker lists its shard and precomputes candidate attributes
/// (edge ids, weight, existence probability); buffers merge in shard
/// order and the final weight sort uses the same total order as
/// [`CandidateSet::from_butterflies`], so candidate *indices* are
/// byte-identical to the sequential build at every thread count.
pub fn backbone_candidate_set(g: &UncertainBipartiteGraph, threads: usize) -> CandidateSet {
    let mut span = obs::span("listing.candidates");
    let shards = listing_shards(g, threads.max(1) * SHARDS_PER_THREAD);
    let buffers = run_sharded(g, threads.max(1), &shards, |shard, scratch| {
        let mut buf: Vec<Candidate> = Vec::new();
        for a in shard {
            for_each_from_start(g, a, scratch, &mut |b, edges| {
                // The kernel hands over the canonical edge ids straight
                // from the wedge cache; weight and probability fold over
                // them in the same `[(u₁,v₁), (u₁,v₂), (u₂,v₁), (u₂,v₂)]`
                // order as `Butterfly::weight` / `existence_prob`, so
                // every float is accumulated in the exact sequence the
                // lookup-based build used — bit-identical output.
                debug_assert_eq!(Some(edges), b.edges(g));
                let [e0, e1, e2, e3] = edges;
                buf.push(Candidate {
                    butterfly: b,
                    weight: g.weight(e0) + g.weight(e1) + g.weight(e2) + g.weight(e3),
                    edges,
                    existence_prob: g.prob(e0) * g.prob(e1) * g.prob(e2) * g.prob(e3),
                });
            });
        }
        buf
    });
    let mut candidates = Vec::with_capacity(buffers.iter().map(Vec::len).sum());
    for buf in buffers {
        candidates.extend(buf);
    }
    // Listing emits each butterfly exactly once: no dedup pass needed.
    span.items(candidates.len() as u64);
    span.field("threads", threads.max(1));
    CandidateSet::from_unique_candidates(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::enumerate_backbone_butterflies;
    use bigraph::GraphBuilder;

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn k33_distinct_weights() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                b.add_edge(Left(u), Right(v), (3 * u + v) as f64, 0.5)
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn shards_partition_all_start_vertices() {
        let g = k33_distinct_weights();
        for parts in [1, 2, 3, 7, 100] {
            let shards = listing_shards(&g, parts);
            assert!(shards.len() <= parts.min(g.num_left()));
            let mut expect = 0u32;
            for s in &shards {
                assert_eq!(s.start, expect, "parts={parts}");
                assert!(!s.is_empty());
                expect = s.end;
            }
            assert_eq!(expect, g.num_left() as u32);
        }
    }

    #[test]
    fn empty_graph_has_no_shards_or_butterflies() {
        let g = GraphBuilder::new().build().unwrap();
        assert!(listing_shards(&g, 4).is_empty());
        assert!(enumerate_backbone_butterflies_parallel(&g, 4).is_empty());
        assert_eq!(count_backbone_butterflies_parallel(&g, 4), 0);
        assert!(backbone_candidate_set(&g, 4).is_empty());
    }

    #[test]
    fn parallel_enumeration_matches_sequential_order() {
        for g in [fig1(), k33_distinct_weights()] {
            let seq = enumerate_backbone_butterflies(&g);
            for threads in [1, 2, 3, 8] {
                assert_eq!(
                    enumerate_backbone_butterflies_parallel(&g, threads),
                    seq,
                    "threads={threads}"
                );
                assert_eq!(
                    count_backbone_butterflies_parallel(&g, threads),
                    seq.len() as u64
                );
            }
        }
    }

    #[test]
    fn parallel_candidate_set_is_byte_identical() {
        let g = k33_distinct_weights();
        let seq = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        for threads in [1, 2, 3, 8] {
            let par = backbone_candidate_set(&g, threads);
            assert_eq!(par.len(), seq.len());
            for i in 0..seq.len() {
                let (a, b) = (seq.get(i), par.get(i));
                assert_eq!(a.butterfly, b.butterfly, "index {i} threads {threads}");
                assert_eq!(a.weight.to_bits(), b.weight.to_bits());
                assert_eq!(a.edges, b.edges);
                assert_eq!(a.existence_prob.to_bits(), b.existence_prob.to_bits());
                assert_eq!(seq.larger_count(i), par.larger_count(i));
            }
        }
    }

    #[test]
    fn pairwise_reference_agrees_with_wedge_kernel() {
        // The original O(|L|²) pair-merge enumeration, kept as a test
        // oracle for the wedge kernel's order guarantee.
        let g = k33_distinct_weights();
        let mut reference = Vec::new();
        let nl = g.num_left() as u32;
        for a in 0..nl {
            for b in (a + 1)..nl {
                let (la, lb) = (g.left_adj(Left(a)), g.left_adj(Left(b)));
                let mut common: Vec<u32> = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < la.len() && j < lb.len() {
                    match la[i].nbr.cmp(&lb[j].nbr) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            common.push(la[i].nbr);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                for x in 0..common.len() {
                    for &v2 in &common[(x + 1)..] {
                        reference.push(Butterfly::new(
                            Left(a),
                            Left(b),
                            Right(common[x]),
                            Right(v2),
                        ));
                    }
                }
            }
        }
        assert_eq!(enumerate_backbone_butterflies(&g), reference);
    }
}
