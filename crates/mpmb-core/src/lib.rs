#![warn(missing_docs)]

//! Most Probable Maximum Weighted Butterfly (MPMB) search.
//!
//! From-scratch implementation of the algorithms in *"Most Probable
//! Maximum Weighted Butterfly Search"* (ICDE 2025):
//!
//! | Paper | Here |
//! |---|---|
//! | Algorithm 1 (MC-VP baseline) | [`McVp`] |
//! | Algorithm 2 (Ordering Sampling) | [`OrderingSampling`] |
//! | Algorithm 3 (Ordering-Listing Sampling) | [`OrderingListingSampling`] |
//! | Algorithm 4 (Karp-Luby estimator) | [`estimators::karp_luby`] |
//! | Algorithm 5 (optimized estimator) | [`estimators::optimized`] |
//! | Theorem IV.1 / Lemma VI.4 / Eq. 8–9 | [`bounds`] |
//! | Lemma III.1 reduction | [`hardness`] |
//! | Exact `P(B)` ground truth | [`exact`] |
//! | §VII top-k MPMB | [`Distribution::top_k`] |
//!
//! All solvers are deterministic given their seed, including under the
//! multi-threaded [`engine::Executor`] (which splits trial budgets with
//! the canonical [`chunk_ranges`] partition).

pub mod adaptive;
pub mod angle;
pub mod bounds;
pub mod butterfly;
pub mod candidates;
pub mod checkpoint;
pub mod counting;
pub mod distribution;
pub mod engine;
pub mod ensemble;
pub mod estimators;
pub mod exact;
pub mod hardness;
pub mod listing;
pub mod mcvp;
pub mod observer;
pub mod ols;
pub mod os;
pub mod parallel;
pub mod query;
pub mod threshold;
pub mod topk;
pub mod validation;

pub use adaptive::{fast_escalation_needed, run_os_adaptive, AdaptiveConfig, AdaptiveResult};
pub use angle::TopTwoAngles;
pub use butterfly::{
    count_backbone_butterflies, enumerate_backbone_butterflies, for_each_backbone_butterfly,
    max_butterflies_in_world, Butterfly,
};
pub use candidates::{Candidate, CandidateSet};
pub use checkpoint::{decode_exact, encode_to_vec, Checkpoint};
pub use counting::CountTrials;
pub use counting::{
    count_distribution_from_histogram, exact_count_variance, sample_count_distribution,
    sample_count_distribution_parallel, CountDistribution, TooManyButterflies,
};
pub use distribution::{Distribution, Tally};
pub use engine::{AbsorbError, Cancel, Executor, Partial, TrialEngine, CHECK_EVERY};
pub use ensemble::{aggregate, run_os_ensemble, EnsembleEntry, EnsembleReport};
pub use estimators::exact_prefix::estimate_exact_prefix;
pub use estimators::karp_luby::{
    estimate_karp_luby, KarpLubyTrials, KlCandidate, KlReport, KlTrialPolicy,
};
pub use estimators::optimized::{
    estimate_optimized, estimate_optimized_with_observer, OptimizedTrials,
};
pub use estimators::sublinear::{
    estimate_fast, finalize_rows, FastEstimate, FastSample, SublinearConfig, SublinearTrials,
};
pub use exact::{exact_distribution, exact_mpmb, exact_prob, ExactConfig, ExactError};
pub use hardness::{Monotone2Sat, Reduction};
pub use listing::{
    backbone_candidate_set, count_backbone_butterflies_parallel,
    enumerate_backbone_butterflies_parallel, listing_shards,
};
pub use mcvp::{McVp, McVpConfig, McVpTrials};
pub use observer::{ConvergenceTracker, MultiObserver, NoopObserver, TrialObserver};
pub use ols::{EstimatorKind, OlsConfig, OlsResult, OrderingListingSampling, PrepareTrials};
pub use os::{
    os_smb_of_world, EdgeOracle, OrderingSampling, OsConfig, OsEngine, OsTrials, SamplingOracle,
    StreamingOracle, WorldOracle,
};
pub use parallel::chunk_ranges;
pub use query::{estimate_prob_of, QueryResult, QueryTrials};
pub use threshold::{max_weight_distribution, MaxWeightDistribution};
pub use topk::{shared_vertices, top_k_diverse};
pub use validation::{validate_accuracy, AccuracyReport, Reference};
