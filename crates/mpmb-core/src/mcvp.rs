//! The baseline: Monte-Carlo with Vertex Priority (Algorithm 1).
//!
//! Each trial samples a complete possible world, enumerates *every*
//! butterfly in it with BFC-VP-style vertex-priority wedge generation, and
//! tallies the maximum-weighted set `S_MB`. This is deliberately the
//! paper's naive baseline: no weight ordering, no angle pruning — all
//! angles are materialized and all butterflies created (Lemma IV.1 costs).

use crate::butterfly::Butterfly;
use crate::distribution::{Distribution, Tally};
use crate::engine::{Cancel, Executor, TrialEngine};
use crate::observer::{NoopObserver, TrialObserver};
use bigraph::fx::FxHashMap;
use bigraph::{
    trial_rng, Left, PossibleWorld, Right, UncertainBipartiteGraph, Vertex, VertexPriority, Weight,
    WorldSampler,
};

/// Configuration for [`McVp`].
#[derive(Clone, Copy, Debug)]
pub struct McVpConfig {
    /// Number of Monte-Carlo trials `N_mc` (paper default `2·10⁴`).
    pub trials: u64,
    /// Base RNG seed; trial `t` uses the derived stream `(seed, t)`.
    pub seed: u64,
}

impl Default for McVpConfig {
    fn default() -> Self {
        McVpConfig {
            trials: 20_000,
            seed: 0x5EED,
        }
    }
}

/// Monte-Carlo with Vertex Priority solver.
#[derive(Clone, Copy, Debug)]
pub struct McVp {
    cfg: McVpConfig,
}

impl McVp {
    /// Creates a solver with the given configuration.
    pub fn new(cfg: McVpConfig) -> Self {
        McVp { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &McVpConfig {
        &self.cfg
    }

    /// Runs `N_mc` trials and returns the estimated distribution.
    pub fn run(&self, g: &UncertainBipartiteGraph) -> Distribution {
        self.run_with_observer(g, &mut NoopObserver)
    }

    /// Runs with a per-trial observer (see [`TrialObserver`]).
    pub fn run_with_observer(
        &self,
        g: &UncertainBipartiteGraph,
        observer: &mut dyn TrialObserver,
    ) -> Distribution {
        assert!(self.cfg.trials > 0, "trials must be positive");
        Executor::new(1)
            .run_with_observer(
                &McVpTrials::new(g, &self.cfg),
                self.cfg.trials,
                &Cancel::never(),
                observer,
            )
            .acc
            .into_distribution()
    }
}

/// Algorithm 1's per-trial body as a [`TrialEngine`]: sample a world,
/// list its `S_MB` with vertex-priority wedge generation, tally it.
pub struct McVpTrials<'g> {
    g: &'g UncertainBipartiteGraph,
    priority: VertexPriority,
    seed: u64,
}

impl<'g> McVpTrials<'g> {
    /// Builds the engine (precomputes the vertex priority once).
    pub fn new(g: &'g UncertainBipartiteGraph, cfg: &McVpConfig) -> Self {
        McVpTrials {
            g,
            priority: VertexPriority::from_degrees(g),
            seed: cfg.seed,
        }
    }
}

impl TrialEngine for McVpTrials<'_> {
    type Acc = Tally;
    type Scratch = (PossibleWorld, Vec<Butterfly>);

    fn new_acc(&self) -> Tally {
        Tally::new()
    }

    fn new_scratch(&self) -> Self::Scratch {
        (PossibleWorld::empty(self.g.num_edges()), Vec::new())
    }

    fn trial(
        &self,
        t: u64,
        (world, smb): &mut Self::Scratch,
        tally: &mut Tally,
        observer: &mut dyn TrialObserver,
    ) {
        let mut rng = trial_rng(self.seed, t);
        WorldSampler::sample_into(self.g, world, &mut rng);
        smb_of_world(self.g, &self.priority, world, smb);
        observer.observe(t, smb);
        tally.record_trial(smb.iter());
    }

    fn merge(&self, into: &mut Tally, from: Tally) {
        into.merge(from);
    }

    fn phase(&self) -> &'static str {
        "mcvp.sample"
    }
}

/// Computes `S_MB(W)` of a fixed possible world with vertex-priority wedge
/// generation (the per-trial body of Algorithm 1, lines 5–17). Exposed so
/// tests can cross-validate it against brute force and against Ordering
/// Sampling on identical worlds. `smb` is an out-parameter for buffer
/// reuse across trials.
pub fn smb_of_world(
    g: &UncertainBipartiteGraph,
    priority: &VertexPriority,
    world: &PossibleWorld,
    smb: &mut Vec<Butterfly>,
) -> Weight {
    smb.clear();
    let mut best = f64::NEG_INFINITY;
    // Angle buckets for the current start vertex: endpoint -> (mid, w).
    let mut buckets: FxHashMap<u32, Vec<(u32, Weight)>> = FxHashMap::default();

    // Closure-free double dispatch over the two sides keeps the hot loop
    // monomorphic; the two passes are symmetric.
    for start_left in 0..g.num_left() as u32 {
        let u_i = Left(start_left);
        let rank_i = priority.rank(Vertex::L(u_i));
        buckets.clear();
        for (m, e1) in g.left_neighbors(u_i) {
            if !world.contains(e1) || priority.rank(Vertex::R(m)) >= rank_i {
                continue;
            }
            let w1 = g.weight(e1);
            for (k, e2) in g.right_neighbors(m) {
                if k == u_i || !world.contains(e2) || priority.rank(Vertex::L(k)) >= rank_i {
                    continue;
                }
                buckets
                    .entry(k.0)
                    .or_default()
                    .push((m.0, w1 + g.weight(e2)));
            }
        }
        flush_buckets(&mut buckets, |k, mids, wsum| {
            let b = Butterfly::new(u_i, Left(k), Right(mids.0), Right(mids.1));
            update_smb(&mut best, smb, b, wsum);
        });
    }
    for start_right in 0..g.num_right() as u32 {
        let v_i = Right(start_right);
        let rank_i = priority.rank(Vertex::R(v_i));
        buckets.clear();
        for (m, e1) in g.right_neighbors(v_i) {
            if !world.contains(e1) || priority.rank(Vertex::L(m)) >= rank_i {
                continue;
            }
            let w1 = g.weight(e1);
            for (k, e2) in g.left_neighbors(m) {
                if k == v_i || !world.contains(e2) || priority.rank(Vertex::R(k)) >= rank_i {
                    continue;
                }
                buckets
                    .entry(k.0)
                    .or_default()
                    .push((m.0, w1 + g.weight(e2)));
            }
        }
        flush_buckets(&mut buckets, |k, mids, wsum| {
            let b = Butterfly::new(Left(mids.0), Left(mids.1), v_i, Right(k));
            update_smb(&mut best, smb, b, wsum);
        });
    }
    if smb.is_empty() {
        0.0
    } else {
        best
    }
}

/// Emits every angle pair of every bucket: `(endpoint, (mid_a, mid_b),
/// combined weight)` — Algorithm 1 lines 11–13.
fn flush_buckets(
    buckets: &mut FxHashMap<u32, Vec<(u32, Weight)>>,
    mut emit: impl FnMut(u32, (u32, u32), Weight),
) {
    for (&k, angles) in buckets.iter() {
        for x in 0..angles.len() {
            for y in (x + 1)..angles.len() {
                let (mx, wx) = angles[x];
                let (my, wy) = angles[y];
                emit(k, (mx, my), wx + wy);
            }
        }
    }
}

/// Algorithm 1 lines 14–17: grow/replace the running maximum set.
#[inline]
fn update_smb(best: &mut Weight, smb: &mut Vec<Butterfly>, b: Butterfly, w: Weight) {
    match w.total_cmp(best) {
        std::cmp::Ordering::Greater => {
            *best = w;
            smb.clear();
            smb.push(b);
        }
        std::cmp::Ordering::Equal => smb.push(b),
        std::cmp::Ordering::Less => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::max_butterflies_in_world;
    use bigraph::GraphBuilder;

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn sorted(mut v: Vec<Butterfly>) -> Vec<Butterfly> {
        v.sort();
        v
    }

    #[test]
    fn per_world_smb_matches_brute_force_on_fig1_worlds() {
        let g = fig1();
        let priority = VertexPriority::from_degrees(&g);
        let mut smb = Vec::new();
        // All 64 worlds of the 6-edge example.
        for mask in 0u32..64 {
            let mut world = PossibleWorld::empty(6);
            for i in 0..6 {
                if mask >> i & 1 == 1 {
                    world.insert(bigraph::EdgeId(i));
                }
            }
            let w = smb_of_world(&g, &priority, &world, &mut smb);
            let (rw, rsmb) = max_butterflies_in_world(&g, &world);
            assert_eq!(sorted(smb.clone()), sorted(rsmb), "mask={mask}");
            if !smb.is_empty() {
                assert_eq!(w, rw, "mask={mask}");
            }
        }
    }

    #[test]
    fn each_butterfly_generated_once_per_world() {
        // In the full world of K_{2,3} there is a unique maximum; ensure
        // no duplicate S_MB entries (i.e. no double counting of wedges).
        let g = fig1();
        let priority = VertexPriority::from_degrees(&g);
        let mut smb = Vec::new();
        smb_of_world(&g, &priority, &PossibleWorld::full(&g), &mut smb);
        assert_eq!(smb.len(), 1);
        let mut with_ties = GraphBuilder::new();
        // K_{2,2} with all equal weights: a single butterfly.
        for u in 0..2 {
            for v in 0..2 {
                with_ties.add_edge(Left(u), Right(v), 1.0, 1.0).unwrap();
            }
        }
        let g2 = with_ties.build().unwrap();
        let p2 = VertexPriority::from_degrees(&g2);
        smb_of_world(&g2, &p2, &PossibleWorld::full(&g2), &mut smb);
        assert_eq!(smb.len(), 1, "butterfly multi-counted: {smb:?}");
    }

    #[test]
    fn estimates_converge_to_exact_on_fig1() {
        let g = fig1();
        let d = McVp::new(McVpConfig {
            trials: 40_000,
            seed: 1,
        })
        .run(&g);
        let exact = crate::exact::exact_distribution(&g, Default::default()).unwrap();
        for (b, &p) in exact.iter() {
            assert!(
                (d.prob(b) - p).abs() < 0.01,
                "{b}: est {} vs exact {}",
                d.prob(b),
                p
            );
        }
        let (mp, _) = d.mpmb().unwrap();
        assert_eq!(mp, exact.mpmb().unwrap().0);
    }

    #[test]
    fn runs_are_reproducible() {
        let g = fig1();
        let cfg = McVpConfig {
            trials: 500,
            seed: 9,
        };
        let d1 = McVp::new(cfg).run(&g);
        let d2 = McVp::new(cfg).run(&g);
        assert_eq!(d1.max_abs_diff(&d2), 0.0);
    }

    #[test]
    fn observer_sees_every_trial() {
        let g = fig1();
        struct Counter(u64);
        impl TrialObserver for Counter {
            fn observe(&mut self, _t: u64, _s: &[Butterfly]) {
                self.0 += 1;
            }
        }
        let mut c = Counter(0);
        McVp::new(McVpConfig {
            trials: 123,
            seed: 2,
        })
        .run_with_observer(&g, &mut c);
        assert_eq!(c.0, 123);
    }

    #[test]
    fn butterfly_free_graph_yields_empty_distribution() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.9).unwrap();
        b.add_edge(Left(1), Right(1), 1.0, 0.9).unwrap();
        let g = b.build().unwrap();
        let d = McVp::new(McVpConfig {
            trials: 50,
            seed: 3,
        })
        .run(&g);
        assert!(d.is_empty());
    }
}
