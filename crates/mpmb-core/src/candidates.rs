//! The candidate maximum-butterfly set `C_MB` used by OLS (§VI).
//!
//! The preparing phase collects butterflies that were maximum in at least
//! one sampled world; the sampling phase then estimates probabilities over
//! this (weight-sorted) set only. [`CandidateSet`] precomputes everything
//! both estimators need: canonical weights, edge ids, existence
//! probabilities, and `L(i)` — the count of strictly-heavier candidates.

use crate::butterfly::Butterfly;
use bigraph::fx::FxHashSet;
use bigraph::{EdgeId, UncertainBipartiteGraph, Weight};

/// One candidate butterfly with its precomputed attributes.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The butterfly.
    pub butterfly: Butterfly,
    /// Canonical weight `w(B)`.
    pub weight: Weight,
    /// Its four backbone edges in canonical order.
    pub edges: [EdgeId; 4],
    /// `Pr[E(B)] = Π p(e)`.
    pub existence_prob: f64,
}

/// A weight-descending, deduplicated candidate set.
#[derive(Clone, Debug, Default)]
pub struct CandidateSet {
    candidates: Vec<Candidate>,
    /// `class_start[i]` = index of the first candidate in `i`'s weight
    /// class; equals the paper's `L(i)` (count of strictly heavier
    /// candidates, which under descending order is also the largest index
    /// bound of Algorithm 4 line 3).
    class_start: Vec<usize>,
}

impl CandidateSet {
    /// Builds a candidate set from butterflies of `g`'s backbone,
    /// deduplicating and sorting by weight descending (ties by canonical
    /// butterfly order for determinism).
    ///
    /// # Panics
    /// Panics if a butterfly is not a backbone butterfly of `g`.
    pub fn from_butterflies(
        g: &UncertainBipartiteGraph,
        butterflies: impl IntoIterator<Item = Butterfly>,
    ) -> Self {
        let mut seen: FxHashSet<Butterfly> = FxHashSet::default();
        let mut candidates: Vec<Candidate> = Vec::new();
        for b in butterflies {
            if !seen.insert(b) {
                continue;
            }
            let edges = b
                .edges(g)
                .unwrap_or_else(|| panic!("{b} is not a backbone butterfly"));
            candidates.push(Candidate {
                butterfly: b,
                weight: b.weight(g).expect("edges exist"),
                edges,
                existence_prob: b.existence_prob(g).expect("edges exist"),
            });
        }
        Self::from_unique_candidates(candidates)
    }

    /// Finishes a candidate set from already-deduplicated candidates:
    /// sorts by weight descending (ties by canonical butterfly order) and
    /// computes `L(i)`. The sort key is a *total* order, so the resulting
    /// indices depend only on the candidate contents — never on the input
    /// order. This is what lets [`crate::listing::backbone_candidate_set`]
    /// merge per-shard buffers and still match the sequential build
    /// byte-for-byte.
    pub(crate) fn from_unique_candidates(mut candidates: Vec<Candidate>) -> Self {
        candidates.sort_unstable_by(|a, b| {
            b.weight
                .total_cmp(&a.weight)
                .then_with(|| a.butterfly.cmp(&b.butterfly))
        });
        let mut class_start = vec![0usize; candidates.len()];
        for i in 1..candidates.len() {
            class_start[i] = if candidates[i].weight == candidates[i - 1].weight {
                class_start[i - 1]
            } else {
                i
            };
        }
        CandidateSet {
            candidates,
            class_start,
        }
    }

    /// Number of candidates `|C_MB|`.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidate at sorted position `i` (0 = heaviest).
    pub fn get(&self, i: usize) -> &Candidate {
        &self.candidates[i]
    }

    /// Iterator over candidates in weight-descending order.
    pub fn iter(&self) -> impl Iterator<Item = &Candidate> {
        self.candidates.iter()
    }

    /// `L(i)`: the number of candidates with weight strictly greater than
    /// candidate `i`'s. Under descending order these are exactly the
    /// candidates at positions `0..L(i)` (Algorithm 4 line 3).
    pub fn larger_count(&self, i: usize) -> usize {
        self.class_start[i]
    }

    /// The residual edge set `B_j ∖ B_i` (edges of candidate `j` not in
    /// candidate `i`), at most 4 edges.
    pub fn residual(&self, j: usize, i: usize) -> Vec<EdgeId> {
        let bi = &self.candidates[i].edges;
        self.candidates[j]
            .edges
            .iter()
            .copied()
            .filter(|e| !bi.contains(e))
            .collect()
    }

    /// Position of a butterfly in the sorted order, if present.
    pub fn position(&self, b: &Butterfly) -> Option<usize> {
        self.candidates.iter().position(|c| c.butterfly == *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right};

    fn grid_graph() -> UncertainBipartiteGraph {
        // K_{3,3} with weights making distinct butterfly weight classes.
        let mut b = GraphBuilder::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                b.add_edge(Left(u), Right(v), (u + v + 1) as f64, 0.5)
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    fn bf(u1: u32, u2: u32, v1: u32, v2: u32) -> Butterfly {
        Butterfly::new(Left(u1), Left(u2), Right(v1), Right(v2))
    }

    #[test]
    fn sorted_descending_and_deduplicated() {
        let g = grid_graph();
        let all = crate::butterfly::enumerate_backbone_butterflies(&g);
        let doubled: Vec<Butterfly> = all.iter().chain(all.iter()).copied().collect();
        let cs = CandidateSet::from_butterflies(&g, doubled);
        assert_eq!(cs.len(), all.len());
        for w in cs.candidates.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
    }

    #[test]
    fn larger_count_is_strict() {
        let g = grid_graph();
        // Butterflies over (u,u') pairs share weight classes:
        // weight of B(a,b,c,d) = (a+c+1)+(a+d+1)+(b+c+1)+(b+d+1)
        //                      = 2a+2b+2c+2d+4 — ties abound.
        let cs = CandidateSet::from_butterflies(
            &g,
            crate::butterfly::enumerate_backbone_butterflies(&g),
        );
        for i in 0..cs.len() {
            let li = cs.larger_count(i);
            for j in 0..li {
                assert!(cs.get(j).weight > cs.get(i).weight);
            }
            if li < i {
                assert_eq!(cs.get(li).weight, cs.get(i).weight);
            }
        }
    }

    #[test]
    fn residual_excludes_shared_edges() {
        let g = grid_graph();
        let cs = CandidateSet::from_butterflies(&g, [bf(0, 1, 0, 1), bf(0, 1, 1, 2)]);
        // These two butterflies share the edges (0,1) and (1,1).
        let hi = cs.position(&bf(0, 1, 1, 2)).unwrap(); // heavier (sum 12)
        let lo = cs.position(&bf(0, 1, 0, 1)).unwrap(); // lighter (sum 8)
        assert_eq!(hi, 0);
        assert_eq!(lo, 1);
        let r = cs.residual(hi, lo);
        assert_eq!(r.len(), 2);
        let e1 = g.find_edge(Left(0), Right(2)).unwrap();
        let e2 = g.find_edge(Left(1), Right(2)).unwrap();
        assert!(r.contains(&e1) && r.contains(&e2));
        // Residual with itself is empty.
        assert!(cs.residual(hi, hi).is_empty());
    }

    #[test]
    fn existence_probability_is_product() {
        let g = grid_graph();
        let cs = CandidateSet::from_butterflies(&g, [bf(0, 1, 0, 1)]);
        assert!((cs.get(0).existence_prob - 0.5f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn empty_set() {
        let g = grid_graph();
        let cs = CandidateSet::from_butterflies(&g, []);
        assert!(cs.is_empty());
        assert_eq!(cs.len(), 0);
    }

    #[test]
    #[should_panic(expected = "not a backbone butterfly")]
    fn rejects_non_backbone_butterflies() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.5).unwrap();
        b.add_edge(Left(5), Right(5), 1.0, 0.5).unwrap();
        let g = b.build().unwrap();
        let _ = CandidateSet::from_butterflies(&g, [bf(0, 1, 0, 1)]);
    }
}
