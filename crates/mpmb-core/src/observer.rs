//! Per-trial observation hooks for convergence experiments (Fig. 11/12).
//!
//! The sampling solvers report each trial's `S_MB` to an observer, which
//! can maintain running estimates without the solver re-running at every
//! checkpoint. The cost when unused is one virtual call per trial.

use crate::butterfly::Butterfly;

/// Receives each finished trial's maximum-butterfly set.
pub trait TrialObserver {
    /// Called after trial `trial` (0-based) with its `S_MB` (possibly
    /// empty when the sampled world contained no butterfly).
    fn observe(&mut self, trial: u64, smb: &[Butterfly]);
}

/// An observer that ignores everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl TrialObserver for NoopObserver {
    #[inline]
    fn observe(&mut self, _trial: u64, _smb: &[Butterfly]) {}
}

/// Tracks the running estimate `P̂(B)` of one target butterfly, snapshotting
/// every `every` trials — the trace plotted in Fig. 11.
#[derive(Clone, Debug)]
pub struct ConvergenceTracker {
    target: Butterfly,
    every: u64,
    hits: u64,
    trials: u64,
    points: Vec<(u64, f64)>,
}

impl ConvergenceTracker {
    /// Creates a tracker for `target` snapshotting every `every` trials.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn new(target: Butterfly, every: u64) -> Self {
        assert!(every > 0, "snapshot interval must be positive");
        ConvergenceTracker {
            target,
            every,
            hits: 0,
            trials: 0,
            points: Vec::new(),
        }
    }

    /// The `(trials, P̂)` snapshots collected so far.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The final running estimate.
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// Total observed trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }
}

impl TrialObserver for ConvergenceTracker {
    fn observe(&mut self, _trial: u64, smb: &[Butterfly]) {
        self.trials += 1;
        if smb.contains(&self.target) {
            self.hits += 1;
        }
        if self.trials.is_multiple_of(self.every) {
            self.points.push((self.trials, self.estimate()));
        }
    }
}

/// Fans one trial stream out to several observers.
#[derive(Default)]
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn TrialObserver>,
}

impl<'a> MultiObserver<'a> {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observer.
    pub fn push(&mut self, obs: &'a mut dyn TrialObserver) -> &mut Self {
        self.observers.push(obs);
        self
    }
}

impl TrialObserver for MultiObserver<'_> {
    fn observe(&mut self, trial: u64, smb: &[Butterfly]) {
        for o in self.observers.iter_mut() {
            o.observe(trial, smb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{Left, Right};

    fn bf(u1: u32, u2: u32) -> Butterfly {
        Butterfly::new(Left(u1), Left(u2), Right(0), Right(1))
    }

    #[test]
    fn tracker_counts_hits_and_snapshots() {
        let target = bf(0, 1);
        let other = bf(0, 2);
        let mut t = ConvergenceTracker::new(target, 2);
        t.observe(0, &[target]);
        t.observe(1, &[other]);
        t.observe(2, &[target, other]);
        t.observe(3, &[]);
        assert_eq!(t.trials(), 4);
        assert_eq!(t.estimate(), 0.5);
        assert_eq!(t.points(), &[(2, 0.5), (4, 0.5)]);
    }

    #[test]
    fn tracker_estimate_before_any_trial_is_zero() {
        let t = ConvergenceTracker::new(bf(0, 1), 10);
        assert_eq!(t.estimate(), 0.0);
        assert!(t.points().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tracker_rejects_zero_interval() {
        let _ = ConvergenceTracker::new(bf(0, 1), 0);
    }

    #[test]
    fn multi_observer_fans_out() {
        let target = bf(0, 1);
        let mut t1 = ConvergenceTracker::new(target, 1);
        let mut t2 = ConvergenceTracker::new(bf(0, 2), 1);
        {
            let mut multi = MultiObserver::new();
            multi.push(&mut t1).push(&mut t2);
            multi.observe(0, &[target]);
        }
        assert_eq!(t1.estimate(), 1.0);
        assert_eq!(t2.estimate(), 0.0);
    }

    #[test]
    fn noop_observer_is_inert() {
        let mut n = NoopObserver;
        n.observe(0, &[bf(0, 1)]);
    }
}
