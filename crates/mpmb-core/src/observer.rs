//! Per-trial observation hooks for convergence experiments (Fig. 11/12).
//!
//! The sampling solvers report each trial's `S_MB` to an observer, which
//! can maintain running estimates without the solver re-running at every
//! checkpoint. The cost when unused is one virtual call per trial.
//!
//! Observers that also implement [`TrialObserver::fork`] participate in
//! *parallel* runs: the executor forks one child per chunk, workers feed
//! their chunk-local child, and the children are folded back with
//! [`TrialObserver::absorb`] on the coordinating thread in ascending
//! chunk order — so the merged statistics are deterministic for any
//! thread schedule. Observers that keep the default `fork` (`None`)
//! retain the historical behavior of only seeing sequential runs.

use crate::butterfly::Butterfly;
use std::any::Any;

/// Receives each finished trial's maximum-butterfly set.
pub trait TrialObserver {
    /// Called after trial `trial` (0-based) with its `S_MB` (possibly
    /// empty when the sampled world contained no butterfly).
    fn observe(&mut self, trial: u64, smb: &[Butterfly]);

    /// Creates an independent child observer for one parallel chunk.
    /// `None` (the default) opts out of parallel observation: parallel
    /// runs then feed this observer nothing.
    fn fork(&self) -> Option<Box<dyn TrialObserver + Send>> {
        None
    }

    /// Folds a child produced by [`TrialObserver::fork`] back into
    /// `self`. The executor calls this on the coordinating thread in
    /// ascending chunk order once the chunk's worker has joined.
    fn absorb(&mut self, _chunk: Box<dyn TrialObserver + Send>) {}

    /// Downcast support so `absorb` implementations can recover their
    /// concrete fork type. Forkable observers should return
    /// `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}

/// An observer that ignores everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl TrialObserver for NoopObserver {
    #[inline]
    fn observe(&mut self, _trial: u64, _smb: &[Butterfly]) {}
}

/// Tracks the running estimate `P̂(B)` of one target butterfly, snapshotting
/// every `every` trials — the trace plotted in Fig. 11.
#[derive(Clone, Debug)]
pub struct ConvergenceTracker {
    target: Butterfly,
    every: u64,
    hits: u64,
    trials: u64,
    points: Vec<(u64, f64)>,
}

impl ConvergenceTracker {
    /// Creates a tracker for `target` snapshotting every `every` trials.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn new(target: Butterfly, every: u64) -> Self {
        assert!(every > 0, "snapshot interval must be positive");
        ConvergenceTracker {
            target,
            every,
            hits: 0,
            trials: 0,
            points: Vec::new(),
        }
    }

    /// The `(trials, P̂)` snapshots collected so far.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The final running estimate.
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// Total observed trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }
}

impl TrialObserver for ConvergenceTracker {
    fn observe(&mut self, _trial: u64, smb: &[Butterfly]) {
        self.trials += 1;
        if smb.contains(&self.target) {
            self.hits += 1;
        }
        if self.trials.is_multiple_of(self.every) {
            self.points.push((self.trials, self.estimate()));
        }
    }

    /// Parallel support: each chunk tracks hits/trials locally; the
    /// chunks' points are discarded (a chunk-local running estimate is
    /// meaningless) and snapshots are taken at absorb time instead, so
    /// parallel traces are block-granular but deterministic.
    fn fork(&self) -> Option<Box<dyn TrialObserver + Send>> {
        Some(Box::new(ConvergenceTracker::new(self.target, self.every)))
    }

    fn absorb(&mut self, mut chunk: Box<dyn TrialObserver + Send>) {
        let Some(c) = chunk
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<ConvergenceTracker>())
        else {
            return;
        };
        let before = self.trials;
        self.hits += c.hits;
        self.trials += c.trials;
        if before / self.every != self.trials / self.every {
            self.points.push((self.trials, self.estimate()));
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

/// Fans one trial stream out to several observers.
#[derive(Default)]
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn TrialObserver>,
}

impl<'a> MultiObserver<'a> {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observer.
    pub fn push(&mut self, obs: &'a mut dyn TrialObserver) -> &mut Self {
        self.observers.push(obs);
        self
    }
}

impl TrialObserver for MultiObserver<'_> {
    fn observe(&mut self, trial: u64, smb: &[Butterfly]) {
        for o in self.observers.iter_mut() {
            o.observe(trial, smb);
        }
    }

    /// Forks whichever children support forking (the rest simply see
    /// nothing on the parallel path, as before).
    fn fork(&self) -> Option<Box<dyn TrialObserver + Send>> {
        let children: Vec<(usize, Box<dyn TrialObserver + Send>)> = self
            .observers
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.fork().map(|f| (i, f)))
            .collect();
        if children.is_empty() {
            None
        } else {
            Some(Box::new(MultiFork { children }))
        }
    }

    fn absorb(&mut self, mut chunk: Box<dyn TrialObserver + Send>) {
        let Some(mf) = chunk
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<MultiFork>())
        else {
            return;
        };
        for (i, f) in mf.children.drain(..) {
            self.observers[i].absorb(f);
        }
    }
}

/// The fork of a [`MultiObserver`]: chunk-local children of the fan-out
/// members that themselves forked, tagged with their parent index.
struct MultiFork {
    children: Vec<(usize, Box<dyn TrialObserver + Send>)>,
}

impl TrialObserver for MultiFork {
    fn observe(&mut self, trial: u64, smb: &[Butterfly]) {
        for (_, c) in self.children.iter_mut() {
            c.observe(trial, smb);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{Left, Right};

    fn bf(u1: u32, u2: u32) -> Butterfly {
        Butterfly::new(Left(u1), Left(u2), Right(0), Right(1))
    }

    #[test]
    fn tracker_counts_hits_and_snapshots() {
        let target = bf(0, 1);
        let other = bf(0, 2);
        let mut t = ConvergenceTracker::new(target, 2);
        t.observe(0, &[target]);
        t.observe(1, &[other]);
        t.observe(2, &[target, other]);
        t.observe(3, &[]);
        assert_eq!(t.trials(), 4);
        assert_eq!(t.estimate(), 0.5);
        assert_eq!(t.points(), &[(2, 0.5), (4, 0.5)]);
    }

    #[test]
    fn tracker_estimate_before_any_trial_is_zero() {
        let t = ConvergenceTracker::new(bf(0, 1), 10);
        assert_eq!(t.estimate(), 0.0);
        assert!(t.points().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tracker_rejects_zero_interval() {
        let _ = ConvergenceTracker::new(bf(0, 1), 0);
    }

    #[test]
    fn multi_observer_fans_out() {
        let target = bf(0, 1);
        let mut t1 = ConvergenceTracker::new(target, 1);
        let mut t2 = ConvergenceTracker::new(bf(0, 2), 1);
        {
            let mut multi = MultiObserver::new();
            multi.push(&mut t1).push(&mut t2);
            multi.observe(0, &[target]);
        }
        assert_eq!(t1.estimate(), 1.0);
        assert_eq!(t2.estimate(), 0.0);
    }

    #[test]
    fn noop_observer_is_inert() {
        let mut n = NoopObserver;
        n.observe(0, &[bf(0, 1)]);
        assert!(n.fork().is_none());
    }

    #[test]
    fn tracker_fork_absorb_merges_counts_deterministically() {
        let target = bf(0, 1);
        let mut root = ConvergenceTracker::new(target, 4);
        // Two chunk forks fed out of order by "workers"; absorb happens
        // in chunk order regardless.
        let mut f0 = root.fork().unwrap();
        let mut f1 = root.fork().unwrap();
        for t in 0..4 {
            f0.observe(t, &[target]);
        }
        let hit = [target];
        for t in 4..8 {
            f1.observe(t, if t % 2 == 0 { &hit } else { &[] });
        }
        root.absorb(f0);
        root.absorb(f1);
        assert_eq!(root.trials(), 8);
        assert_eq!(root.estimate(), 6.0 / 8.0);
        // One block-granular snapshot per absorbed chunk that crossed a
        // multiple of `every`.
        assert_eq!(root.points(), &[(4, 1.0), (8, 0.75)]);
    }

    #[test]
    fn multi_observer_forks_only_forkable_children() {
        let target = bf(0, 1);
        struct SeqOnly(u64);
        impl TrialObserver for SeqOnly {
            fn observe(&mut self, _t: u64, _s: &[Butterfly]) {
                self.0 += 1;
            }
        }
        let mut tracker = ConvergenceTracker::new(target, 1);
        let mut seq = SeqOnly(0);
        let mut multi = MultiObserver::new();
        multi.push(&mut seq).push(&mut tracker);
        let mut fork = multi.fork().expect("tracker child is forkable");
        fork.observe(0, &[target]);
        multi.absorb(fork);
        drop(multi);
        assert_eq!(tracker.trials(), 1);
        assert_eq!(seq.0, 0, "non-forkable child sees nothing in parallel");
    }
}
