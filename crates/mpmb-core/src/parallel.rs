//! Deterministic multi-threaded trial execution (extension feature).
//!
//! Monte-Carlo trials are embarrassingly parallel and the per-trial RNG
//! streams (`trial_rng(seed, t)`) make results independent of scheduling:
//! each worker owns a disjoint global trial range, builds a private
//! [`Tally`], and tallies are merged at the end. Output is bit-identical
//! to a sequential run with the same seed.
//!
//! Implemented with `std::thread::scope` — no extra dependencies.

use crate::distribution::{Distribution, Tally};
use crate::mcvp::{smb_of_world, McVpConfig};
use crate::os::{OsConfig, OsEngine, SamplingOracle};
use bigraph::{
    trial_rng, LazyEdgeSampler, PossibleWorld, UncertainBipartiteGraph, VertexPriority,
    WorldSampler,
};

/// Splits `total` trials into at most `threads` contiguous, non-empty
/// ranges covering `0..total` in order.
///
/// This is the canonical trial partition for every deterministic parallel
/// runner in the workspace: merging per-range results *in range order*
/// reproduces the sequential trial order exactly, so any two callers that
/// split with this function and merge in order produce bit-identical
/// output. External drivers (e.g. the serving daemon's cancellable
/// runners) must use this exact function rather than reimplementing the
/// split.
pub fn chunk_ranges(total: u64, threads: usize) -> Vec<std::ops::Range<u64>> {
    let threads = threads.max(1) as u64;
    let per = total.div_ceil(threads);
    (0..threads)
        .map(|i| (i * per).min(total)..((i + 1) * per).min(total))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Parallel Ordering Sampling: identical output to
/// [`OrderingSampling::run`](crate::OrderingSampling::run) with the same
/// config, split across `threads` workers.
pub fn run_os_parallel(
    g: &UncertainBipartiteGraph,
    cfg: &OsConfig,
    threads: usize,
) -> Distribution {
    assert!(cfg.trials > 0, "trials must be positive");
    let ranges = chunk_ranges(cfg.trials, threads);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    let mut engine = OsEngine::new(g, cfg);
                    let mut sampler = LazyEdgeSampler::new(g.num_edges());
                    let mut tally = Tally::new();
                    let mut smb = Vec::new();
                    for t in range {
                        let mut rng = trial_rng(cfg.seed, t);
                        sampler.begin_trial();
                        let mut oracle = SamplingOracle::new(g, &mut sampler, &mut rng);
                        engine.trial(&mut oracle, &mut smb);
                        tally.record_trial(smb.iter());
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut total = Tally::new();
    for t in tallies {
        total.merge(t);
    }
    total.into_distribution()
}

/// Parallel MC-VP: identical output to [`McVp::run`](crate::McVp::run)
/// with the same config.
pub fn run_mcvp_parallel(
    g: &UncertainBipartiteGraph,
    cfg: &McVpConfig,
    threads: usize,
) -> Distribution {
    assert!(cfg.trials > 0, "trials must be positive");
    let priority = VertexPriority::from_degrees(g);
    let ranges = chunk_ranges(cfg.trials, threads);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let priority = &priority;
                scope.spawn(move || {
                    let mut tally = Tally::new();
                    let mut world = PossibleWorld::empty(g.num_edges());
                    let mut smb = Vec::new();
                    for t in range {
                        let mut rng = trial_rng(cfg.seed, t);
                        WorldSampler::sample_into(g, &mut world, &mut rng);
                        smb_of_world(g, priority, &world, &mut smb);
                        tally.record_trial(smb.iter());
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut total = Tally::new();
    for t in tallies {
        total.merge(t);
    }
    total.into_distribution()
}

/// Parallel Algorithm 5: identical output to
/// [`estimate_optimized`](crate::estimate_optimized) with the same
/// arguments. Trials share nothing across workers except the read-only
/// graph and candidate set, so the split is embarrassing.
pub fn run_optimized_parallel(
    g: &UncertainBipartiteGraph,
    candidates: &crate::candidates::CandidateSet,
    trials: u64,
    seed: u64,
    threads: usize,
) -> Distribution {
    assert!(trials > 0, "trials must be positive");
    let ranges = chunk_ranges(trials, threads);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    let mut sampler = LazyEdgeSampler::new(g.num_edges());
                    let mut tally = Tally::new();
                    let mut smb: Vec<crate::Butterfly> = Vec::new();
                    for t in range {
                        let mut rng = trial_rng(seed, t);
                        sampler.begin_trial();
                        smb.clear();
                        let mut w_max = f64::NEG_INFINITY;
                        for cand in candidates.iter() {
                            if cand.weight < w_max {
                                break;
                            }
                            let exists = cand
                                .edges
                                .iter()
                                .all(|&e| sampler.is_present(g, e, &mut rng));
                            if exists {
                                smb.push(cand.butterfly);
                                w_max = cand.weight;
                            }
                        }
                        tally.record_trial(smb.iter());
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut total = Tally::new();
    for t in tallies {
        total.merge(t);
    }
    total.into_distribution()
}

/// Parallel Algorithm 4: Karp-Luby estimation with candidates split
/// across workers. Identical output to
/// [`estimate_karp_luby`](crate::estimate_karp_luby) because each
/// candidate's trial stream is already seeded independently.
pub fn run_karp_luby_parallel(
    g: &UncertainBipartiteGraph,
    candidates: &crate::candidates::CandidateSet,
    policy: crate::KlTrialPolicy,
    seed: u64,
    threads: usize,
) -> crate::KlReport {
    // Partition candidate *indices* round-robin so heavy low-index
    // candidates spread across workers, then reassemble in order.
    let threads = threads.max(1);
    let n = candidates.len();
    let mut partial: Vec<Option<crate::KlReport>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    // Each worker runs the sequential estimator over its
                    // own single-candidate slices to reuse the logic with
                    // bit-identical per-candidate streams.
                    let mut reports = Vec::new();
                    let mut i = w;
                    while i < n {
                        reports.push((i, run_kl_single(g, candidates, i, policy, seed)));
                        i += threads;
                    }
                    reports
                })
            })
            .collect();
        let mut collected: Vec<(usize, SingleKl)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        collected.sort_by_key(|(i, _)| *i);
        let mut probs = bigraph::fx::FxHashMap::default();
        let mut trials_per_candidate = Vec::with_capacity(n);
        let mut s_values = Vec::with_capacity(n);
        let mut max_trials = 1u64;
        for (i, single) in collected {
            probs.insert(candidates.get(i).butterfly, single.prob);
            trials_per_candidate.push(single.trials);
            s_values.push(single.s_value);
            max_trials = max_trials.max(single.trials);
        }
        partial.push(Some(crate::KlReport {
            distribution: Distribution::from_estimates(probs, max_trials),
            trials_per_candidate,
            s_values,
        }));
    });
    partial.pop().flatten().expect("report assembled")
}

/// Per-candidate Karp-Luby outcome.
struct SingleKl {
    prob: f64,
    trials: u64,
    s_value: f64,
}

/// Runs Algorithm 4 for exactly one candidate index, with the same
/// per-candidate RNG stream as the sequential implementation.
fn run_kl_single(
    g: &UncertainBipartiteGraph,
    candidates: &crate::candidates::CandidateSet,
    i: usize,
    policy: crate::KlTrialPolicy,
    seed: u64,
) -> SingleKl {
    use rand::Rng;
    let cand = candidates.get(i);
    let l_i = candidates.larger_count(i);
    let mut residuals: Vec<Vec<bigraph::EdgeId>> = Vec::with_capacity(l_i);
    let mut prefix: Vec<f64> = Vec::with_capacity(l_i);
    let mut s_i = 0.0;
    for j in 0..l_i {
        let d_j = candidates.residual(j, i);
        let p_j: f64 = g.edges_existence_prob(&d_j);
        if p_j > 0.0 {
            s_i += p_j;
            residuals.push(d_j);
            prefix.push(s_i);
        }
    }
    if s_i == 0.0 {
        return SingleKl {
            prob: cand.existence_prob,
            trials: 0,
            s_value: 0.0,
        };
    }
    let n = policy.trials_for(cand.existence_prob, s_i).max(1);
    let mut sampler = LazyEdgeSampler::new(g.num_edges());
    let mut cnt = 0u64;
    for t in 0..n {
        let mut rng = trial_rng(seed ^ (0xA5A5_0000_0000_0000 | i as u64), t);
        sampler.begin_trial();
        let x: f64 = rng.random::<f64>() * s_i;
        let j = prefix.partition_point(|&c| c <= x).min(residuals.len() - 1);
        for &e in &residuals[j] {
            sampler.force_present(e);
        }
        let mut canonical = true;
        for d_k in residuals.iter().take(j) {
            if d_k.iter().all(|&e| sampler.is_present(g, e, &mut rng)) {
                canonical = false;
                break;
            }
        }
        if canonical {
            cnt += 1;
        }
    }
    let union_est = s_i * cnt as f64 / n as f64;
    SingleKl {
        prob: ((1.0 - union_est) * cand.existence_prob).clamp(0.0, 1.0),
        trials: n,
        s_value: s_i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcvp::McVp;
    use crate::os::OrderingSampling;
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (total, threads) in [(10u64, 3usize), (1, 8), (100, 1), (7, 7), (0, 4)] {
            let ranges = chunk_ranges(total, threads);
            let mut covered = 0u64;
            let mut expect_start = 0u64;
            for r in &ranges {
                assert_eq!(r.start, expect_start);
                covered += r.end - r.start;
                expect_start = r.end;
            }
            assert_eq!(covered, total, "total={total} threads={threads}");
        }
    }

    #[test]
    fn parallel_os_matches_sequential_bitwise() {
        let g = fig1();
        let cfg = OsConfig {
            trials: 2_000,
            seed: 99,
            ..Default::default()
        };
        let seq = OrderingSampling::new(cfg).run(&g);
        for threads in [1, 2, 3, 8] {
            let par = run_os_parallel(&g, &cfg, threads);
            assert_eq!(seq.max_abs_diff(&par), 0.0, "threads={threads}");
            assert_eq!(seq.len(), par.len());
        }
    }

    #[test]
    fn parallel_mcvp_matches_sequential_bitwise() {
        let g = fig1();
        let cfg = McVpConfig {
            trials: 1_000,
            seed: 4,
        };
        let seq = McVp::new(cfg).run(&g);
        let par = run_mcvp_parallel(&g, &cfg, 4);
        assert_eq!(seq.max_abs_diff(&par), 0.0);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let g = fig1();
        let cfg = OsConfig {
            trials: 3,
            seed: 0,
            ..Default::default()
        };
        let par = run_os_parallel(&g, &cfg, 16);
        assert_eq!(par.trials(), Some(3));
    }

    #[test]
    fn parallel_optimized_matches_sequential_bitwise() {
        let g = fig1();
        let cs =
            crate::CandidateSet::from_butterflies(&g, crate::enumerate_backbone_butterflies(&g));
        let seq = crate::estimate_optimized(&g, &cs, 2_000, 9);
        for threads in [1, 3, 7] {
            let par = run_optimized_parallel(&g, &cs, 2_000, 9, threads);
            assert_eq!(seq.max_abs_diff(&par), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn parallel_karp_luby_matches_sequential_bitwise() {
        let g = fig1();
        let cs =
            crate::CandidateSet::from_butterflies(&g, crate::enumerate_backbone_butterflies(&g));
        let seq = crate::estimate_karp_luby(&g, &cs, crate::KlTrialPolicy::Fixed(1_000), 5);
        for threads in [1, 2, 4] {
            let par =
                run_karp_luby_parallel(&g, &cs, crate::KlTrialPolicy::Fixed(1_000), 5, threads);
            assert_eq!(
                seq.distribution.max_abs_diff(&par.distribution),
                0.0,
                "threads={threads}"
            );
            assert_eq!(seq.trials_per_candidate, par.trials_per_candidate);
            assert_eq!(seq.s_values, par.s_values);
        }
    }
}
