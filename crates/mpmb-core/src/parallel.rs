//! Deterministic multi-threaded trial execution (extension feature).
//!
//! Monte-Carlo trials are embarrassingly parallel and the per-trial RNG
//! streams (`trial_rng(seed, t)`) make results independent of scheduling.
//! The actual loop lives in [`crate::engine`] — the per-method runners
//! below are thin wrappers kept for one PR as deprecated re-exports;
//! build an [`Executor`] over the matching [`TrialEngine`] instead.

use crate::distribution::Distribution;
use crate::engine::{Cancel, Executor};
use crate::estimators::karp_luby::KarpLubyTrials;
use crate::estimators::optimized::OptimizedTrials;
use crate::mcvp::{McVpConfig, McVpTrials};
use crate::os::{OsConfig, OsTrials};
use bigraph::UncertainBipartiteGraph;

/// Splits `total` trials into at most `threads` contiguous, non-empty
/// ranges covering `0..total` in order.
///
/// This is the canonical trial partition for every deterministic parallel
/// runner in the workspace: merging per-range results *in range order*
/// reproduces the sequential trial order exactly, so any two callers that
/// split with this function and merge in order produce bit-identical
/// output. The [`Executor`](crate::engine::Executor) is built on it;
/// external drivers should go through the executor rather than
/// reimplementing the split.
pub fn chunk_ranges(total: u64, threads: usize) -> Vec<std::ops::Range<u64>> {
    let threads = threads.max(1) as u64;
    let per = total.div_ceil(threads);
    (0..threads)
        .map(|i| (i * per).min(total)..((i + 1) * per).min(total))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Parallel Ordering Sampling: identical output to
/// [`OrderingSampling::run`](crate::OrderingSampling::run) with the same
/// config, split across `threads` workers.
#[deprecated(note = "use engine::Executor with os::OsTrials")]
pub fn run_os_parallel(
    g: &UncertainBipartiteGraph,
    cfg: &OsConfig,
    threads: usize,
) -> Distribution {
    assert!(cfg.trials > 0, "trials must be positive");
    Executor::new(threads)
        .run(&OsTrials::new(g, cfg), cfg.trials, &Cancel::never())
        .acc
        .into_distribution()
}

/// Parallel MC-VP: identical output to [`McVp::run`](crate::McVp::run)
/// with the same config.
#[deprecated(note = "use engine::Executor with mcvp::McVpTrials")]
pub fn run_mcvp_parallel(
    g: &UncertainBipartiteGraph,
    cfg: &McVpConfig,
    threads: usize,
) -> Distribution {
    assert!(cfg.trials > 0, "trials must be positive");
    Executor::new(threads)
        .run(&McVpTrials::new(g, cfg), cfg.trials, &Cancel::never())
        .acc
        .into_distribution()
}

/// Parallel Algorithm 5: identical output to
/// [`estimate_optimized`](crate::estimate_optimized) with the same
/// arguments.
#[deprecated(note = "use engine::Executor with estimators::optimized::OptimizedTrials")]
pub fn run_optimized_parallel(
    g: &UncertainBipartiteGraph,
    candidates: &crate::candidates::CandidateSet,
    trials: u64,
    seed: u64,
    threads: usize,
) -> Distribution {
    assert!(trials > 0, "trials must be positive");
    Executor::new(threads)
        .run(
            &OptimizedTrials::new(g, candidates, seed),
            trials,
            &Cancel::never(),
        )
        .acc
        .into_distribution()
}

/// Parallel Algorithm 4: Karp-Luby estimation with candidates split
/// across workers. Identical output to
/// [`estimate_karp_luby`](crate::estimate_karp_luby) because each
/// candidate's trial stream is already seeded independently.
#[deprecated(note = "use engine::Executor with estimators::karp_luby::KarpLubyTrials")]
pub fn run_karp_luby_parallel(
    g: &UncertainBipartiteGraph,
    candidates: &crate::candidates::CandidateSet,
    policy: crate::KlTrialPolicy,
    seed: u64,
    threads: usize,
) -> crate::KlReport {
    let kl = KarpLubyTrials::new(g, candidates, policy, seed);
    let partial = Executor::new(threads)
        .check_every(1)
        .run(&kl, kl.trials(), &Cancel::never());
    kl.finalize(partial.acc)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::mcvp::McVp;
    use crate::os::OrderingSampling;
    use bigraph::{GraphBuilder, Left, Right};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (total, threads) in [(10u64, 3usize), (1, 8), (100, 1), (7, 7), (0, 4)] {
            let ranges = chunk_ranges(total, threads);
            let mut covered = 0u64;
            let mut expect_start = 0u64;
            for r in &ranges {
                assert_eq!(r.start, expect_start);
                covered += r.end - r.start;
                expect_start = r.end;
            }
            assert_eq!(covered, total, "total={total} threads={threads}");
        }
    }

    #[test]
    fn parallel_os_matches_sequential_bitwise() {
        let g = fig1();
        let cfg = OsConfig {
            trials: 2_000,
            seed: 99,
            ..Default::default()
        };
        let seq = OrderingSampling::new(cfg).run(&g);
        for threads in [1, 2, 3, 8] {
            let par = run_os_parallel(&g, &cfg, threads);
            assert_eq!(seq.max_abs_diff(&par), 0.0, "threads={threads}");
            assert_eq!(seq.len(), par.len());
        }
    }

    #[test]
    fn parallel_mcvp_matches_sequential_bitwise() {
        let g = fig1();
        let cfg = McVpConfig {
            trials: 1_000,
            seed: 4,
        };
        let seq = McVp::new(cfg).run(&g);
        let par = run_mcvp_parallel(&g, &cfg, 4);
        assert_eq!(seq.max_abs_diff(&par), 0.0);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let g = fig1();
        let cfg = OsConfig {
            trials: 3,
            seed: 0,
            ..Default::default()
        };
        let par = run_os_parallel(&g, &cfg, 16);
        assert_eq!(par.trials(), Some(3));
    }

    #[test]
    fn parallel_optimized_matches_sequential_bitwise() {
        let g = fig1();
        let cs =
            crate::CandidateSet::from_butterflies(&g, crate::enumerate_backbone_butterflies(&g));
        let seq = crate::estimate_optimized(&g, &cs, 2_000, 9);
        for threads in [1, 3, 7] {
            let par = run_optimized_parallel(&g, &cs, 2_000, 9, threads);
            assert_eq!(seq.max_abs_diff(&par), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn parallel_karp_luby_matches_sequential_bitwise() {
        let g = fig1();
        let cs =
            crate::CandidateSet::from_butterflies(&g, crate::enumerate_backbone_butterflies(&g));
        let seq = crate::estimate_karp_luby(&g, &cs, crate::KlTrialPolicy::Fixed(1_000), 5);
        for threads in [1, 2, 4] {
            let par =
                run_karp_luby_parallel(&g, &cs, crate::KlTrialPolicy::Fixed(1_000), 5, threads);
            assert_eq!(
                seq.distribution.max_abs_diff(&par.distribution),
                0.0,
                "threads={threads}"
            );
            assert_eq!(seq.trials_per_candidate, par.trials_per_candidate);
            assert_eq!(seq.s_values, par.s_values);
        }
    }
}
