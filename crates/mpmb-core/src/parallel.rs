//! The canonical trial partition for deterministic parallel execution.
//!
//! Monte-Carlo trials are embarrassingly parallel and the per-trial RNG
//! streams (`trial_rng(seed, t)`) make results independent of
//! scheduling. The actual loop lives in [`crate::engine`]; this module
//! holds only the partition function it (and any distributed driver)
//! splits trial budgets with.

/// Splits `total` trials into at most `threads` contiguous, non-empty
/// ranges covering `0..total` in order.
///
/// This is the canonical trial partition for every deterministic parallel
/// runner in the workspace: merging per-range results *in range order*
/// reproduces the sequential trial order exactly, so any two callers that
/// split with this function and merge in order produce bit-identical
/// output. The [`Executor`](crate::engine::Executor) is built on it;
/// external drivers should go through the executor rather than
/// reimplementing the split.
pub fn chunk_ranges(total: u64, threads: usize) -> Vec<std::ops::Range<u64>> {
    let threads = threads.max(1) as u64;
    let per = total.div_ceil(threads);
    (0..threads)
        .map(|i| (i * per).min(total)..((i + 1) * per).min(total))
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (total, threads) in [(10u64, 3usize), (1, 8), (100, 1), (7, 7), (0, 4)] {
            let ranges = chunk_ranges(total, threads);
            let mut covered = 0u64;
            let mut expect_start = 0u64;
            for r in &ranges {
                assert_eq!(r.start, expect_start);
                covered += r.end - r.start;
                expect_start = r.end;
            }
            assert_eq!(covered, total, "total={total} threads={threads}");
        }
    }
}
