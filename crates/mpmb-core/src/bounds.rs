//! Trial-number lower bounds and ratios (Theorem IV.1, Lemmas VI.2–VI.4,
//! Equations 8–9).

/// Theorem IV.1 / Lemma V.2: the Monte-Carlo trial count guaranteeing an
/// `ε–δ` approximation of a probability `μ`:
/// `N ≥ (1/μ) · 4·ln(2/δ) / ε²`.
///
/// # Panics
/// Panics unless `0 < μ ≤ 1`, `ε > 0`, `0 < δ < 1`.
pub fn mc_trial_lower_bound(mu: f64, epsilon: f64, delta: f64) -> f64 {
    assert!(mu > 0.0 && mu <= 1.0, "mu must be in (0,1]");
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    (1.0 / mu) * (4.0 * (2.0 / delta).ln() / (epsilon * epsilon))
}

/// Distribution-free confidence half-width for a sample mean: by
/// Chebyshev's inequality the interval `mean ± sqrt(s²/(N·δ))` (with
/// `s²` the unbiased sample variance over `N` trials) covers the true
/// expectation with probability at least `1 − δ`. The fast counting
/// tier reports this interval — conservative, but valid for the
/// heavy-tailed per-wedge estimator without any range assumption.
///
/// # Panics
/// Panics unless `variance ≥ 0`, `trials > 0`, `0 < δ < 1`.
pub fn chebyshev_half_width(variance: f64, trials: u64, delta: f64) -> f64 {
    assert!(variance >= 0.0, "variance must be non-negative");
    assert!(trials > 0, "trials must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    (variance / (trials as f64 * delta)).sqrt()
}

/// Equation 8: the ratio `N_kl / N_op` of trial counts giving Karp-Luby
/// (Algorithm 4) and the optimized estimator (Algorithm 5) the same `ε–δ`
/// guarantee on a candidate with existence probability `Pr[E(B_i)]`,
/// residual mass `S_i`, and target probability `μ = P(B_i)`:
///
/// `N_kl/N_op = Pr[E(B_i)] · S_i · (Pr[E(B_i)]/μ − 1)`.
pub fn kl_over_op_ratio(p_exist: f64, s_i: f64, mu: f64) -> f64 {
    assert!(mu > 0.0, "mu must be positive");
    p_exist * s_i * (p_exist / mu - 1.0)
}

/// Equation 9: the ratio at which the two estimators' *time complexities*
/// break even, `1/|C_MB|` — Algorithm 4 pays `O(|C_MB|)` per trial per
/// candidate while Algorithm 5 pays `O(|C_MB|)` per shared trial.
pub fn balanced_ratio(candidate_count: usize) -> f64 {
    assert!(candidate_count > 0, "empty candidate set has no ratio");
    1.0 / candidate_count as f64
}

/// §VI-B (Lemma VI.1): probability that a butterfly with probability
/// `P(B)` appears in the candidate set after `n_os` preparing trials:
/// `1 − (1 − P(B))^N`.
pub fn candidate_inclusion_prob(p_b: f64, n_os: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p_b), "P(B) must be a probability");
    1.0 - (1.0 - p_b).powi(n_os.min(i32::MAX as u64) as i32)
}

/// Inverts [`candidate_inclusion_prob`]: the preparing-phase trials needed
/// so a butterfly with probability `p_b` is missed with probability at
/// most `miss`.
pub fn prep_trials_for_miss_rate(p_b: f64, miss: f64) -> u64 {
    assert!(p_b > 0.0 && p_b < 1.0, "P(B) must be in (0,1)");
    assert!(miss > 0.0 && miss < 1.0, "miss rate must be in (0,1)");
    (miss.ln() / (1.0 - p_b).ln()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_magnitude() {
        // §IV: "if P(B)=0.01, ε=0.1, δ=0.01 … N should be larger than
        // around 2·10⁵". 4·ln(200)/0.01/0.01 = 2.12·10⁵.
        let n = mc_trial_lower_bound(0.01, 0.1, 0.01);
        assert!((1.9e5..2.3e5).contains(&n), "n={n}");
    }

    #[test]
    fn default_experiment_bound_matches_table4() {
        // §VIII-B: μ=0.05, ε=δ=0.1 → N set to 2·10⁴.
        let n = mc_trial_lower_bound(0.05, 0.1, 0.1);
        assert!((2.0e4..2.5e4).contains(&n), "n={n}");
    }

    #[test]
    fn bound_scales_inversely_with_mu() {
        let n1 = mc_trial_lower_bound(0.1, 0.1, 0.1);
        let n2 = mc_trial_lower_bound(0.05, 0.1, 0.1);
        assert!((n2 / n1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_sign_depends_on_exist_vs_mu() {
        // Pr[E(B)] = μ: the butterfly is maximum whenever it exists, KL
        // needs no trials at all (ratio 0).
        assert_eq!(kl_over_op_ratio(0.3, 1.0, 0.3), 0.0);
        // Existence far above μ: KL needs many more trials.
        assert!(kl_over_op_ratio(0.9, 2.0, 0.05) > 10.0);
        // Existence below μ is impossible in exact arithmetic (P(B) ≤
        // Pr[E(B)]) but can occur with estimates; ratio goes negative and
        // callers clamp.
        assert!(kl_over_op_ratio(0.01, 1.0, 0.05) < 0.0);
    }

    #[test]
    fn fig6_matrix_shape() {
        // Fig. 6 plots the ratio for S_i = 1 over a grid: it must grow
        // with Pr[E(B)] and shrink with μ.
        let grid = [0.1, 0.3, 0.5, 0.7, 0.9];
        for w in grid.windows(2) {
            assert!(kl_over_op_ratio(w[1], 1.0, 0.05) > kl_over_op_ratio(w[0], 1.0, 0.05));
            assert!(kl_over_op_ratio(0.9, 1.0, w[0]) > kl_over_op_ratio(0.9, 1.0, w[1]));
        }
    }

    #[test]
    fn balanced_ratio_is_reciprocal() {
        assert_eq!(balanced_ratio(1), 1.0);
        assert_eq!(balanced_ratio(200), 0.005);
    }

    #[test]
    fn lemma_vi1_example() {
        // "Even when P(B)=0.1 and N=20, the probability is nearly 90%."
        let p = candidate_inclusion_prob(0.1, 20);
        assert!((0.85..0.92).contains(&p), "p={p}");
        // §VIII-B: 100 trials make the miss rate of a P=0.05 butterfly
        // below 0.6% (the paper rounds to 0.5%).
        let miss = 1.0 - candidate_inclusion_prob(0.05, 100);
        assert!(miss < 0.006, "miss={miss}");
    }

    #[test]
    fn prep_trials_inversion() {
        let n = prep_trials_for_miss_rate(0.05, 0.005);
        assert!((100..=110).contains(&n), "n={n}");
        let achieved = 1.0 - candidate_inclusion_prob(0.05, n);
        assert!(achieved <= 0.005);
    }

    #[test]
    #[should_panic(expected = "mu must be in (0,1]")]
    fn rejects_zero_mu() {
        let _ = mc_trial_lower_bound(0.0, 0.1, 0.1);
    }

    #[test]
    fn chebyshev_half_width_shrinks_with_trials_and_confidence() {
        let w = chebyshev_half_width(4.0, 100, 0.1);
        assert!((w - (4.0f64 / 10.0).sqrt()).abs() < 1e-12);
        assert!(chebyshev_half_width(4.0, 400, 0.1) < w);
        assert!(chebyshev_half_width(4.0, 100, 0.01) > w);
        assert_eq!(chebyshev_half_width(0.0, 100, 0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "trials must be positive")]
    fn chebyshev_rejects_zero_trials() {
        let _ = chebyshev_half_width(1.0, 0, 0.1);
    }
}
