//! Distribution-based uncertain butterfly counting (related work §II).
//!
//! The MPMB paper positions itself against *distribution-based* methods
//! that "count instances across all possible worlds, thereby generating a
//! distribution of count numbers" (Zhou et al. VLDB'21, LINC). This
//! module provides that capability over the same substrate: Monte-Carlo
//! sampling of the butterfly-count distribution (mean, variance, and
//! empirical PMF), cross-checkable against the closed-form expectation in
//! [`bigraph::expected`].

use crate::engine::{Cancel, Executor, TrialEngine};
use crate::observer::TrialObserver;
use bigraph::fx::FxHashMap;
use bigraph::{trial_rng, LazyEdgeSampler, Right, UncertainBipartiteGraph};
use rand::Rng;

/// Sampled distribution of the per-world butterfly count.
#[derive(Clone, Debug)]
pub struct CountDistribution {
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Empirical PMF: count value → number of trials observing it.
    pub histogram: FxHashMap<u64, u64>,
    /// Trials performed.
    pub trials: u64,
}

impl CountDistribution {
    /// Empirical `Pr[count ≥ k]`. An empty distribution (zero trials)
    /// reports `0.0` for every `k` — never `NaN` from `0/0`, which
    /// would serialize as `null` in JSON bodies.
    pub fn tail_prob(&self, k: u64) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .histogram
            .iter()
            .filter(|(&c, _)| c >= k)
            .map(|(_, &n)| n)
            .sum();
        hits as f64 / self.trials as f64
    }
}

/// Samples the butterfly-count distribution over `trials` possible worlds.
pub fn sample_count_distribution(
    g: &UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
) -> CountDistribution {
    sample_count_distribution_parallel(g, trials, seed, 1)
}

/// Multi-threaded [`sample_count_distribution`]: runs on the
/// [`Executor`](crate::engine::Executor) with per-range histograms
/// merged.
///
/// Bit-identical to the sequential run at every thread count: per-trial
/// RNG streams make the merged histogram independent of scheduling, and
/// the moments are computed from the histogram in sorted-count order —
/// per-world counts are integers, so the moment sums are exact in `f64`
/// and do not depend on trial accumulation order.
pub fn sample_count_distribution_parallel(
    g: &UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
    threads: usize,
) -> CountDistribution {
    assert!(trials > 0, "trials must be positive");
    let histogram = Executor::new(threads)
        .run(&CountTrials::new(g, seed), trials, &Cancel::never())
        .acc;
    count_distribution_from_histogram(histogram, trials)
}

/// Finalizes a (possibly resumed) count histogram into the moment
/// summary. `trials` must equal the histogram's total mass. Zero trials
/// (a zero-progress resumed partial finalized as-is) yield a
/// well-defined empty distribution — zero moments, not `0/0 = NaN`.
pub fn count_distribution_from_histogram(
    histogram: FxHashMap<u64, u64>,
    trials: u64,
) -> CountDistribution {
    if trials == 0 {
        return CountDistribution {
            mean: 0.0,
            variance: 0.0,
            histogram,
            trials: 0,
        };
    }
    let mut keys: Vec<u64> = histogram.keys().copied().collect();
    keys.sort_unstable();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &count in &keys {
        let n = histogram[&count] as f64;
        s1 += n * count as f64;
        s2 += n * (count as f64) * (count as f64);
    }
    let mean = s1 / trials as f64;
    let variance = if trials > 1 {
        (s2 - s1 * s1 / trials as f64) / (trials - 1) as f64
    } else {
        0.0
    };
    CountDistribution {
        mean,
        variance,
        histogram,
        trials,
    }
}

/// Per-world butterfly counting as a [`TrialEngine`]: each trial samples
/// a world lazily (derived stream `seed ^ 0xC0_17_17`) and bumps its
/// count's histogram bucket. Histogram merges are integer additions, so
/// accumulation order never shows in the result.
pub struct CountTrials<'g> {
    g: &'g UncertainBipartiteGraph,
    seed: u64,
}

impl<'g> CountTrials<'g> {
    /// Builds the engine (`seed` is the caller-facing base seed).
    pub fn new(g: &'g UncertainBipartiteGraph, seed: u64) -> Self {
        CountTrials {
            g,
            seed: seed ^ 0xC0_17_17,
        }
    }
}

impl TrialEngine for CountTrials<'_> {
    type Acc = FxHashMap<u64, u64>;
    type Scratch = LazyEdgeSampler;

    fn new_acc(&self) -> Self::Acc {
        FxHashMap::default()
    }

    fn new_scratch(&self) -> LazyEdgeSampler {
        LazyEdgeSampler::new(self.g.num_edges())
    }

    fn trial(
        &self,
        t: u64,
        sampler: &mut LazyEdgeSampler,
        histogram: &mut Self::Acc,
        _observer: &mut dyn TrialObserver,
    ) {
        let mut rng = trial_rng(self.seed, t);
        sampler.begin_trial();
        let count = count_in_trial(self.g, sampler, &mut rng);
        *histogram.entry(count).or_insert(0) += 1;
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        for (count, n) in from {
            *into.entry(count).or_insert(0) += n;
        }
    }

    fn phase(&self) -> &'static str {
        "count.sample"
    }
}

/// Exact variance of the butterfly count over the possible-world
/// distribution, in closed form.
///
/// `Var[X] = Σ_B P(B)(1−P(B)) + 2 Σ_{B<B'} (P(B∧B') − P(B)P(B'))` where
/// `P(B)` here is the *existence* probability `Pr[E(B)]`. Butterfly pairs
/// sharing no edge are independent and contribute nothing, so only
/// edge-overlapping pairs are enumerated (found via an edge → butterflies
/// index). Refuses graphs whose backbone holds more than
/// `max_butterflies` butterflies, since the overlap enumeration is
/// quadratic in local butterfly density.
pub fn exact_count_variance(
    g: &UncertainBipartiteGraph,
    max_butterflies: u64,
) -> Result<f64, TooManyButterflies> {
    let total = crate::butterfly::count_backbone_butterflies(g);
    if total > max_butterflies {
        return Err(TooManyButterflies {
            found: total,
            limit: max_butterflies,
        });
    }
    // Materialize (edges, Pr[E]) per butterfly.
    let mut probs: Vec<f64> = Vec::with_capacity(total as usize);
    let mut edge_sets: Vec<[bigraph::EdgeId; 4]> = Vec::with_capacity(total as usize);
    crate::butterfly::for_each_backbone_butterfly(g, |b| {
        let edges = b.edges(g).expect("backbone butterfly");
        probs.push(b.existence_prob(g).expect("backbone butterfly"));
        edge_sets.push(edges);
    });

    // Edge → butterfly indices.
    let mut by_edge: FxHashMap<bigraph::EdgeId, Vec<u32>> = FxHashMap::default();
    for (i, es) in edge_sets.iter().enumerate() {
        for &e in es {
            by_edge.entry(e).or_default().push(i as u32);
        }
    }

    // Diagonal terms.
    let mut var: f64 = probs.iter().map(|&p| p * (1.0 - p)).sum();

    // Overlapping off-diagonal pairs, each counted once.
    let mut seen_pairs: bigraph::fx::FxHashSet<(u32, u32)> = Default::default();
    for bfs in by_edge.values() {
        for x in 0..bfs.len() {
            for &j in &bfs[(x + 1)..] {
                let i = bfs[x];
                let key = (i.min(j), i.max(j));
                if !seen_pairs.insert(key) {
                    continue;
                }
                // P(B ∧ B') = Π p(e) over the edge union (shared edges
                // counted once).
                let (a, b) = (&edge_sets[i as usize], &edge_sets[j as usize]);
                let mut p_and: f64 = a.iter().map(|&e| g.prob(e)).product();
                for &e in b.iter() {
                    if !a.contains(&e) {
                        p_and *= g.prob(e);
                    }
                }
                var += 2.0 * (p_and - probs[i as usize] * probs[j as usize]);
            }
        }
    }
    Ok(var)
}

/// Error: the backbone holds too many butterflies for exact variance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TooManyButterflies {
    /// Butterflies found.
    pub found: u64,
    /// The configured limit.
    pub limit: u64,
}

impl std::fmt::Display for TooManyButterflies {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} backbone butterflies exceed the exact-variance limit {}",
            self.found, self.limit
        )
    }
}

impl std::error::Error for TooManyButterflies {}

/// Counts butterflies in one lazily-sampled world: for each right middle,
/// collect present neighbors; each left pair with `c` common present
/// middles holds `C(c, 2)` butterflies.
fn count_in_trial(
    g: &UncertainBipartiteGraph,
    sampler: &mut LazyEdgeSampler,
    rng: &mut impl Rng,
) -> u64 {
    let mut pair_commons: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    let mut present: Vec<u32> = Vec::new();
    for v in 0..g.num_right() as u32 {
        present.clear();
        for a in g.right_adj(Right(v)) {
            if sampler.is_present(g, a.edge, rng) {
                present.push(a.nbr);
            }
        }
        for i in 0..present.len() {
            for &uj in &present[(i + 1)..] {
                let ui = present[i];
                *pair_commons.entry((ui.min(uj), ui.max(uj))).or_insert(0) += 1;
            }
        }
    }
    pair_commons
        .values()
        .map(|&c| c * c.saturating_sub(1) / 2)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::expected::expected_butterfly_count;
    use bigraph::{GraphBuilder, Left};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sampled_mean_matches_closed_form_expectation() {
        let g = fig1();
        let d = sample_count_distribution(&g, 40_000, 5);
        let expect = expected_butterfly_count(&g); // 0.2544
        assert!(
            (d.mean - expect).abs() < 0.01,
            "mean {} vs {expect}",
            d.mean
        );
    }

    #[test]
    fn deterministic_graph_has_zero_variance() {
        let mut b = GraphBuilder::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                b.add_edge(Left(u), Right(v), 1.0, 1.0).unwrap();
            }
        }
        let g = b.build().unwrap();
        let d = sample_count_distribution(&g, 100, 1);
        assert_eq!(d.mean, 9.0);
        assert_eq!(d.variance, 0.0);
        assert_eq!(d.histogram.len(), 1);
        assert_eq!(d.histogram[&9], 100);
    }

    #[test]
    fn histogram_sums_to_trials_and_tail_is_monotone() {
        let g = fig1();
        let d = sample_count_distribution(&g, 5_000, 2);
        let total: u64 = d.histogram.values().sum();
        assert_eq!(total, 5_000);
        assert_eq!(d.tail_prob(0), 1.0);
        let mut prev = 1.0;
        for k in 1..=4 {
            let p = d.tail_prob(k);
            assert!(p <= prev + 1e-12, "tail not monotone at {k}");
            prev = p;
        }
    }

    #[test]
    fn variance_positive_for_uncertain_graphs() {
        let g = fig1();
        let d = sample_count_distribution(&g, 5_000, 3);
        assert!(d.variance > 0.0);
    }

    /// Brute-force Var[X] over all possible worlds.
    fn reference_variance(g: &UncertainBipartiteGraph) -> f64 {
        use bigraph::{EdgeId, PossibleWorld};
        let m = g.num_edges();
        assert!(m <= 16);
        let (mut e1, mut e2) = (0.0, 0.0);
        for mask in 0u32..(1 << m) {
            let mut w = PossibleWorld::empty(m);
            for i in 0..m {
                if mask >> i & 1 == 1 {
                    w.insert(EdgeId(i as u32));
                }
            }
            let wp = w.probability(g);
            let mut count = 0.0;
            crate::butterfly::for_each_backbone_butterfly(g, |b| {
                if b.exists_in(g, &w) {
                    count += 1.0;
                }
            });
            e1 += wp * count;
            e2 += wp * count * count;
        }
        e2 - e1 * e1
    }

    #[test]
    fn exact_variance_matches_world_enumeration() {
        let g = fig1();
        let closed = exact_count_variance(&g, 1_000).unwrap();
        let reference = reference_variance(&g);
        assert!((closed - reference).abs() < 1e-9, "{closed} vs {reference}");
    }

    #[test]
    fn exact_variance_matches_sampling() {
        let g = fig1();
        let closed = exact_count_variance(&g, 1_000).unwrap();
        let d = sample_count_distribution(&g, 40_000, 8);
        assert!(
            (d.variance - closed).abs() < 0.02,
            "sampled {} vs exact {closed}",
            d.variance
        );
    }

    #[test]
    fn exact_variance_zero_for_deterministic_graphs() {
        let mut b = GraphBuilder::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                b.add_edge(Left(u), Right(v), 1.0, 1.0).unwrap();
            }
        }
        let g = b.build().unwrap();
        assert_eq!(exact_count_variance(&g, 100).unwrap(), 0.0);
    }

    #[test]
    fn exact_variance_respects_limit() {
        let g = fig1();
        let err = exact_count_variance(&g, 2).unwrap_err();
        assert_eq!(err, TooManyButterflies { found: 3, limit: 2 });
    }

    #[test]
    fn disjoint_butterflies_have_zero_covariance() {
        // Two edge-disjoint butterflies: Var = Σ p(1−p), no cross term.
        let mut b = GraphBuilder::new();
        for (u, v) in [(0u32, 0u32), (0, 1), (1, 0), (1, 1)] {
            b.add_edge(Left(u), Right(v), 1.0, 0.5).unwrap();
        }
        for (u, v) in [(2u32, 2u32), (2, 3), (3, 2), (3, 3)] {
            b.add_edge(Left(u), Right(v), 1.0, 0.25).unwrap();
        }
        let g = b.build().unwrap();
        let p1 = 0.5f64.powi(4);
        let p2 = 0.25f64.powi(4);
        let expect = p1 * (1.0 - p1) + p2 * (1.0 - p2);
        let got = exact_count_variance(&g, 100).unwrap();
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = fig1();
        let a = sample_count_distribution(&g, 1_000, 9);
        let b = sample_count_distribution(&g, 1_000, 9);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.histogram, b.histogram);
    }

    #[test]
    fn zero_trial_distribution_is_nan_free() {
        // A zero-progress resumed partial finalized as-is must not leak
        // NaN (which serializes as `null` in JSON) to clients.
        let d = count_distribution_from_histogram(FxHashMap::default(), 0);
        assert_eq!(d.mean, 0.0);
        assert_eq!(d.variance, 0.0);
        assert_eq!(d.trials, 0);
        for k in [0, 1, 10] {
            let p = d.tail_prob(k);
            assert!(!p.is_nan(), "tail_prob({k}) = {p}");
            assert_eq!(p, 0.0);
        }
    }

    #[test]
    fn parallel_count_distribution_matches_sequential_bitwise() {
        let g = fig1();
        let seq = sample_count_distribution(&g, 2_000, 11);
        for threads in [1, 2, 3, 8] {
            let par = sample_count_distribution_parallel(&g, 2_000, 11, threads);
            assert_eq!(seq.mean.to_bits(), par.mean.to_bits(), "threads={threads}");
            assert_eq!(seq.variance.to_bits(), par.variance.to_bits());
            assert_eq!(seq.histogram, par.histogram);
            assert_eq!(seq.trials, par.trials);
        }
    }
}
