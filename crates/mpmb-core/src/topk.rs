//! §VII: multiple MPMB solutions — plain top-k and a diversity-constrained
//! variant.
//!
//! Plain top-k is [`Distribution::top_k`]. The paper's introduction
//! motivates returning "a suitable number of butterflies for the
//! scattered visualization" (Fig. 3 plots clusters of *distinct* regions),
//! so this module adds [`top_k_diverse`]: a greedy ranking that skips
//! butterflies overlapping an already-selected one in more than
//! `max_shared_vertices` vertices. Greedy-by-probability is the natural
//! choice here because `P(·)` is the ranking criterion, not a submodular
//! coverage objective.

use crate::butterfly::Butterfly;
use crate::distribution::Distribution;

/// Number of vertices two butterflies share (0–4: two left + two right
/// can each overlap).
pub fn shared_vertices(a: &Butterfly, b: &Butterfly) -> usize {
    let mut n = 0;
    for u in [a.u1, a.u2] {
        if u == b.u1 || u == b.u2 {
            n += 1;
        }
    }
    for v in [a.v1, a.v2] {
        if v == b.v1 || v == b.v2 {
            n += 1;
        }
    }
    n
}

/// Greedy diverse top-k: selects butterflies in descending `P(B)` order,
/// skipping any that shares more than `max_shared_vertices` vertices with
/// an already-selected butterfly.
///
/// * `max_shared_vertices = 4` degenerates to plain top-k.
/// * `max_shared_vertices = 0` returns vertex-disjoint butterflies — one
///   per "region", like the Fig. 3 cluster plots.
pub fn top_k_diverse(
    dist: &Distribution,
    k: usize,
    max_shared_vertices: usize,
) -> Vec<(Butterfly, f64)> {
    let mut selected: Vec<(Butterfly, f64)> = Vec::with_capacity(k);
    for (b, p) in dist.sorted() {
        if selected.len() == k {
            break;
        }
        if selected
            .iter()
            .all(|(s, _)| shared_vertices(&b, s) <= max_shared_vertices)
        {
            selected.push((b, p));
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::fx::FxHashMap;
    use bigraph::{Left, Right};

    fn bf(u1: u32, u2: u32, v1: u32, v2: u32) -> Butterfly {
        Butterfly::new(Left(u1), Left(u2), Right(v1), Right(v2))
    }

    fn dist(entries: &[(Butterfly, f64)]) -> Distribution {
        let mut m = FxHashMap::default();
        for &(b, p) in entries {
            m.insert(b, p);
        }
        Distribution::from_exact(m)
    }

    #[test]
    fn shared_vertex_counting() {
        let a = bf(0, 1, 0, 1);
        assert_eq!(shared_vertices(&a, &a), 4);
        assert_eq!(shared_vertices(&a, &bf(0, 1, 2, 3)), 2);
        assert_eq!(shared_vertices(&a, &bf(0, 2, 1, 3)), 2);
        assert_eq!(shared_vertices(&a, &bf(5, 6, 7, 8)), 0);
        assert_eq!(shared_vertices(&a, &bf(1, 9, 8, 7)), 1);
    }

    #[test]
    fn relaxed_limit_equals_plain_top_k() {
        let d = dist(&[
            (bf(0, 1, 0, 1), 0.5),
            (bf(0, 1, 0, 2), 0.4),
            (bf(0, 1, 1, 2), 0.3),
        ]);
        assert_eq!(top_k_diverse(&d, 3, 4), d.top_k(3));
    }

    #[test]
    fn disjoint_selection_skips_overlapping() {
        let d = dist(&[
            (bf(0, 1, 0, 1), 0.5),
            (bf(0, 1, 0, 2), 0.4), // overlaps #1 in 3 vertices
            (bf(5, 6, 5, 6), 0.3), // disjoint
            (bf(0, 9, 9, 8), 0.2), // overlaps #1 in 1 vertex
        ]);
        let picks = top_k_diverse(&d, 3, 0);
        assert_eq!(
            picks.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
            vec![bf(0, 1, 0, 1), bf(5, 6, 5, 6)],
            "only fully disjoint butterflies allowed"
        );
        let picks = top_k_diverse(&d, 3, 1);
        assert_eq!(
            picks.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
            vec![bf(0, 1, 0, 1), bf(5, 6, 5, 6), bf(0, 9, 9, 8)],
        );
    }

    #[test]
    fn k_zero_and_empty_distribution() {
        let d = dist(&[(bf(0, 1, 0, 1), 0.5)]);
        assert!(top_k_diverse(&d, 0, 4).is_empty());
        assert!(top_k_diverse(&Distribution::new(), 5, 4).is_empty());
    }

    #[test]
    fn selection_is_greedy_by_probability() {
        // A lower-probability disjoint pair is NOT preferred over the
        // single best butterfly: greedy keeps the argmax first.
        let d = dist(&[
            (bf(0, 1, 0, 1), 0.5),
            (bf(2, 3, 2, 3), 0.2),
            (bf(4, 5, 4, 5), 0.2),
        ]);
        let picks = top_k_diverse(&d, 2, 0);
        assert_eq!(picks[0].0, bf(0, 1, 0, 1));
        assert_eq!(picks.len(), 2);
    }
}
