//! Property-based tests for the extension modules: targeted queries,
//! diverse top-k, adaptive sampling, count distributions, and the
//! exact-prefix estimator.

use bigraph::{GraphBuilder, Left, Right};
use mpmb_core::{
    enumerate_backbone_butterflies, estimate_exact_prefix, estimate_prob_of, exact_distribution,
    sample_count_distribution, shared_vertices, top_k_diverse, CandidateSet, ExactConfig,
};
use proptest::prelude::*;

/// Small random graph with coarse probabilities (exact-friendly).
fn arb_graph() -> impl Strategy<Value = Vec<(u32, u32, f64, f64)>> {
    proptest::collection::btree_set((0u32..4, 0u32..4), 1..=10).prop_flat_map(|pairs| {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let n = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(1u32..=32, n..=n),
            proptest::collection::vec(1u32..=9, n..=n),
        )
            .prop_map(|(pairs, ws, ps)| {
                pairs
                    .into_iter()
                    .zip(ws.iter().zip(ps.iter()))
                    .map(|((u, v), (&w, &p))| (u, v, w as f64 / 4.0, p as f64 / 10.0))
                    .collect()
            })
    })
}

fn build(edges: &[(u32, u32, f64, f64)]) -> bigraph::UncertainBipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, w, p) in edges {
        b.add_edge(Left(u), Right(v), w, p).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    /// The conditioned query estimator converges to exact P(B) for every
    /// backbone butterfly.
    #[test]
    fn query_matches_exact(edges in arb_graph(), seed in 0u64..30) {
        let g = build(&edges);
        let exact = exact_distribution(&g, ExactConfig { max_uncertain_edges: 10 }).unwrap();
        for b in enumerate_backbone_butterflies(&g) {
            let q = estimate_prob_of(&g, &b, 4_000, seed).unwrap();
            let p = exact.prob(&b);
            prop_assert!((q.prob - p).abs() < 0.06, "{}: {} vs {}", b, q.prob, p);
            // The decomposition is consistent.
            prop_assert!((q.prob - q.existence_prob * q.conditional_max_prob).abs() < 1e-12);
            prop_assert!(q.existence_prob <= 1.0 && q.conditional_max_prob <= 1.0);
        }
    }

    /// The exact-prefix estimator over the full butterfly set equals the
    /// global exact distribution, for any graph.
    #[test]
    fn exact_prefix_equals_global_exact(edges in arb_graph()) {
        let g = build(&edges);
        let all = enumerate_backbone_butterflies(&g);
        if all.is_empty() {
            return Ok(());
        }
        let cs = CandidateSet::from_butterflies(&g, all);
        let Ok(local) = estimate_exact_prefix(&g, &cs, 24) else {
            return Ok(()); // oversized union: out of scope here
        };
        let global = exact_distribution(&g, ExactConfig { max_uncertain_edges: 10 }).unwrap();
        for (b, &p) in global.iter() {
            prop_assert!((local.prob(b) - p).abs() < 1e-9, "{}: {} vs {}", b, local.prob(b), p);
        }
    }

    /// Diverse top-k invariants: respects the overlap limit pairwise, is
    /// a subsequence of the sorted ranking, and contains the argmax.
    #[test]
    fn diverse_top_k_invariants(edges in arb_graph(), k in 1usize..6, limit in 0usize..5) {
        let g = build(&edges);
        let exact = exact_distribution(&g, ExactConfig { max_uncertain_edges: 10 }).unwrap();
        let picks = top_k_diverse(&exact, k, limit);
        prop_assert!(picks.len() <= k);
        for i in 0..picks.len() {
            for j in (i + 1)..picks.len() {
                prop_assert!(shared_vertices(&picks[i].0, &picks[j].0) <= limit);
            }
        }
        // Subsequence of the sorted ranking.
        let sorted = exact.sorted();
        let mut cursor = 0;
        for pick in &picks {
            let pos = sorted[cursor..].iter().position(|x| x == pick);
            prop_assert!(pos.is_some(), "pick not in ranking order");
            cursor += pos.unwrap() + 1;
        }
        // The argmax always survives (greedy starts from it).
        if let Some(top) = exact.mpmb() {
            if !picks.is_empty() {
                prop_assert_eq!(picks[0], top);
            }
        }
    }

    /// Sampled count mean tracks the closed-form expectation.
    #[test]
    fn count_mean_matches_expectation(edges in arb_graph(), seed in 0u64..10) {
        let g = build(&edges);
        let expect = bigraph::expected::expected_butterfly_count(&g);
        let d = sample_count_distribution(&g, 4_000, seed);
        // Counts are small integers here; 3σ-ish tolerance.
        let tol = 0.08 + 0.08 * expect.sqrt();
        prop_assert!((d.mean - expect).abs() < tol, "mean {} vs {}", d.mean, expect);
        let total: u64 = d.histogram.values().sum();
        prop_assert_eq!(total, 4_000);
    }

    /// Transformations preserve structure: cold-item reward changes only
    /// weights (monotonically), probability scaling only probabilities.
    #[test]
    fn transforms_preserve_structure(edges in arb_graph(), reward in 0.0f64..3.0) {
        let g = build(&edges);
        let r = bigraph::transform::reward_cold_items(&g, reward);
        prop_assert_eq!(r.num_edges(), g.num_edges());
        for e in g.edge_ids() {
            prop_assert_eq!(r.endpoints(e), g.endpoints(e));
            prop_assert_eq!(r.prob(e), g.prob(e));
            prop_assert!(r.weight(e) + 1.0 / 64.0 >= g.weight(e), "reward lowered a weight");
        }
        let s = bigraph::transform::scale_probabilities(&g, 2.0, 1.0);
        for e in g.edge_ids() {
            prop_assert_eq!(s.weight(e), g.weight(e));
            prop_assert!(s.prob(e) <= g.prob(e) + 1e-12, "squaring raised a probability");
        }
    }
}
