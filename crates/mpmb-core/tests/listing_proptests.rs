//! Property-based verification of the parallel listing kernel.
//!
//! The central invariant: parallel listing is *bit-identical* to the
//! sequential path — same butterfly stream (content and order), same
//! candidate indices, same weight bits — for every thread count. This is
//! what keeps candidate-index-keyed RNG streams (Karp-Luby) stable when
//! a caller flips `--threads`.
//!
//! Also cross-checks `count_backbone_butterflies` against the
//! closed-form expectation in `bigraph::expected`: with every edge
//! probability forced to 1 the expected count IS the backbone count.

use bigraph::expected::expected_butterfly_count;
use bigraph::{GraphBuilder, Left, Right};
use mpmb_core::{
    backbone_candidate_set, count_backbone_butterflies, count_backbone_butterflies_parallel,
    enumerate_backbone_butterflies, enumerate_backbone_butterflies_parallel, listing_shards,
    CandidateSet, OlsConfig, OrderingListingSampling,
};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Denser variant of the solver proptests' generator: ≤ 24 edges over a
/// 6×6 grid so multi-butterfly (and multi-shard) graphs are common.
fn arb_graph() -> impl Strategy<Value = Vec<(u32, u32, f64, f64)>> {
    proptest::collection::btree_set((0u32..6, 0u32..6), 0..=24).prop_flat_map(|pairs| {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let n = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(0u32..=64, n..=n),
            proptest::collection::vec(0u32..=10, n..=n),
        )
            .prop_map(|(pairs, ws, ps)| {
                pairs
                    .into_iter()
                    .zip(ws.iter().zip(ps.iter()))
                    .map(|((u, v), (&w, &p))| (u, v, w as f64 / 4.0, p as f64 / 10.0))
                    .collect()
            })
    })
}

fn build(edges: &[(u32, u32, f64, f64)]) -> bigraph::UncertainBipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, w, p) in edges {
        b.add_edge(Left(u), Right(v), w, p).unwrap();
    }
    b.build().unwrap()
}

/// Byte-level candidate set equality: same indices, same butterflies,
/// same weight/probability bits, same edge ids, same `L(i)`.
fn assert_candidate_sets_identical(
    a: &CandidateSet,
    b: &CandidateSet,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        let (ca, cb) = (a.get(i), b.get(i));
        prop_assert_eq!(ca.butterfly, cb.butterfly, "candidate index {}", i);
        prop_assert_eq!(ca.weight.to_bits(), cb.weight.to_bits());
        prop_assert_eq!(ca.edges, cb.edges);
        prop_assert_eq!(ca.existence_prob.to_bits(), cb.existence_prob.to_bits());
        prop_assert_eq!(a.larger_count(i), b.larger_count(i));
    }
    Ok(())
}

proptest! {
    /// Parallel enumeration: identical butterfly stream (content AND
    /// order) at every thread count, and shards always tile `0..|L|`.
    #[test]
    fn parallel_listing_is_bit_identical(edges in arb_graph()) {
        let g = build(&edges);
        let seq = enumerate_backbone_butterflies(&g);
        let count = count_backbone_butterflies(&g);
        prop_assert_eq!(count, seq.len() as u64);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(
                &enumerate_backbone_butterflies_parallel(&g, threads),
                &seq,
                "threads={}", threads
            );
            prop_assert_eq!(count_backbone_butterflies_parallel(&g, threads), count);
            let shards = listing_shards(&g, threads * 4);
            let mut expect = 0u32;
            for s in &shards {
                prop_assert_eq!(s.start, expect);
                prop_assert!(!s.is_empty());
                expect = s.end;
            }
            prop_assert_eq!(expect as usize, g.num_left());
        }
    }

    /// Full-backbone candidate set: byte-identical to the sequential
    /// `from_butterflies` build at every thread count — candidate
    /// indices included.
    #[test]
    fn parallel_candidate_set_is_bit_identical(edges in arb_graph()) {
        let g = build(&edges);
        let seq = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        for threads in THREAD_COUNTS {
            let par = backbone_candidate_set(&g, threads);
            assert_candidate_sets_identical(&seq, &par)?;
        }
    }

    /// OLS prepare: the threaded preparing phase yields the same
    /// candidate set (indices included) as the sequential one.
    #[test]
    fn ols_prepare_is_thread_count_independent(edges in arb_graph(), seed in 0u64..1_000) {
        let g = build(&edges);
        let base = OlsConfig { prep_trials: 60, seed, ..Default::default() };
        let seq = OrderingListingSampling::new(base).prepare(&g);
        for threads in THREAD_COUNTS {
            let par = OrderingListingSampling::new(OlsConfig { threads, ..base }).prepare(&g);
            assert_candidate_sets_identical(&seq, &par)?;
        }
    }

    /// With all probabilities forced to 1 the closed-form expected count
    /// equals the exact backbone count.
    #[test]
    fn count_matches_closed_form_on_certain_graphs(edges in arb_graph()) {
        let mut b = GraphBuilder::new();
        for &(u, v, w, _) in &edges {
            b.add_edge(Left(u), Right(v), w, 1.0).unwrap();
        }
        let certain = b.build().unwrap();
        let exact = count_backbone_butterflies(&certain);
        let closed = expected_butterfly_count(&certain);
        prop_assert!(
            (closed - exact as f64).abs() < 1e-9,
            "closed-form {} vs exact {}", closed, exact
        );
        // And the original uncertain graph's backbone count is the same:
        // the backbone ignores probabilities.
        prop_assert_eq!(count_backbone_butterflies(&build(&edges)), exact);
    }
}
