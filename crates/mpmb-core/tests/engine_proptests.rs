//! Property-based verification of the unified trial engine.
//!
//! The executor's determinism contract, checked against every real
//! sampler (not just toy engines): for any thread count, any
//! cancellation point, and any resume schedule, completing all `N`
//! trials produces an accumulator **bit-identical** to one sequential
//! uninterrupted pass. This is what lets the server cache a timed-out
//! run's `Partial` and refine it on the next request without changing
//! the answer.

use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
use mpmb_core::{
    enumerate_backbone_butterflies, run_os_adaptive, AdaptiveConfig, Butterfly, Cancel,
    CandidateSet, Executor, FastSample, KarpLubyTrials, KlCandidate, KlTrialPolicy, McVpConfig,
    McVpTrials, OlsConfig, OptimizedTrials, OsConfig, OsTrials, Partial, PrepareTrials,
    SublinearTrials, Tally, TrialEngine,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Same generator as the listing proptests: ≤ 24 edges over a 6×6 grid
/// so multi-butterfly graphs are common.
fn arb_graph() -> impl Strategy<Value = Vec<(u32, u32, f64, f64)>> {
    proptest::collection::btree_set((0u32..6, 0u32..6), 0..=24).prop_flat_map(|pairs| {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let n = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(0u32..=64, n..=n),
            proptest::collection::vec(0u32..=10, n..=n),
        )
            .prop_map(|(pairs, ws, ps)| {
                pairs
                    .into_iter()
                    .zip(ws.iter().zip(ps.iter()))
                    .map(|((u, v), (&w, &p))| (u, v, w as f64 / 4.0, p as f64 / 10.0))
                    .collect()
            })
    })
}

fn build(edges: &[(u32, u32, f64, f64)]) -> UncertainBipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, w, p) in edges {
        b.add_edge(Left(u), Right(v), w, p).unwrap();
    }
    b.build().unwrap()
}

/// A tally, flattened to comparable bytes (count maps are unordered).
fn tally_bytes(t: &Tally) -> (u64, BTreeMap<Butterfly, u64>) {
    (t.trials(), t.counts().map(|(b, &c)| (*b, c)).collect())
}

/// A Karp-Luby accumulator, flattened to comparable bytes: rows sorted
/// by candidate index, floats compared via `to_bits`.
fn kl_bytes(acc: &[(u32, KlCandidate)]) -> Vec<(u32, u64, u64, u64)> {
    let mut rows: Vec<_> = acc
        .iter()
        .map(|&(i, c)| (i, c.prob.to_bits(), c.trials, c.s_value.to_bits()))
        .collect();
    rows.sort_unstable();
    rows
}

/// Runs `engine` to completion in one uninterrupted sequential pass,
/// then re-runs it cancelled at `budget` trials and resumed to
/// completion on `threads` workers, and hands both accumulators to
/// `check` for a bit-level comparison.
fn run_interrupted<E: TrialEngine>(
    engine: &E,
    trials: u64,
    budget: u64,
    threads: usize,
    check_every: u64,
) -> (E::Acc, Partial<E::Acc>) {
    let baseline = Executor::new(1)
        .check_every(check_every)
        .run(engine, trials, &Cancel::never());
    assert!(baseline.completed());

    let exec = Executor::new(threads).check_every(check_every);
    let mut partial = exec.run(engine, trials, &Cancel::after_trials(budget));
    // Resume (possibly repeatedly) until done; each resume gets its own
    // small budget so completion is reached over several schedules.
    let mut guard = 0;
    while !partial.completed() {
        exec.resume(engine, &mut partial, &Cancel::after_trials(budget.max(1)));
        guard += 1;
        assert!(guard < 10_000, "resume failed to make progress");
    }
    (baseline.acc, partial)
}

/// Block sizes exercised by the cancel/resume tests.
const CHECK_GRAINS: [u64; 4] = [1, 7, 16, 64];

proptest! {
    /// OS and MC-VP: parallel execution is bit-identical to sequential
    /// for every thread count.
    #[test]
    fn tally_engines_parallel_is_bit_identical(
        edges in arb_graph(),
        seed in 0u64..1_000,
    ) {
        let g = build(&edges);
        let trials = 160u64;
        let os = OsTrials::new(&g, &OsConfig { trials, seed, ..Default::default() });
        let mcvp_cfg = McVpConfig { trials, seed };
        let mcvp = McVpTrials::new(&g, &mcvp_cfg);

        let os_seq = Executor::new(1).run(&os, trials, &Cancel::never());
        let mc_seq = Executor::new(1).run(&mcvp, trials, &Cancel::never());
        for threads in THREAD_COUNTS {
            let os_par = Executor::new(threads).run(&os, trials, &Cancel::never());
            prop_assert!(os_par.completed());
            prop_assert_eq!(tally_bytes(&os_par.acc), tally_bytes(&os_seq.acc), "os threads={}", threads);
            let mc_par = Executor::new(threads).run(&mcvp, trials, &Cancel::never());
            prop_assert_eq!(tally_bytes(&mc_par.acc), tally_bytes(&mc_seq.acc), "mcvp threads={}", threads);
        }
    }

    /// OS and MC-VP: cancelling at an arbitrary block boundary and
    /// resuming to completion — on an arbitrary worker count — lands on
    /// the exact bytes of the uninterrupted run.
    #[test]
    fn tally_engines_cancel_resume_is_bit_identical(
        edges in arb_graph(),
        seed in 0u64..1_000,
        budget in 1u64..160,
        threads_idx in 0usize..THREAD_COUNTS.len(),
        grain_idx in 0usize..CHECK_GRAINS.len(),
    ) {
        let threads = THREAD_COUNTS[threads_idx];
        let check_every = CHECK_GRAINS[grain_idx];
        let g = build(&edges);
        let trials = 160u64;
        let os = OsTrials::new(&g, &OsConfig { trials, seed, ..Default::default() });
        let (base, resumed) = run_interrupted(&os, trials, budget, threads, check_every);
        prop_assert_eq!(tally_bytes(&resumed.acc), tally_bytes(&base), "os");

        let mcvp_cfg = McVpConfig { trials, seed };
        let mcvp = McVpTrials::new(&g, &mcvp_cfg);
        let (base, resumed) = run_interrupted(&mcvp, trials, budget, threads, check_every);
        prop_assert_eq!(tally_bytes(&resumed.acc), tally_bytes(&base), "mcvp");
    }

    /// The full OLS pipeline — preparing phase and optimized estimator —
    /// under cancellation, resume, and parallelism. The preparing
    /// union's *finalized* candidate set must be schedule-independent,
    /// and the sampling tally bit-identical.
    #[test]
    fn ols_engines_cancel_resume_is_bit_identical(
        edges in arb_graph(),
        seed in 0u64..1_000,
        budget in 1u64..120,
        threads_idx in 0usize..THREAD_COUNTS.len(),
    ) {
        let threads = THREAD_COUNTS[threads_idx];
        let g = build(&edges);
        let cfg = OlsConfig { prep_trials: 48, seed, ..Default::default() };

        let prep = PrepareTrials::new(&g, &cfg);
        let (base_union, resumed) = run_interrupted(&prep, cfg.prep_trials, budget.min(47), threads, 16);
        let base_cands = prep.finalize(base_union);
        let cands = prep.finalize(resumed.acc);
        prop_assert_eq!(base_cands.len(), cands.len());
        for i in 0..cands.len() {
            prop_assert_eq!(base_cands.get(i).butterfly, cands.get(i).butterfly, "candidate {}", i);
            prop_assert_eq!(base_cands.get(i).weight.to_bits(), cands.get(i).weight.to_bits());
        }

        let trials = 120u64;
        let opt = OptimizedTrials::new(&g, &cands, seed);
        let (base, resumed) = run_interrupted(&opt, trials, budget, threads, 16);
        prop_assert_eq!(tally_bytes(&resumed.acc), tally_bytes(&base), "optimized");
    }

    /// Karp-Luby: candidate-granular cancellation and resume (executor
    /// trial = one candidate, `check_every(1)`) reproduces the
    /// uninterrupted accumulator bitwise, rows included.
    #[test]
    fn karp_luby_cancel_resume_is_bit_identical(
        edges in arb_graph(),
        seed in 0u64..1_000,
        budget in 1u64..8,
        threads_idx in 0usize..THREAD_COUNTS.len(),
    ) {
        let threads = THREAD_COUNTS[threads_idx];
        let g = build(&edges);
        let cands = CandidateSet::from_butterflies(&g, enumerate_backbone_butterflies(&g));
        if cands.is_empty() {
            return Ok(());
        }
        let kl = KarpLubyTrials::new(&g, &cands, KlTrialPolicy::Fixed(64), seed);
        let trials = kl.trials();
        let (base, resumed) = run_interrupted(&kl, trials, budget.min(trials), threads, 1);
        prop_assert_eq!(kl_bytes(&resumed.acc), kl_bytes(&base));
        // And the finalized reports agree exactly.
        let a = kl.finalize(base);
        let b = kl.finalize(resumed.acc);
        prop_assert_eq!(a.distribution.max_abs_diff(&b.distribution), 0.0);
        prop_assert_eq!(a.trials_per_candidate, b.trials_per_candidate);
    }

    /// The sublinear fast tier: cancel/resume on any worker count lands
    /// on the same index-tagged rows — and therefore the same finalized
    /// estimate bits — as the uninterrupted sequential run.
    #[test]
    fn sublinear_cancel_resume_is_bit_identical(
        edges in arb_graph(),
        seed in 0u64..1_000,
        budget in 1u64..160,
        threads_idx in 0usize..THREAD_COUNTS.len(),
        grain_idx in 0usize..CHECK_GRAINS.len(),
    ) {
        let threads = THREAD_COUNTS[threads_idx];
        let check_every = CHECK_GRAINS[grain_idx];
        let g = build(&edges);
        let trials = 160u64;
        let engine = SublinearTrials::new(&g, seed);
        let (base, resumed) = run_interrupted(&engine, trials, budget, threads, check_every);
        prop_assert_eq!(fast_bytes(&resumed.acc), fast_bytes(&base));
        let a = engine.finalize(base, 0.1);
        let b = engine.finalize(resumed.acc, 0.1);
        prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        prop_assert_eq!(a.variance.to_bits(), b.variance.to_bits());
        prop_assert_eq!(a.ci_low.to_bits(), b.ci_low.to_bits());
        prop_assert_eq!(a.ci_high.to_bits(), b.ci_high.to_bits());
    }

    /// The adaptive OS driver at `threads` ∈ {1,2,3,8}: every thread
    /// count stops at the same batch with the same distribution bits —
    /// the `--threads N` flag can never change an adaptive answer.
    #[test]
    fn adaptive_threads_are_bit_identical(
        edges in arb_graph(),
        seed in 0u64..1_000,
    ) {
        let g = build(&edges);
        let base_cfg = AdaptiveConfig {
            epsilon: 0.4,
            delta: 0.3,
            batch: 100,
            max_trials: 600,
            seed,
            threads: 1,
            ..Default::default()
        };
        let sequential = run_os_adaptive(&g, &base_cfg);
        for threads in THREAD_COUNTS {
            let parallel = run_os_adaptive(&g, &AdaptiveConfig { threads, ..base_cfg });
            prop_assert_eq!(parallel.trials_used, sequential.trials_used, "threads={}", threads);
            prop_assert_eq!(parallel.bound_satisfied, sequential.bound_satisfied);
            prop_assert_eq!(parallel.target, sequential.target);
            prop_assert_eq!(
                parallel.distribution.max_abs_diff(&sequential.distribution),
                0.0,
                "threads={}",
                threads
            );
        }
    }
}

/// A fast accumulator, flattened to comparable bytes: rows sorted by
/// trial index (the merge order is schedule-dependent, the set is not).
fn fast_bytes(acc: &[FastSample]) -> Vec<FastSample> {
    let mut rows = acc.to_vec();
    rows.sort_unstable();
    rows
}
