//! Property-based cross-validation of the MPMB solvers.
//!
//! The central invariant: for any graph and any possible world, MC-VP's
//! per-world routine, Ordering Sampling's engine, and the brute-force
//! reference all agree on `S_MB(W)`; and on small graphs every sampling
//! solver's estimate converges to the exact enumeration.

use bigraph::{EdgeId, GraphBuilder, Left, PossibleWorld, Right, Side, VertexPriority};
use mpmb_core::{
    enumerate_backbone_butterflies, estimate_karp_luby, estimate_optimized, exact_distribution,
    max_butterflies_in_world, os_smb_of_world, Butterfly, CandidateSet, ExactConfig, KlTrialPolicy,
    OsConfig,
};
use proptest::prelude::*;

/// Small random graph: ≤ 12 edges over a 5×5 vertex grid, quantized
/// weights, probabilities on a coarse grid (so exact enumeration is cheap
/// and nothing degenerates to 2^52 float noise).
fn arb_graph() -> impl Strategy<Value = Vec<(u32, u32, f64, f64)>> {
    proptest::collection::btree_set((0u32..5, 0u32..5), 0..=12).prop_flat_map(|pairs| {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let n = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(0u32..=64, n..=n),
            proptest::collection::vec(0u32..=10, n..=n),
        )
            .prop_map(|(pairs, ws, ps)| {
                pairs
                    .into_iter()
                    .zip(ws.iter().zip(ps.iter()))
                    .map(|((u, v), (&w, &p))| (u, v, w as f64 / 4.0, p as f64 / 10.0))
                    .collect()
            })
    })
}

fn build(edges: &[(u32, u32, f64, f64)]) -> bigraph::UncertainBipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, w, p) in edges {
        b.add_edge(Left(u), Right(v), w, p).unwrap();
    }
    b.build().unwrap()
}

fn world_from_mask(m: usize, mask: u32) -> PossibleWorld {
    let mut w = PossibleWorld::empty(m);
    for i in 0..m {
        if mask >> i & 1 == 1 {
            w.insert(EdgeId(i as u32));
        }
    }
    w
}

fn sorted(mut v: Vec<Butterfly>) -> Vec<Butterfly> {
    v.sort();
    v
}

proptest! {
    /// OS engine == MC-VP per-world routine == brute force, on arbitrary
    /// worlds, for every middle-side/pruning configuration.
    #[test]
    fn smb_agreement_across_algorithms(edges in arb_graph(), mask in any::<u32>()) {
        let g = build(&edges);
        let m = g.num_edges();
        let world = world_from_mask(m, mask & ((1u32 << m.min(31)) - 1));
        let (ref_w, ref_smb) = max_butterflies_in_world(&g, &world);
        let ref_smb = sorted(ref_smb);

        // MC-VP per-world.
        let priority = VertexPriority::from_degrees(&g);
        let mut mc_smb = Vec::new();
        let mc_w = mpmb_core::mcvp::smb_of_world(&g, &priority, &world, &mut mc_smb);
        prop_assert_eq!(sorted(mc_smb), ref_smb.clone());
        if !ref_smb.is_empty() {
            prop_assert_eq!(mc_w, ref_w);
        }

        // OS engine in all 8 configurations.
        for middle in [Some(Side::Left), Some(Side::Right)] {
            for ordering in [true, false] {
                for dynamic in [true, false] {
                    let cfg = OsConfig {
                        edge_ordering: ordering,
                        dynamic_wbar: dynamic,
                        middle_side: middle,
                        ..Default::default()
                    };
                    let (os_w, os_smb) = os_smb_of_world(&g, &world, &cfg);
                    prop_assert_eq!(
                        sorted(os_smb), ref_smb.clone(),
                        "middle={:?} ordering={} dynamic={}", middle, ordering, dynamic
                    );
                    if !ref_smb.is_empty() {
                        prop_assert_eq!(os_w, ref_w);
                    }
                }
            }
        }
    }

    /// Exact P(B) values are valid probabilities and P(B) ≤ Pr[E(B)].
    #[test]
    fn exact_probabilities_are_bounded(edges in arb_graph()) {
        let g = build(&edges);
        let d = exact_distribution(&g, ExactConfig { max_uncertain_edges: 12 }).unwrap();
        for (b, &p) in d.iter() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            let pe = b.existence_prob(&g).unwrap();
            prop_assert!(p <= pe + 1e-12, "{}: P={} > Pr[E]={}", b, p, pe);
        }
        // Worlds credit ≥1 butterfly each among ties, so the mass summed
        // per weight-class can't exceed... total mass can exceed 1 only
        // via ties; with the mass restricted to distinct-weight classes it
        // is ≤ 1. Check the coarse bound: mass ≤ number of butterflies.
        prop_assert!(d.total_mass() <= d.len() as f64 + 1e-9);
    }

    /// Both OLS estimators, given the full butterfly set as candidates,
    /// agree with exact enumeration within Monte-Carlo tolerance.
    #[test]
    fn estimators_converge_to_exact(edges in arb_graph(), seed in 0u64..100) {
        let g = build(&edges);
        let all = enumerate_backbone_butterflies(&g);
        if all.is_empty() {
            return Ok(());
        }
        let cs = CandidateSet::from_butterflies(&g, all);
        let exact = exact_distribution(&g, ExactConfig { max_uncertain_edges: 12 }).unwrap();
        let trials = 8_000;
        let opt = estimate_optimized(&g, &cs, trials, seed);
        let kl = estimate_karp_luby(&g, &cs, KlTrialPolicy::Fixed(trials), seed);
        for (b, &p) in exact.iter() {
            // 4/sqrt(N) ≈ 0.045 tolerance: generous enough to avoid
            // flakes, tight enough to catch systematic bias.
            prop_assert!((opt.prob(b) - p).abs() < 0.05, "opt {}: {} vs {}", b, opt.prob(b), p);
            prop_assert!((kl.distribution.prob(b) - p).abs() < 0.05, "kl {}: {} vs {}", b, kl.distribution.prob(b), p);
        }
    }

    /// The §III-B reduction on random *chain-like* (sound) formulas:
    /// exact P(target) equals #SAT/2ⁿ.
    #[test]
    fn reduction_equality_on_sound_instances(n in 2u32..7, extra in 0usize..3) {
        let mut clauses: Vec<(u32, u32)> = (1..n).map(|i| (i, i + 1)).collect();
        // A few unit clauses keep the instance interesting but sound.
        for k in 0..extra {
            let v = (k as u32 % n) + 1;
            clauses.push((v, v));
        }
        let f = mpmb_core::Monotone2Sat::new(n, clauses);
        let r = mpmb_core::Reduction::build(f);
        if r.is_exactly_sound() {
            let p = r.exact_target_prob().unwrap();
            prop_assert!((p - r.claimed_prob()).abs() < 1e-12, "{} vs {}", p, r.claimed_prob());
        } else {
            // Accidental butterflies only ever suppress the target.
            let p = r.exact_target_prob().unwrap();
            prop_assert!(p <= r.claimed_prob() + 1e-12);
        }
    }

    /// Sampling with ANY seed never reports a butterfly that exact
    /// enumeration assigns probability zero (impossible butterflies).
    #[test]
    fn sampling_never_reports_impossible_butterflies(edges in arb_graph(), seed in 0u64..50) {
        let g = build(&edges);
        let d = mpmb_core::OrderingSampling::new(OsConfig { trials: 300, seed, ..Default::default() }).run(&g);
        let exact = exact_distribution(&g, ExactConfig { max_uncertain_edges: 12 }).unwrap();
        for (b, &p) in d.iter() {
            prop_assert!(p >= 0.0);
            prop_assert!(exact.prob(b) > 0.0, "{} sampled but exactly impossible", b);
        }
    }

    /// Top-k is a prefix of the full sorted ranking, and ranking is
    /// stable/deterministic.
    #[test]
    fn top_k_is_prefix_of_sorted(edges in arb_graph()) {
        let g = build(&edges);
        let d = exact_distribution(&g, ExactConfig { max_uncertain_edges: 12 }).unwrap();
        let full = d.sorted();
        for k in 0..=full.len() {
            prop_assert_eq!(&d.top_k(k)[..], &full[..k]);
        }
        if let Some((b, p)) = d.mpmb() {
            prop_assert_eq!(full[0], (b, p));
        }
    }
}
