//! Observability must be *free of observable effects* on solver output:
//! with a trace sink enabled, a profile + solver-metrics context
//! installed, and a forkable observer attached, every engine must
//! produce accumulators bit-identical to an uninstrumented run — at
//! thread counts 1 and 4 (the ISSUE-4 acceptance matrix).
//!
//! The trace sink is process-global, so this test binary enables a file
//! sink (to a scratch path) once and leaves it on for all cases; the
//! uninstrumented baselines are computed in a worker thread *without*
//! an installed context before the sink is turned on, per case.

use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
use mpmb_core::{
    backbone_candidate_set, Butterfly, Cancel, CandidateSet, ConvergenceTracker, Executor,
    KarpLubyTrials, KlCandidate, KlTrialPolicy, McVpConfig, McVpTrials, OlsConfig, OptimizedTrials,
    OsConfig, OsTrials, PrepareTrials, QueryTrials, Tally,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const OBS_THREADS: [usize; 2] = [1, 4];

/// Same generator as the engine proptests: ≤ 24 edges over a 6×6 grid
/// so multi-butterfly graphs are common.
fn arb_graph() -> impl Strategy<Value = Vec<(u32, u32, f64, f64)>> {
    proptest::collection::btree_set((0u32..6, 0u32..6), 0..=24).prop_flat_map(|pairs| {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let n = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(0u32..=64, n..=n),
            proptest::collection::vec(0u32..=10, n..=n),
        )
            .prop_map(|(pairs, ws, ps)| {
                pairs
                    .into_iter()
                    .zip(ws.iter().zip(ps.iter()))
                    .map(|((u, v), (&w, &p))| (u, v, w as f64 / 4.0, p as f64 / 10.0))
                    .collect()
            })
    })
}

fn build(edges: &[(u32, u32, f64, f64)]) -> UncertainBipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, w, p) in edges {
        b.add_edge(Left(u), Right(v), w, p).unwrap();
    }
    b.build().unwrap()
}

fn tally_bytes(t: &Tally) -> (u64, BTreeMap<Butterfly, u64>) {
    (t.trials(), t.counts().map(|(b, &c)| (*b, c)).collect())
}

fn kl_bytes(acc: &[(u32, KlCandidate)]) -> Vec<(u32, u64, u64, u64)> {
    let mut rows: Vec<_> = acc
        .iter()
        .map(|&(i, c)| (i, c.prob.to_bits(), c.trials, c.s_value.to_bits()))
        .collect();
    rows.sort_unstable();
    rows
}

/// Enables the global trace sink exactly once for this test process.
fn enable_trace_sink() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let path = std::env::temp_dir().join(format!("mpmb-obs-prop-{}.jsonl", std::process::id()));
        obs::set_sink_file(&path).expect("trace sink file");
    });
}

/// Runs `f` fully instrumented: trace sink on, a fresh profile and
/// solver-metrics context installed for the duration.
fn with_full_observability<T>(f: impl FnOnce() -> T) -> (T, Arc<obs::Profile>) {
    enable_trace_sink();
    let profile = Arc::new(obs::Profile::new());
    let registry = Arc::new(obs::Registry::new());
    let solver = Arc::new(obs::SolverMetrics::new(registry));
    let trace_id = obs::next_trace_id();
    let guard = obs::install(obs::ObsCtx {
        trace_id: Some(trace_id.clone()),
        span: Some(obs::SpanContext::root(trace_id)),
        profile: Some(profile.clone()),
        solver: Some(solver),
    });
    let out = f();
    drop(guard);
    (out, profile)
}

/// Runs `f` with no context on the current thread. The sink may already
/// be on globally (it must not matter — that is the point of the test),
/// so "uninstrumented" here means: no trace id, no profile, no solver
/// metrics, no observer.
fn without_ctx<T>(f: impl FnOnce() -> T) -> T {
    let guard = obs::install(obs::ObsCtx::default());
    let out = f();
    drop(guard);
    out
}

proptest! {
    /// OS and MC-VP tallies: instrumented (trace + profile + solver
    /// metrics + forkable observer) equals uninstrumented, bitwise, at
    /// threads 1 and 4.
    #[test]
    fn tally_engines_unchanged_by_observability(
        edges in arb_graph(),
        seed in 0u64..1_000,
    ) {
        let g = build(&edges);
        let trials = 160u64;
        let os = OsTrials::new(&g, &OsConfig { trials, seed, ..Default::default() });
        let mcvp = McVpTrials::new(&g, &McVpConfig { trials, seed });

        let os_base = without_ctx(|| Executor::new(1).run(&os, trials, &Cancel::never()));
        let mc_base = without_ctx(|| Executor::new(1).run(&mcvp, trials, &Cancel::never()));

        for threads in OBS_THREADS {
            let ((os_obs, mc_obs, tracker_trials), profile) = with_full_observability(|| {
                // A forkable observer rides along so the parallel
                // fork/absorb path is exercised too.
                let target = os_base.acc.counts().next().map(|(b, _)| *b);
                let mut tracker = target.map(|t| ConvergenceTracker::new(t, 16));
                let os_obs = match tracker.as_mut() {
                    Some(tr) => Executor::new(threads)
                        .run_with_observer(&os, trials, &Cancel::never(), tr),
                    None => Executor::new(threads).run(&os, trials, &Cancel::never()),
                };
                let mc_obs = Executor::new(threads).run(&mcvp, trials, &Cancel::never());
                (os_obs, mc_obs, tracker.map(|t| t.trials()))
            });
            prop_assert_eq!(
                tally_bytes(&os_obs.acc),
                tally_bytes(&os_base.acc),
                "os threads={}", threads
            );
            prop_assert_eq!(
                tally_bytes(&mc_obs.acc),
                tally_bytes(&mc_base.acc),
                "mcvp threads={}", threads
            );
            // The observer saw every trial, even on the parallel path.
            if let Some(seen) = tracker_trials {
                prop_assert_eq!(seen, trials);
            }
            // And the profile actually captured the phases.
            let phases: Vec<String> =
                profile.snapshot().into_iter().map(|p| p.name).collect();
            prop_assert!(phases.contains(&"os.sample".to_string()));
            prop_assert!(phases.contains(&"mcvp.sample".to_string()));
        }
    }

    /// The full OLS pipeline (prepare → listing → optimized estimator)
    /// and Karp-Luby: candidate sets and accumulators are bit-identical
    /// with observability on, at threads 1 and 4.
    #[test]
    fn ols_and_kl_unchanged_by_observability(
        edges in arb_graph(),
        seed in 0u64..1_000,
    ) {
        let g = build(&edges);
        let cfg = OlsConfig { prep_trials: 48, seed, ..Default::default() };
        let prep = PrepareTrials::new(&g, &cfg);
        let (base_cands, kl_base) = without_ctx(|| {
            let union = Executor::new(1).run(&prep, cfg.prep_trials, &Cancel::never()).acc;
            let cands = prep.finalize(union);
            let kl_base = (!cands.is_empty()).then(|| {
                let kl = KarpLubyTrials::new(&g, &cands, KlTrialPolicy::Fixed(64), seed);
                Executor::new(1).check_every(1).run(&kl, kl.trials(), &Cancel::never()).acc
            });
            (cands, kl_base)
        });
        let opt_base = (!base_cands.is_empty()).then(|| without_ctx(|| {
            let opt = OptimizedTrials::new(&g, &base_cands, seed);
            Executor::new(1).run(&opt, 120, &Cancel::never())
        }));

        for threads in OBS_THREADS {
            let (cands, _) = with_full_observability(|| {
                let union = Executor::new(threads)
                    .run(&prep, cfg.prep_trials, &Cancel::never())
                    .acc;
                prep.finalize(union)
            });
            prop_assert_eq!(cands.len(), base_cands.len(), "threads={}", threads);
            for i in 0..cands.len() {
                prop_assert_eq!(cands.get(i).butterfly, base_cands.get(i).butterfly);
                prop_assert_eq!(
                    cands.get(i).weight.to_bits(),
                    base_cands.get(i).weight.to_bits()
                );
            }
            if let Some(base) = &opt_base {
                let (obs_run, profile) = with_full_observability(|| {
                    let opt = OptimizedTrials::new(&g, &base_cands, seed);
                    Executor::new(threads).run(&opt, 120, &Cancel::never())
                });
                prop_assert_eq!(
                    tally_bytes(&obs_run.acc),
                    tally_bytes(&base.acc),
                    "optimized threads={}", threads
                );
                prop_assert!(profile
                    .snapshot()
                    .iter()
                    .any(|p| p.name == "ols.sample" && p.items == 120));
            }
            if let Some(base) = &kl_base {
                let (obs_acc, _) = with_full_observability(|| {
                    let kl = KarpLubyTrials::new(&g, &base_cands, KlTrialPolicy::Fixed(64), seed);
                    Executor::new(threads)
                        .check_every(1)
                        .run(&kl, kl.trials(), &Cancel::never())
                        .acc
                });
                prop_assert_eq!(kl_bytes(&obs_acc), kl_bytes(base), "kl threads={}", threads);
            }
        }
    }

    /// Conditioned queries and the parallel candidate-set build are
    /// likewise untouched by instrumentation.
    #[test]
    fn query_and_listing_unchanged_by_observability(
        edges in arb_graph(),
        seed in 0u64..1_000,
    ) {
        let g = build(&edges);
        let base_set = without_ctx(|| backbone_candidate_set(&g, 1));
        for threads in OBS_THREADS {
            let (set, _) = with_full_observability(|| backbone_candidate_set(&g, threads));
            prop_assert_eq!(set.len(), base_set.len());
            for i in 0..set.len() {
                prop_assert_eq!(set.get(i).butterfly, base_set.get(i).butterfly);
            }
        }
        if base_set.is_empty() {
            return Ok(());
        }
        let target = base_set.get(0).butterfly;
        let query = QueryTrials::new(&g, &target, seed).expect("backbone butterfly");
        let trials = 96u64;
        let base_hits = without_ctx(|| {
            Executor::new(1).run(&query, trials, &Cancel::never()).acc
        });
        for threads in OBS_THREADS {
            let (hits, _) = with_full_observability(|| {
                Executor::new(threads).run(&query, trials, &Cancel::never()).acc
            });
            prop_assert_eq!(hits, base_hits, "query threads={}", threads);
        }
    }
}

/// The `--profile` acceptance shape on a fixed graph: engine phases are
/// recorded with exact trial counts, and the recorded durations are
/// consistent (each phase no longer than the whole instrumented run).
#[test]
fn profile_phase_items_match_trials() {
    let g = {
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                b.add_edge(Left(u), Right(v), (u * 4 + v) as f64, 0.5)
                    .unwrap();
            }
        }
        b.build().unwrap()
    };
    let cfg = OlsConfig {
        prep_trials: 32,
        seed: 7,
        ..Default::default()
    };
    let prep = PrepareTrials::new(&g, &cfg);
    let started = std::time::Instant::now();
    let ((), profile) = with_full_observability(|| {
        let union = Executor::new(2)
            .run(&prep, cfg.prep_trials, &Cancel::never())
            .acc;
        let cands = prep.finalize(union);
        assert!(!cands.is_empty());
        let opt = OptimizedTrials::new(&g, &cands, 7);
        let _ = Executor::new(2).run(&opt, 200, &Cancel::never());
    });
    let wall = started.elapsed().as_secs_f64();
    let snap = profile.snapshot();
    let get = |name: &str| snap.iter().find(|p| p.name == name).cloned();
    let prep_phase = get("ols.prepare").expect("prepare phase recorded");
    assert_eq!(prep_phase.items, 32);
    let listing = get("ols.listing").expect("listing phase recorded");
    assert!(listing.items > 0);
    let sample = get("ols.sample").expect("sampling phase recorded");
    assert_eq!(sample.items, 200);
    assert!(profile.total_secs() <= wall * 1.5 + 0.05);
    let _ = CandidateSet::from_butterflies(&g, Vec::new());
}
