#![warn(missing_docs)]

//! Counting global allocator — the measurement substrate for the paper's
//! memory-consumption experiment (Fig. 13).
//!
//! Wraps the system allocator and tracks live bytes plus a resettable
//! high-water mark. Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: memtrack::CountingAllocator = memtrack::CountingAllocator;
//! ```
//!
//! and then bracket a workload with [`reset_peak`] / [`peak_bytes`]. The
//! counters are relaxed atomics: the ordering of concurrent updates does
//! not matter for a high-water mark that is only read after the workload
//! joins its threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A `GlobalAlloc` that forwards to [`System`] and counts bytes.
pub struct CountingAllocator;

impl CountingAllocator {
    #[inline]
    fn on_alloc(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        // CAS loop: only grow the peak.
        let mut peak = PEAK.load(Ordering::Relaxed);
        while live > peak {
            match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    #[inline]
    fn on_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: all methods delegate to `System`, which upholds the GlobalAlloc
// contract; the byte counters never influence the returned pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        Self::on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

/// Bytes currently allocated (approximate under concurrency).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live byte count.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Runs `f` and returns `(result, peak_bytes_above_start)`: the extra peak
/// memory the workload required beyond what was already live.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = live_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is only installed in binaries that opt in, so
    // in this test binary the counters are touched exclusively by the
    // assertions below. They share global state, hence a single serial
    // test exercising the whole lifecycle.
    #[test]
    fn counter_lifecycle() {
        // Alloc moves live and peak.
        let live0 = live_bytes();
        let peak0 = peak_bytes();
        CountingAllocator::on_alloc(1000);
        assert_eq!(live_bytes(), live0 + 1000);
        assert!(peak_bytes() >= peak0);

        // Dealloc lowers live, never peak.
        let peak_hi = peak_bytes();
        CountingAllocator::on_dealloc(1000);
        assert_eq!(live_bytes(), live0);
        assert_eq!(peak_bytes(), peak_hi);

        // reset_peak snaps the mark down to live.
        CountingAllocator::on_alloc(4096);
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
        CountingAllocator::on_dealloc(4096);

        // measure_peak reports the delta above the baseline.
        let (v, peak) = measure_peak(|| {
            CountingAllocator::on_alloc(1 << 20);
            CountingAllocator::on_dealloc(1 << 20);
            42
        });
        assert_eq!(v, 42);
        assert!(peak >= 1 << 20, "peak {peak}");
    }
}
