//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! Implements exactly what the daemon needs: request line + headers +
//! `Content-Length` bodies, keep-alive, and fixed-size guards against
//! oversized requests. No chunked transfer encoding (requests with it
//! get 411), no TLS.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on request head (request line + headers) bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on declared body size.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method, e.g. `GET`.
    pub method: String,
    /// Path component (query string split off).
    pub path: String,
    /// Raw query string without `?` (empty if none).
    pub query: String,
    /// Lowercased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Request body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open.
    pub fn keep_alive(&self) -> bool {
        // HTTP/1.1 defaults to keep-alive unless `Connection: close`.
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any request bytes (client closed an idle
    /// keep-alive connection) — not an error worth answering.
    Closed,
    /// Socket-level failure or timeout.
    Io(std::io::Error),
    /// Malformed or unsupported request; the server should answer with
    /// this status and close.
    Bad {
        /// HTTP status to answer with.
        status: u16,
        /// Human-readable reason, sent in the JSON error body.
        msg: String,
    },
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn bad(status: u16, msg: impl Into<String>) -> ReadError {
    ReadError::Bad {
        status,
        msg: msg.into(),
    }
}

/// Reads one request from a buffered stream.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut line = String::new();
    let mut head_bytes = 0usize;

    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(ReadError::Closed);
    }
    head_bytes += n;
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| bad(400, "empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad(400, "missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(505, format!("unsupported version `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(bad(400, "eof inside headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad(431, "request head too large"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| bad(400, format!("malformed header `{trimmed}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if matches!(req.header("transfer-encoding"), Some(v) if !v.eq_ignore_ascii_case("identity")) {
        return Err(bad(
            411,
            "chunked bodies not supported; send Content-Length",
        ));
    }
    let len: usize = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| bad(400, format!("bad Content-Length `{v}`")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(bad(413, "body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Request { body, ..req })
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content type (`application/json` for everything but `/metrics`).
    pub content_type: &'static str,
    /// Extra response headers (name, value), written verbatim.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds one response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// A JSON error envelope `{"error": msg}`.
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(
            status,
            crate::json::Json::obj([("error", crate::json::Json::Str(msg.to_string()))])
                .to_string(),
        )
    }

    /// Prometheus text exposition.
    pub fn metrics_text(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }
}

/// Status line reason phrases for the codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes `resp` to the stream. `close` controls the `Connection` header.
pub fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}
