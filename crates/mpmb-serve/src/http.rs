//! Hand-rolled HTTP/1.x request parsing and response writing.
//!
//! Implements exactly what the daemon needs: request line + headers +
//! `Content-Length` bodies, keep-alive, and fixed-size guards against
//! oversized requests. No chunked transfer encoding (requests with it
//! get 411), no TLS.
//!
//! The edge is hardened against misbehaving clients: head reads are
//! budgeted byte-by-byte so a request line with no newline cannot
//! buffer more than [`MAX_HEAD_BYTES`] before the 431 fires, duplicate
//! `Content-Length` headers with conflicting values are rejected with
//! 400 (the classic request-smuggling vector), and HTTP/1.0 requests
//! default to `Connection: close` per RFC 9112 — an HTTP/1.0 client
//! that never sends `Connection: keep-alive` gets its connection closed
//! after the response instead of hanging until the idle timeout.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on request head (request line + headers) bytes. Also
/// bounds how much a single headerless line can buffer before 431.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on declared body size.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method, e.g. `GET`.
    pub method: String,
    /// Path component (query string split off).
    pub path: String,
    /// Raw query string without `?` (empty if none).
    pub query: String,
    /// Protocol version token, e.g. `HTTP/1.1`. Drives the keep-alive
    /// default: HTTP/1.0 closes unless asked, HTTP/1.1 keeps open
    /// unless told to close.
    pub version: String,
    /// Lowercased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Request body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open.
    ///
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let connection = self.header("connection");
        if self.version == "HTTP/1.0" {
            matches!(connection, Some(v) if v.eq_ignore_ascii_case("keep-alive"))
        } else {
            !matches!(connection, Some(v) if v.eq_ignore_ascii_case("close"))
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any request bytes (client closed an idle
    /// keep-alive connection) — not an error worth answering.
    Closed,
    /// Socket-level failure or timeout.
    Io(std::io::Error),
    /// Malformed or unsupported request; the server should answer with
    /// this status and close.
    Bad {
        /// HTTP status to answer with.
        status: u16,
        /// Human-readable reason, sent in the JSON error body.
        msg: String,
    },
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn bad(status: u16, msg: impl Into<String>) -> ReadError {
    ReadError::Bad {
        status,
        msg: msg.into(),
    }
}

/// Reads one `\n`-terminated line, consuming at most `*budget` bytes
/// from the head allowance. Returns `None` on clean EOF before any
/// byte of this line. A line that exhausts the budget without a
/// newline is a 431 — crucially, *before* buffering anything beyond
/// the allowance, so an attacker streaming an endless request line
/// costs at most [`MAX_HEAD_BYTES`] of memory.
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    budget: &mut usize,
) -> Result<Option<String>, ReadError> {
    let mut raw: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if raw.is_empty() {
                return Ok(None);
            }
            return Err(bad(400, "eof inside request head"));
        }
        let window = available.len().min(*budget);
        match available[..window].iter().position(|&b| b == b'\n') {
            Some(pos) => {
                raw.extend_from_slice(&available[..pos + 1]);
                reader.consume(pos + 1);
                *budget -= pos + 1;
                let text = String::from_utf8(raw)
                    .map_err(|_| bad(400, "request head is not valid UTF-8"))?;
                return Ok(Some(text));
            }
            None if available.len() >= *budget => {
                return Err(bad(431, "request head too large"));
            }
            None => {
                raw.extend_from_slice(available);
                let n = available.len();
                reader.consume(n);
                *budget -= n;
            }
        }
    }
}

/// Reads one request from a buffered stream.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut budget = MAX_HEAD_BYTES;

    let line = match read_line_limited(reader, &mut budget)? {
        None => return Err(ReadError::Closed),
        Some(l) => l,
    };
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| bad(400, "empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad(400, "missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(505, format!("unsupported version `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = match read_line_limited(reader, &mut budget)? {
            None => return Err(bad(400, "eof inside headers")),
            Some(l) => l,
        };
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| bad(400, format!("malformed header `{trimmed}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = Request {
        method,
        path,
        query,
        version: version.to_string(),
        headers,
        body: Vec::new(),
    };

    if matches!(req.header("transfer-encoding"), Some(v) if !v.eq_ignore_ascii_case("identity")) {
        return Err(bad(
            411,
            "chunked bodies not supported; send Content-Length",
        ));
    }
    // Duplicate Content-Length headers are fine if they agree; with
    // conflicting values there is no safe interpretation (a proxy in
    // front may have picked the other one), so reject.
    let mut lengths = req
        .headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .map(|(_, v)| v.as_str());
    let len: usize = match lengths.next() {
        None => 0,
        Some(first) => {
            if lengths.any(|v| v != first) {
                return Err(bad(400, "conflicting Content-Length headers"));
            }
            first
                .parse()
                .map_err(|_| bad(400, format!("bad Content-Length `{first}`")))?
        }
    };
    if len > MAX_BODY_BYTES {
        return Err(bad(413, "body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Request { body, ..req })
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content type (`application/json` for everything but `/metrics`).
    pub content_type: &'static str,
    /// Extra response headers (name, value), written verbatim.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds one response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// A JSON error envelope `{"error": msg}`.
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(
            status,
            crate::json::Json::obj([("error", crate::json::Json::Str(msg.to_string()))])
                .to_string(),
        )
    }

    /// A binary response (the cluster's internal range protocol).
    pub fn octets(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/octet-stream",
            headers: Vec::new(),
            body,
        }
    }

    /// Prometheus text exposition.
    pub fn metrics_text(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }
}

/// Status line reason phrases for the codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Renders the status line and headers (through the terminating blank
/// line) for `resp`. Shared by the normal write path and the
/// fault-injection degraded writers, which need the raw bytes.
pub fn render_head(resp: &Response, close: bool) -> String {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    head
}

/// Writes `resp` to the stream. `close` controls the `Connection` header.
pub fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> std::io::Result<()> {
    stream.write_all(render_head(resp, close).as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(version: &str, headers: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: "/".to_string(),
            query: String::new(),
            version: version.to_string(),
            headers: headers
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        }
    }

    #[test]
    fn http11_defaults_to_keep_alive() {
        assert!(request("HTTP/1.1", &[]).keep_alive());
        assert!(!request("HTTP/1.1", &[("connection", "close")]).keep_alive());
        assert!(!request("HTTP/1.1", &[("connection", "CLOSE")]).keep_alive());
    }

    #[test]
    fn http10_defaults_to_close() {
        assert!(!request("HTTP/1.0", &[]).keep_alive());
        assert!(request("HTTP/1.0", &[("connection", "keep-alive")]).keep_alive());
        assert!(request("HTTP/1.0", &[("connection", "Keep-Alive")]).keep_alive());
        assert!(!request("HTTP/1.0", &[("connection", "close")]).keep_alive());
    }

    #[test]
    fn render_head_carries_extra_headers() {
        let resp = Response::json(429, "{}").with_header("Retry-After", "1");
        let head = render_head(&resp, true);
        assert!(head.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(head.contains("Retry-After: 1\r\n"));
        assert!(head.contains("Connection: close\r\n"));
        assert!(head.ends_with("\r\n\r\n"));
    }
}
