#![warn(missing_docs)]

//! `mpmb-serve`: a long-running MPMB query daemon.
//!
//! Serves the repo's solvers over hand-rolled HTTP/1.1 (std-only, like
//! everything else in the workspace) with:
//!
//! * a **graph registry** — named graphs loaded once from files
//!   ([`bigraph::io::read_auto`]) or the synthetic Table III stand-ins
//!   ([`datasets`]), shared read-only across requests;
//! * **endpoints** mapping 1:1 onto the CLI: `POST /v1/solve`,
//!   `/v1/query`, `/v1/count`, `/v1/topk`, `GET /v1/graphs`,
//!   `POST /v1/graphs`, `GET /healthz`;
//! * a **deterministic result cache** — solvers are pure functions of
//!   `(graph, method, trials, seed, …)`, so finished responses replay
//!   verbatim, and timed-out requests cache their resumable
//!   [`solve::PartialState`] so a repeat *refines* the answer instead
//!   of restarting at trial zero;
//! * **robustness** — per-request deadlines with cancellable solver
//!   loops (503 + partial trial counts), a bounded accept queue with
//!   429 load shedding, and graceful SIGTERM/SIGINT drain;
//! * **observability** — `GET /metrics` in Prometheus text format
//!   (request, cache, and solver-phase series on one [`obs`] registry),
//!   per-request trace ids honoring and echoing `X-Request-Id`,
//!   JSON-lines access/span traces behind a runtime-selectable sink,
//!   and `GET /debug/trace` with recent solve phase breakdowns;
//! * **sharded multi-node serving** — `--role coordinator` scatters
//!   each request's trial budget across `--workers` over an internal
//!   range protocol and gathers byte-identical answers at any worker
//!   count, re-dispatching remaining trials when a worker dies
//!   mid-range (see [`cluster`] and `docs/CLUSTER.md`).
//!
//! See `docs/SERVING.md` for the full API reference.

pub mod cache;
pub mod checkpoint;
pub mod client;
pub mod cluster;
pub mod fault;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod signal;
pub mod solve;

pub use cache::{CacheEntry, ResultCache};
pub use checkpoint::ManifestEntry;
pub use checkpoint::{CheckpointStore, LoadOutcome, Snapshot};
pub use client::{call_retry, call_retry_expect, ClientError, Retried, RetryPolicy};
pub use cluster::{Cluster, ClusterError, Role};
pub use fault::{FaultAction, FaultPlan};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use metrics::Metrics;
pub use registry::{GraphHandle, Registry, RegistryError};
pub use server::{AppState, Server, ServerConfig, SolveTrace};
pub use solve::{
    advance_count, advance_query, advance_solve, Cancel, CountProgress, Outcome, Partial,
    PartialState, Progress, QueryProgress, SolveProgress, CHECK_EVERY,
};
