//! Static-list cluster membership with health probing.
//!
//! The worker set is fixed at startup (`--workers host:port,...`);
//! what changes at runtime is each member's up/down bit. A member goes
//! down when a scattered call fails at the transport layer or a
//! periodic `GET /healthz` probe fails, and comes back the moment a
//! probe succeeds — crashed-and-restarted workers rejoin without
//! operator action. Every flip is visible as a per-worker
//! `mpmb_cluster_worker_up{worker="addr"}` gauge.
//!
//! `/healthz` is exempt from fault injection (see [`crate::fault`]),
//! so a fault plan that mangles solve traffic cannot also blind the
//! prober — workers under chaos stay probed, exactly like production
//! health checks bypass request middleware.

use crate::client;
use crate::metrics::Metrics;
use obs::{Gauge, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One configured worker.
pub(crate) struct Member {
    /// `host:port` the worker listens on.
    pub addr: String,
    up: AtomicBool,
    gauge: Arc<Gauge>,
}

/// The fixed worker list plus each member's liveness bit.
pub(crate) struct Membership {
    members: Vec<Member>,
}

impl Membership {
    /// Builds the member list, all optimistically up, registering one
    /// up/down gauge per worker on `registry`.
    pub fn new(addrs: Vec<String>, registry: &Arc<Registry>) -> Membership {
        let members = addrs
            .into_iter()
            .map(|addr| {
                let gauge = registry.gauge_with(
                    "mpmb_cluster_worker_up",
                    "Whether the coordinator believes this worker is healthy.",
                    &[("worker", &addr)],
                );
                gauge.set(1);
                Member {
                    addr,
                    up: AtomicBool::new(true),
                    gauge,
                }
            })
            .collect();
        Membership { members }
    }

    /// Total configured workers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// The address of member `i`.
    pub fn addr(&self, i: usize) -> &str {
        &self.members[i].addr
    }

    /// Indices of members currently believed up, in list order — the
    /// deterministic round-robin order scatter assignment uses.
    pub fn healthy(&self) -> Vec<usize> {
        (0..self.members.len())
            .filter(|&i| self.members[i].up.load(Ordering::SeqCst))
            .collect()
    }

    /// Marks member `i` down (failed call or probe).
    pub fn mark_down(&self, i: usize) {
        self.members[i].up.store(false, Ordering::SeqCst);
        self.members[i].gauge.set(0);
    }

    /// Marks member `i` up (successful probe).
    pub fn mark_up(&self, i: usize) {
        self.members[i].up.store(true, Ordering::SeqCst);
        self.members[i].gauge.set(1);
    }

    /// Probes every member's `/healthz` once, flipping up/down bits to
    /// match reality. Failed probes bump
    /// `mpmb_cluster_probe_failures_total`. Returns how many members
    /// are up afterwards.
    pub fn probe_all(&self, metrics: &Metrics) -> usize {
        let mut up = 0usize;
        for i in 0..self.members.len() {
            if self.probe_one(i) {
                self.mark_up(i);
                up += 1;
            } else {
                metrics.cluster_probe_failures.inc();
                self.mark_down(i);
            }
        }
        up
    }

    /// One `GET /healthz` round trip; healthy iff it answers 200.
    fn probe_one(&self, i: usize) -> bool {
        matches!(
            client::call_raw(
                self.addr(i),
                "GET",
                "/healthz",
                b"",
                "application/json",
                &[]
            ),
            Ok((200, _, _))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_bits_flip_and_render() {
        let metrics = Metrics::default();
        let m = Membership::new(
            vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            metrics.registry(),
        );
        assert_eq!(m.healthy(), vec![0, 1]);
        m.mark_down(0);
        assert_eq!(m.healthy(), vec![1]);
        assert!(metrics
            .render()
            .contains("mpmb_cluster_worker_up{worker=\"127.0.0.1:1\"} 0"));
        m.mark_up(0);
        assert_eq!(m.healthy(), vec![0, 1]);
    }

    #[test]
    fn probing_dead_addresses_marks_everything_down() {
        // Bind-then-drop: the port is (almost surely) unoccupied.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let metrics = Metrics::default();
        let m = Membership::new(vec![dead], metrics.registry());
        assert_eq!(m.probe_all(&metrics), 0);
        assert!(m.healthy().is_empty());
        assert_eq!(metrics.cluster_probe_failures.get(), 1);
    }
}
