//! Order-insensitive absorption of worker partials into the master.
//!
//! Each [`PartialState`] variant wraps a [`mpmb_core::Partial`]; this
//! module lifts [`Partial::absorb`] to the state level, pairing each
//! variant with its accumulator's merge operation — the same merges
//! the in-process [`mpmb_core::Executor`] uses when it joins per-chunk
//! accumulators. That symmetry is the heart of the cluster's
//! determinism argument: whether a trial range ran on a local thread
//! or a remote worker, the bytes that reach the finalizer are the
//! same.
//!
//! `absorb` validates before it merges — trial spaces must match and
//! done-ranges must be disjoint — so a worker that answers for the
//! wrong request shape is rejected as a protocol violation instead of
//! silently corrupting the master accumulator.

use super::ClusterError;
use crate::solve::PartialState;
use mpmb_core::engine::{AbsorbError, Partial};
use mpmb_core::Tally;
use std::ops::Range;

/// `(trials_done, trials_requested)` of the wrapped partial. For the
/// two-phase states this is phase-2-local (preparing is accounted by
/// the coordinator, which runs it).
pub(crate) fn progress_of(state: &PartialState) -> (u64, u64) {
    fn of<A>(p: &Partial<A>) -> (u64, u64) {
        (p.trials_done(), p.trials_requested())
    }
    match state {
        PartialState::Os(p) | PartialState::McVp(p) => of(p),
        PartialState::OlsPrepare(p) => of(p),
        PartialState::OlsSample { partial, .. } => of(partial),
        PartialState::Kl { partial, .. } => of(partial),
        PartialState::Query(p) => of(p),
        PartialState::Count(p) => of(p),
        PartialState::Fast(p) => of(p),
    }
}

/// Whether every trial of the wrapped partial's space has run.
pub(crate) fn completed(state: &PartialState) -> bool {
    let (done, requested) = progress_of(state);
    done == requested
}

/// The gaps still to dispatch, in ascending order.
pub(crate) fn missing_of(state: &PartialState) -> Vec<Range<u64>> {
    match state {
        PartialState::Os(p) | PartialState::McVp(p) => p.missing(),
        PartialState::OlsPrepare(p) => p.missing(),
        PartialState::OlsSample { partial, .. } => partial.missing(),
        PartialState::Kl { partial, .. } => partial.missing(),
        PartialState::Query(p) => p.missing(),
        PartialState::Count(p) => p.missing(),
        PartialState::Fast(p) => p.missing(),
    }
}

fn absorb_err(e: AbsorbError) -> ClusterError {
    ClusterError::Protocol(e.to_string())
}

/// Absorbs a worker's returned partial into the master. Both sides
/// must be the same variant over the same trial space, with disjoint
/// done-ranges; anything else is a [`ClusterError::Protocol`]. The
/// master is untouched on failure.
pub(crate) fn absorb_state(
    master: &mut PartialState,
    piece: PartialState,
) -> Result<(), ClusterError> {
    fn merge_tally(acc: &mut Tally, other: Tally) {
        acc.merge(other);
    }
    match (master, piece) {
        (PartialState::Os(m), PartialState::Os(p)) => m.absorb(p, merge_tally).map_err(absorb_err),
        (PartialState::McVp(m), PartialState::McVp(p)) => {
            m.absorb(p, merge_tally).map_err(absorb_err)
        }
        (
            PartialState::OlsSample { partial: m, .. },
            PartialState::OlsSample { partial: p, .. },
        ) => m.absorb(p, merge_tally).map_err(absorb_err),
        (PartialState::Kl { partial: m, .. }, PartialState::Kl { partial: p, .. }) => m
            .absorb(p, |acc, rows| acc.extend(rows))
            .map_err(absorb_err),
        (PartialState::Query(m), PartialState::Query(p)) => {
            m.absorb(p, |acc, hits| *acc += hits).map_err(absorb_err)
        }
        (PartialState::Count(m), PartialState::Count(p)) => m
            .absorb(p, |acc, hist| {
                for (count, occurrences) in hist {
                    *acc.entry(count).or_insert(0) += occurrences;
                }
            })
            .map_err(absorb_err),
        (PartialState::Fast(m), PartialState::Fast(p)) => m
            .absorb(p, |acc, rows| acc.extend(rows))
            .map_err(absorb_err),
        (master, piece) => Err(ClusterError::Protocol(format!(
            "range response kind `{}` does not match request kind `{}`",
            piece.kind(),
            master.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
    use mpmb_core::engine::Cancel;
    use mpmb_core::{Executor, OsConfig, OsTrials};

    fn graph() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.build().unwrap()
    }

    fn os_piece(g: &UncertainBipartiteGraph, range: Range<u64>, total: u64) -> PartialState {
        let engine = OsTrials::new(
            g,
            &OsConfig {
                trials: total,
                seed: 9,
                ..Default::default()
            },
        );
        PartialState::Os(Executor::new(1).run_subrange(&engine, range, total, &Cancel::never()))
    }

    #[test]
    fn absorbing_disjoint_pieces_completes_the_master() {
        let g = graph();
        let mut master = os_piece(&g, 0..40, 120);
        assert_eq!(missing_of(&master), vec![40..120]);
        // Absorb out of order: the merge is order-insensitive.
        absorb_state(&mut master, os_piece(&g, 80..120, 120)).unwrap();
        absorb_state(&mut master, os_piece(&g, 40..80, 120)).unwrap();
        assert!(completed(&master));
        assert_eq!(progress_of(&master), (120, 120));
    }

    #[test]
    fn overlap_and_kind_mismatch_are_protocol_errors() {
        let g = graph();
        let mut master = os_piece(&g, 0..40, 120);
        let overlap = os_piece(&g, 30..50, 120);
        assert!(matches!(
            absorb_state(&mut master, overlap),
            Err(ClusterError::Protocol(_))
        ));
        // Master untouched by the failed absorb.
        assert_eq!(progress_of(&master), (40, 120));

        let wrong_space = os_piece(&g, 40..60, 200);
        assert!(absorb_state(&mut master, wrong_space).is_err());

        let mcvp = {
            let engine = mpmb_core::McVpTrials::new(
                &g,
                &mpmb_core::McVpConfig {
                    trials: 120,
                    seed: 9,
                },
            );
            PartialState::McVp(Executor::new(1).run_subrange(
                &engine,
                40..60,
                120,
                &Cancel::never(),
            ))
        };
        assert!(matches!(
            absorb_state(&mut master, mcvp),
            Err(ClusterError::Protocol(_))
        ));
    }
}
