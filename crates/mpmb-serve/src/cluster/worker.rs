//! The worker half of the range protocol:
//! `POST /v1/internal/solve-range`.
//!
//! A worker is an ordinary server that additionally answers range
//! calls: decode the frame, look up the graph, build the exact engine
//! a single-node run would build (same config, same seed), and execute
//! just the requested index range through
//! [`mpmb_core::Executor::run_subrange`]. The response is the framed
//! [`PartialState`] — the same bytes a local run's checkpoint of that
//! range would hold.
//!
//! A worker that hits its own `--timeout-ms` mid-range still answers
//! `200` with whatever prefix of the range completed: partial coverage
//! is a *legitimate* response, and the coordinator re-dispatches only
//! the remaining trials. Only malformed frames (400), unknown graphs
//! (404), and unknown methods (400) are errors.
//!
//! When a v2 request carries the coordinator's trace context, the
//! worker re-installs its observability context around the range — the
//! coordinator's trace id with a fresh per-hop span id parented on the
//! dispatching span. A `cluster.range.served` event emitted under that
//! context is the worker-side anchor of the cross-node timeline (it
//! lands in the worker's own trace sink *under the coordinator's trace
//! id*), and the per-phase profile is shipped back in the response for
//! stitching.

use super::proto::{self, RangeRequest};
use crate::http::{Request, Response};
use crate::server::AppState;
use crate::solve::{Cancel, PartialState};
use bigraph::UncertainBipartiteGraph;
use mpmb_core::{
    CountTrials, Executor, KarpLubyTrials, KlTrialPolicy, McVpConfig, McVpTrials, OlsConfig,
    OptimizedTrials, OsConfig, OsTrials, SublinearTrials,
};
use std::sync::Arc;
use std::time::Instant;

/// Handles one range call end to end.
pub(crate) fn handle_solve_range(state: &AppState, req: &Request) -> Response {
    let started = Instant::now();
    let (rr, version) = match RangeRequest::decode_versioned(&req.body) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &format!("bad range request: {e}")),
    };
    // Join the coordinator's trace: same trace id, fresh hop span id,
    // parented on the dispatching span. The request-scoped profile and
    // solver metrics installed by the HTTP layer carry over, so the
    // phases recorded below are exactly this range's.
    let outer = obs::current();
    let _trace_guard = rr.trace.as_ref().map(|t| {
        let sc = obs::SpanContext::child_of(Arc::from(t.trace_id.as_str()), t.parent_span);
        obs::install(obs::ObsCtx {
            trace_id: Some(Arc::clone(&sc.trace_id)),
            span: Some(sc),
            profile: outer.profile.clone(),
            solver: outer.solver.clone(),
        })
    });
    let entry = match state.registry.get(&rr.graph) {
        Some(e) => e,
        None => {
            return Response::error(404, &format!("graph `{}` is not registered here", rr.graph))
        }
    };
    // Materialize (container-backed graphs load lazily); the Arc pins
    // the graph against eviction for the duration of the range.
    let graph = match state.registry.materialize(&entry) {
        Ok(g) => g,
        Err(e) => return Response::error(503, &format!("graph unavailable: {e}")),
    };
    let threads = (rr.threads.max(1) as usize).min(state.solver_thread_cap);
    let cancel = Cancel::at(state.timeout.map(|t| Instant::now() + t));
    match solve_range(&graph, &rr, threads, &cancel) {
        Ok(partial) => {
            let (done, _) = super::merge::progress_of(&partial);
            state.metrics.trials_executed.add(done);
            let phases = outer.profile.as_ref().map(|p| p.snapshot());
            // Emitted while the hop context is installed: this line in
            // the worker's own sink carries the coordinator's trace id
            // and the dispatching span as parent. (An event, not a
            // span — it must not feed the profile shipped above, or
            // the stitched budget would double-count the range.)
            obs::event(
                "cluster.range.served",
                &[
                    ("graph", rr.graph.as_str().into()),
                    ("method", rr.method.as_str().into()),
                    ("start", rr.start.into()),
                    ("end", rr.end.into()),
                    ("done", done.into()),
                    ("dur_us", (started.elapsed().as_micros() as u64).into()),
                ],
            );
            Response::octets(
                200,
                proto::encode_response(version, &partial, phases.as_deref()),
            )
        }
        Err(msg) => Response::error(400, &msg),
    }
}

/// Runs `[start, end)` of the request's trial space and returns the
/// covered partial. The partial spans the *full* space (so the
/// coordinator can absorb it directly); its done-set covers the prefix
/// of the range that completed before `cancel` fired.
fn solve_range(
    g: &UncertainBipartiteGraph,
    rr: &RangeRequest,
    threads: usize,
    cancel: &Cancel,
) -> Result<PartialState, String> {
    let exec = Executor::new(threads);
    let range = rr.start..rr.end;
    match rr.method.as_str() {
        "os" => {
            if rr.end > rr.trials {
                return Err(format!("range {range:?} escapes 0..{}", rr.trials));
            }
            let engine = OsTrials::new(
                g,
                &OsConfig {
                    trials: rr.trials,
                    seed: rr.seed,
                    ..Default::default()
                },
            );
            Ok(PartialState::Os(
                exec.run_subrange(&engine, range, rr.trials, cancel),
            ))
        }
        "mcvp" => {
            if rr.end > rr.trials {
                return Err(format!("range {range:?} escapes 0..{}", rr.trials));
            }
            let engine = McVpTrials::new(
                g,
                &McVpConfig {
                    trials: rr.trials,
                    seed: rr.seed,
                },
            );
            Ok(PartialState::McVp(
                exec.run_subrange(&engine, range, rr.trials, cancel),
            ))
        }
        "ols" => {
            let candidates = rr
                .candidates
                .clone()
                .ok_or("ols range requires a candidate set")?;
            if rr.end > rr.trials {
                return Err(format!("range {range:?} escapes 0..{}", rr.trials));
            }
            let cfg = ols_config(rr);
            let engine = OptimizedTrials::new(g, &candidates, cfg.sample_seed());
            let partial = exec.run_subrange(&engine, range, rr.trials, cancel);
            Ok(PartialState::OlsSample {
                candidates,
                partial,
            })
        }
        "ols-kl" => {
            let candidates = rr
                .candidates
                .clone()
                .ok_or("ols-kl range requires a candidate set")?;
            let total = candidates.len() as u64;
            if rr.end > total {
                return Err(format!("range {range:?} escapes 0..{total} candidates"));
            }
            let cfg = ols_config(rr);
            let engine = KarpLubyTrials::new(
                g,
                &candidates,
                KlTrialPolicy::Fixed(rr.trials),
                cfg.sample_seed(),
            );
            // One KL "trial" is a whole candidate: check the deadline
            // per candidate, matching the single-node driver.
            let partial = exec
                .check_every(1)
                .run_subrange(&engine, range, total, cancel);
            Ok(PartialState::Kl {
                candidates,
                partial,
            })
        }
        "count" => {
            if rr.end > rr.trials {
                return Err(format!("range {range:?} escapes 0..{}", rr.trials));
            }
            let engine = CountTrials::new(g, rr.seed);
            Ok(PartialState::Count(
                exec.run_subrange(&engine, range, rr.trials, cancel),
            ))
        }
        "fast" => {
            if rr.end > rr.trials {
                return Err(format!("range {range:?} escapes 0..{}", rr.trials));
            }
            let engine = SublinearTrials::new(g, rr.seed);
            Ok(PartialState::Fast(
                exec.run_subrange(&engine, range, rr.trials, cancel),
            ))
        }
        other => Err(format!(
            "unknown range method `{other}` (expected os|mcvp|ols|ols-kl|count|fast)"
        )),
    }
}

/// The OLS config a single-node run would use for these parameters —
/// seeding (notably `sample_seed()`) must match exactly.
fn ols_config(rr: &RangeRequest) -> OlsConfig {
    OlsConfig {
        prep_trials: rr.prep,
        seed: rr.seed,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::merge;
    use bigraph::{GraphBuilder, Left, Right};

    fn graph() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn rr(method: &str, trials: u64, start: u64, end: u64) -> RangeRequest {
        RangeRequest {
            graph: "g".to_string(),
            method: method.to_string(),
            trials,
            prep: 60,
            seed: 17,
            threads: 2,
            start,
            end,
            candidates: None,
            trace: None,
        }
    }

    #[test]
    fn os_range_pieces_reassemble_the_full_run() {
        let g = graph();
        // Full-space reference through the same engine.
        let engine = OsTrials::new(
            &g,
            &OsConfig {
                trials: 900,
                seed: 17,
                ..Default::default()
            },
        );
        let full = Executor::new(2).run_subrange(&engine, 0..900, 900, &Cancel::never());
        let reference: Vec<_> = full.acc.counts().map(|(b, c)| (*b, *c)).collect();

        let mut master = solve_range(&g, &rr("os", 900, 0, 300), 1, &Cancel::never()).unwrap();
        for (s, e) in [(600, 900), (300, 600)] {
            let piece = solve_range(&g, &rr("os", 900, s, e), 2, &Cancel::never()).unwrap();
            merge::absorb_state(&mut master, piece).unwrap();
        }
        assert!(merge::completed(&master));
        match master {
            PartialState::Os(p) => {
                let got: Vec<_> = p.acc.counts().map(|(b, c)| (*b, *c)).collect();
                assert_eq!(got, reference);
            }
            other => panic!("wrong variant: {}", other.kind()),
        }
    }

    #[test]
    fn fast_range_pieces_reassemble_the_full_run() {
        let g = graph();
        let engine = SublinearTrials::new(&g, 17);
        let full = Executor::new(2).run_subrange(&engine, 0..900, 900, &Cancel::never());
        let reference = engine.finalize(full.acc, 0.1);

        let mut master = solve_range(&g, &rr("fast", 900, 0, 300), 1, &Cancel::never()).unwrap();
        for (s, e) in [(600, 900), (300, 600)] {
            let piece = solve_range(&g, &rr("fast", 900, s, e), 2, &Cancel::never()).unwrap();
            merge::absorb_state(&mut master, piece).unwrap();
        }
        assert!(merge::completed(&master));
        match master {
            PartialState::Fast(p) => {
                let got = engine.finalize(p.acc, 0.1);
                assert_eq!(got.estimate.to_bits(), reference.estimate.to_bits());
                assert_eq!(got.ci_high.to_bits(), reference.ci_high.to_bits());
            }
            other => panic!("wrong variant: {}", other.kind()),
        }
    }

    #[test]
    fn ols_ranges_require_candidates() {
        let g = graph();
        assert!(solve_range(&g, &rr("ols", 500, 0, 100), 1, &Cancel::never()).is_err());
        assert!(solve_range(&g, &rr("ols-kl", 50, 0, 1), 1, &Cancel::never()).is_err());
    }

    #[test]
    fn out_of_space_ranges_are_rejected() {
        let g = graph();
        assert!(solve_range(&g, &rr("os", 100, 50, 150), 1, &Cancel::never()).is_err());
        assert!(solve_range(&g, &rr("nope", 100, 0, 10), 1, &Cancel::never()).is_err());
    }

    #[test]
    fn expired_deadline_yields_partial_range_coverage() {
        let g = graph();
        let partial = solve_range(
            &g,
            &rr("os", 1_000_000, 0, 1_000_000),
            1,
            &Cancel::after_trials(200),
        )
        .unwrap();
        let (done, requested) = merge::progress_of(&partial);
        assert!(done > 0 && done < requested, "done={done}");
        // The covered prefix starts at the range start.
        assert_eq!(merge::missing_of(&partial), vec![done..1_000_000]);
    }
}
