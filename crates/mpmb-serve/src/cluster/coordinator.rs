//! The coordinator half: deterministic scatter-gather over workers.
//!
//! `advance_cluster_solve` mirrors [`crate::solve::advance_solve`]
//! phase for phase, with one difference: wherever the single-node
//! driver hands a trial space to the in-process
//! [`mpmb_core::Executor`], the coordinator splits the *missing*
//! ranges of the master partial with the canonical
//! [`mpmb_core::chunk_ranges`] partition, posts each range to a
//! worker, and absorbs the returned partials. Preparing (`ols`,
//! `ols-kl` phase 1) runs locally on the coordinator — it is cheap,
//! and shipping its [`CandidateSet`] output with every range request
//! means workers never re-run it.
//!
//! Determinism: a trial's result is a function of its index alone, and
//! absorption is order-insensitive, so the master accumulator after
//! gather is byte-identical to a local run's — the finalization step
//! literally *is* the single-node code path, called with the fully
//! covered master state. Worker count, range boundaries, retries, and
//! re-dispatches can change scheduling only, never bytes.
//!
//! Failure: a range call that dies in transport (or returns bytes that
//! fail the frame checksum) marks its worker down and leaves the range
//! missing; the next round re-dispatches the *remaining* trials — a
//! worker that timed out mid-range keeps its completed prefix. If the
//! coordinator's own deadline fires first, the partially assembled
//! master is returned as an ordinary resumable partial and lands in
//! the result cache, so a retried request continues the gather instead
//! of restarting it.

use super::proto::RangeRequest;
use super::{merge, proto, Cluster, ClusterError};
use crate::client::{self, ClientError, RetryPolicy};
use crate::server::AppState;
use crate::solve::{
    self, Cancel, CountProgress, FastProgress, Outcome, PartialState, Progress, SolveProgress,
};
use bigraph::UncertainBipartiteGraph;
use mpmb_core::engine::Partial;
use mpmb_core::{
    chunk_ranges, CandidateSet, Executor, KarpLubyTrials, OlsConfig, PrepareTrials, Tally,
    TrialEngine,
};
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a range request carries besides the range itself.
struct ScatterSpec<'a> {
    graph: &'a str,
    method: &'a str,
    trials: u64,
    prep: u64,
    seed: u64,
    threads: u64,
    candidates: Option<&'a CandidateSet>,
}

/// Starts or resumes a scattered solve. Mirrors
/// [`solve::advance_solve`]'s contract: `prior` must come from the
/// same request key, and the completed result is bit-identical to a
/// single-node run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_cluster_solve(
    state: &AppState,
    cluster: &Cluster,
    graph_name: &str,
    g: &UncertainBipartiteGraph,
    method: &str,
    trials: u64,
    prep: u64,
    seed: u64,
    threads: usize,
    prior: Option<PartialState>,
    cancel: &Cancel,
) -> Result<SolveProgress, ClusterError> {
    match method {
        "os" | "mcvp" => {
            let mut master = match (method, prior) {
                ("os", None) => PartialState::Os(Partial::empty(Tally::new(), trials)),
                ("mcvp", None) => PartialState::McVp(Partial::empty(Tally::new(), trials)),
                ("os", Some(s @ PartialState::Os(_)))
                | ("mcvp", Some(s @ PartialState::McVp(_))) => s,
                (_, Some(other)) => return Err(mismatch(method, &other)),
                _ => unreachable!(),
            };
            let spec = ScatterSpec {
                graph: graph_name,
                method,
                trials,
                prep,
                seed,
                threads: threads as u64,
                candidates: None,
            };
            let executed = scatter(state, cluster, &spec, &mut master, cancel)?;
            finish(g, method, trials, prep, seed, master, executed, 0)
        }
        "ols" | "ols-kl" => advance_cluster_ols(
            state, cluster, graph_name, g, method, trials, prep, seed, threads, prior, cancel,
        ),
        other => Err(ClusterError::BadRequest(format!(
            "unknown method `{other}` (expected os|mcvp|ols|ols-kl)"
        ))),
    }
}

/// The two-phase OLS pipeline: preparing runs locally (resumable,
/// exactly like the single-node driver), estimation scatters.
#[allow(clippy::too_many_arguments)]
fn advance_cluster_ols(
    state: &AppState,
    cluster: &Cluster,
    graph_name: &str,
    g: &UncertainBipartiteGraph,
    method: &str,
    trials: u64,
    prep: u64,
    seed: u64,
    threads: usize,
    prior: Option<PartialState>,
    cancel: &Cancel,
) -> Result<SolveProgress, ClusterError> {
    let cfg = OlsConfig {
        prep_trials: prep,
        seed,
        ..Default::default()
    };
    let mut executed = 0u64;
    let (candidates, mut master) = match prior {
        None | Some(PartialState::OlsPrepare(_)) => {
            let prep_engine = PrepareTrials::new(g, &cfg);
            let mut p = match prior {
                Some(PartialState::OlsPrepare(p)) => p,
                _ => Partial::empty(prep_engine.new_acc(), prep),
            };
            let before = p.trials_done();
            Executor::new(threads).resume(&prep_engine, &mut p, cancel);
            executed += p.trials_done() - before;
            if !p.completed() {
                let trials_done = p.trials_done();
                return Ok(Progress {
                    outcome: Outcome::Incomplete(PartialState::OlsPrepare(p)),
                    trials_done,
                    trials_requested: prep + trials,
                    executed,
                });
            }
            let candidates = prep_engine.finalize(p.acc);
            let master = if method == "ols" {
                PartialState::OlsSample {
                    candidates: candidates.clone(),
                    partial: Partial::empty(Tally::new(), trials),
                }
            } else {
                let n = candidates.len() as u64;
                PartialState::Kl {
                    candidates: candidates.clone(),
                    partial: Partial::empty(Vec::new(), n),
                }
            };
            (candidates, master)
        }
        Some(s @ PartialState::OlsSample { .. }) if method == "ols" => {
            let PartialState::OlsSample { candidates, .. } = &s else {
                unreachable!()
            };
            (candidates.clone(), s)
        }
        Some(s @ PartialState::Kl { .. }) if method == "ols-kl" => {
            let PartialState::Kl { candidates, .. } = &s else {
                unreachable!()
            };
            (candidates.clone(), s)
        }
        Some(other) => return Err(mismatch(method, &other)),
    };
    let spec = ScatterSpec {
        graph: graph_name,
        method,
        trials,
        prep,
        seed,
        threads: threads as u64,
        candidates: Some(&candidates),
    };
    executed += scatter(state, cluster, &spec, &mut master, cancel)?;
    finish(g, method, trials, prep, seed, master, executed, prep)
}

/// Starts or resumes a scattered `/v1/count` run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_cluster_count(
    state: &AppState,
    cluster: &Cluster,
    graph_name: &str,
    g: &UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
    threads: usize,
    prior: Option<PartialState>,
    cancel: &Cancel,
) -> Result<CountProgress, ClusterError> {
    let mut master = match prior {
        None => PartialState::Count(Partial::empty(Default::default(), trials)),
        Some(s @ PartialState::Count(_)) => s,
        Some(other) => return Err(mismatch("count", &other)),
    };
    let spec = ScatterSpec {
        graph: graph_name,
        method: "count",
        trials,
        prep: 0,
        seed,
        threads: threads as u64,
        candidates: None,
    };
    let executed = scatter(state, cluster, &spec, &mut master, cancel)?;
    if merge::completed(&master) {
        let mut progress = solve::advance_count(g, trials, seed, 1, Some(master), &Cancel::never())
            .map_err(ClusterError::BadRequest)?;
        progress.executed = executed;
        Ok(progress)
    } else {
        let (done, requested) = merge::progress_of(&master);
        Ok(Progress {
            outcome: Outcome::Incomplete(master),
            trials_done: done,
            trials_requested: requested,
            executed,
        })
    }
}

/// Starts or resumes a scattered fast-tier (sublinear) estimate.
/// `delta` affects only finalization, so it never travels with the
/// range requests — workers return raw per-trial rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_cluster_fast(
    state: &AppState,
    cluster: &Cluster,
    graph_name: &str,
    g: &UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
    delta: f64,
    threads: usize,
    prior: Option<PartialState>,
    cancel: &Cancel,
) -> Result<FastProgress, ClusterError> {
    let mut master = match prior {
        None => PartialState::Fast(Partial::empty(Vec::new(), trials)),
        Some(s @ PartialState::Fast(_)) => s,
        Some(other) => return Err(mismatch("fast", &other)),
    };
    let spec = ScatterSpec {
        graph: graph_name,
        method: "fast",
        trials,
        prep: 0,
        seed,
        threads: threads as u64,
        candidates: None,
    };
    let executed = scatter(state, cluster, &spec, &mut master, cancel)?;
    if merge::completed(&master) {
        let mut progress =
            solve::advance_fast(g, trials, seed, delta, 1, Some(master), &Cancel::never())
                .map_err(ClusterError::BadRequest)?;
        progress.executed = executed;
        Ok(progress)
    } else {
        let (done, requested) = merge::progress_of(&master);
        Ok(Progress {
            outcome: Outcome::Incomplete(master),
            trials_done: done,
            trials_requested: requested,
            executed,
        })
    }
}

/// Broadcasts a graph-registration body to every *healthy* worker. A
/// worker answering 409 already has the graph; that is success. Down
/// members are skipped so a dead worker cannot block registration
/// forever — if the prober later revives one that missed a graph, its
/// solve-range 404 surfaces as a 502 and the client re-registers (the
/// broadcast is idempotent thanks to the 409 rule).
pub(crate) fn broadcast_register(cluster: &Cluster, body: &[u8]) -> Result<(), ClusterError> {
    for i in cluster.members.healthy() {
        let addr = cluster.members.addr(i);
        match client::call_retry_expect(
            addr,
            "POST",
            "/v1/graphs",
            body,
            "application/json",
            &cluster.retry,
        ) {
            Ok(_) => cluster.members.mark_up(i),
            Err(ClientError::Status { status: 409, .. }) => cluster.members.mark_up(i),
            Err(ClientError::Status { status, body }) => {
                return Err(ClusterError::Worker {
                    addr: addr.to_string(),
                    status,
                    body,
                })
            }
            Err(ClientError::Transport(e)) => {
                cluster.members.mark_down(i);
                return Err(ClusterError::Worker {
                    addr: addr.to_string(),
                    status: 0,
                    body: format!("transport error: {e}"),
                });
            }
        }
    }
    Ok(())
}

fn mismatch(method: &str, state: &PartialState) -> ClusterError {
    ClusterError::BadRequest(format!(
        "cached partial state `{}` does not match method `{method}`",
        state.kind()
    ))
}

/// Completed masters finalize through the *single-node* driver (which
/// executes zero trials on an already-covered partial and runs the
/// same finalization code, keeping the response bytes identical);
/// incomplete ones become a resumable [`Outcome::Incomplete`].
/// `prep` is added to the phase-2-local trial accounting.
#[allow(clippy::too_many_arguments)]
fn finish(
    g: &UncertainBipartiteGraph,
    method: &str,
    trials: u64,
    prep: u64,
    seed: u64,
    master: PartialState,
    executed: u64,
    prep_base: u64,
) -> Result<SolveProgress, ClusterError> {
    if merge::completed(&master) {
        let mut progress = solve::advance_solve(
            g,
            method,
            trials,
            prep,
            seed,
            1,
            Some(master),
            &Cancel::never(),
        )
        .map_err(ClusterError::BadRequest)?;
        progress.executed = executed;
        return Ok(progress);
    }
    let trials_done = prep_base + work_done(&master);
    Ok(Progress {
        outcome: Outcome::Incomplete(master),
        trials_done,
        trials_requested: prep_base + trials,
        executed,
    })
}

/// Executed-trial units of a state: actual Karp-Luby samples for `Kl`
/// (whose executor "trials" are whole candidates), covered trial
/// indices otherwise. Matches the single-node drivers' accounting.
fn work_done(state: &PartialState) -> u64 {
    match state {
        PartialState::Kl { partial, .. } => KarpLubyTrials::consumed(&partial.acc),
        other => merge::progress_of(other).0,
    }
}

/// How one range call failed.
enum CallFailure {
    /// No usable HTTP response (connect refused, reset, truncation) —
    /// or one whose frame failed to decode. The worker is suspect.
    WorkerLost(String),
    /// The worker is alive but overloaded or draining (429/503).
    Overloaded,
    /// The worker rejected the request outright — a config or protocol
    /// bug that re-dispatching cannot fix.
    Fatal {
        /// The worker's status code.
        status: u16,
        /// Its response body.
        body: String,
    },
}

/// Runs scatter rounds until the master is covered, the deadline
/// fires, or no worker can make progress. Returns the executed-trial
/// delta absorbed by this call.
fn scatter(
    state: &AppState,
    cluster: &Cluster,
    spec: &ScatterSpec<'_>,
    master: &mut PartialState,
    cancel: &Cancel,
) -> Result<u64, ClusterError> {
    let start_units = work_done(master);
    let mut round = 0u64;
    loop {
        if merge::completed(master) {
            return Ok(work_done(master) - start_units);
        }
        if cancel.expired() {
            // The caller caches the partial master; a retried request
            // resumes the gather from here.
            return Ok(work_done(master) - start_units);
        }
        let mut healthy = cluster.members.healthy();
        if healthy.is_empty() {
            // One synchronous probe round: workers that restarted
            // since they were marked down rejoin immediately.
            if cluster.members.probe_all(&state.metrics) == 0 {
                if work_done(master) > start_units {
                    return Ok(work_done(master) - start_units);
                }
                return Err(ClusterError::NoWorkers);
            }
            healthy = cluster.members.healthy();
        }

        let assignments = plan_assignments(&merge::missing_of(master), &healthy);
        state
            .metrics
            .cluster_ranges_dispatched
            .add(assignments.len() as u64);
        if round > 0 {
            state
                .metrics
                .cluster_redispatch
                .add(assignments.len() as u64);
        }
        round += 1;

        // Each range call gets its own hop in the trace tree: a child
        // span of this request's context, whose id the worker's
        // in-range spans then parent on. The spawned threads install
        // only the span context (no profile) so the `cluster.range`
        // timeline spans never double-count into the phase table —
        // stitching below attributes time precisely instead.
        let ctx = obs::current();
        let hops: Vec<Option<obs::SpanContext>> = assignments
            .iter()
            .map(|_| ctx.span.as_ref().map(|sc| sc.child()))
            .collect();
        let results: Vec<Result<RangeReply, CallFailure>> = std::thread::scope(|s| {
            let handles: Vec<_> = assignments
                .iter()
                .zip(&hops)
                .map(|((w, range), hop)| {
                    let addr = cluster.members.addr(*w);
                    let range = range.clone();
                    let retry = &cluster.retry;
                    let trace = hop.as_ref().map(|sc| proto::TraceContext {
                        trace_id: sc.trace_id.to_string(),
                        parent_span: sc.span_id,
                    });
                    let hop = hop.clone();
                    s.spawn(move || {
                        let _g = hop.map(|sc| {
                            obs::install(obs::ObsCtx {
                                trace_id: Some(Arc::clone(&sc.trace_id)),
                                span: Some(sc),
                                profile: None,
                                solver: None,
                            })
                        });
                        let mut sp = obs::span("cluster.range");
                        sp.items(range.end - range.start);
                        sp.field("worker", addr);
                        sp.field("range_start", range.start);
                        sp.field("range_end", range.end);
                        call_worker(addr, retry, spec, range, trace)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter thread panicked"))
                .collect()
        });

        let mut progressed = false;
        let mut transient_failures = 0usize;
        let mut merge_span = obs::span("cluster.merge");
        let mut absorbed = 0u64;
        for ((widx, range), result) in assignments.iter().zip(results) {
            match result {
                Ok(reply) => {
                    check_containment(&reply.state, range)?;
                    let before = merge::progress_of(master).0;
                    let covered = merge::progress_of(&reply.state).0;
                    merge::absorb_state(master, reply.state)?;
                    if merge::progress_of(master).0 > before {
                        progressed = true;
                    }
                    absorbed += covered;
                    stitch_reply(&ctx, cluster.members.addr(*widx), reply.phases, reply.wall);
                }
                Err(CallFailure::WorkerLost(reason)) => {
                    obs::event(
                        "cluster.worker_lost",
                        &[
                            ("worker", cluster.members.addr(*widx).into()),
                            ("range_start", range.start.into()),
                            ("range_end", range.end.into()),
                            ("reason", reason.into()),
                        ],
                    );
                    state.metrics.cluster_worker_errors.inc();
                    cluster.members.mark_down(*widx);
                    transient_failures += 1;
                }
                Err(CallFailure::Overloaded) => {
                    state.metrics.cluster_worker_errors.inc();
                    cluster.members.mark_down(*widx);
                    transient_failures += 1;
                }
                Err(CallFailure::Fatal { status, body }) => {
                    return Err(ClusterError::Worker {
                        addr: cluster.members.addr(*widx).to_string(),
                        status,
                        body,
                    });
                }
            }
        }
        merge_span.items(absorbed);
        drop(merge_span);
        if !progressed && transient_failures == 0 {
            // Every worker answered yet nothing advanced — e.g. worker
            // deadlines too short to finish a single check interval.
            // Erroring beats scattering the same ranges forever.
            return Err(ClusterError::Protocol(
                "scatter round completed without progress".to_string(),
            ));
        }
    }
}

/// Splits each missing gap across the healthy workers with the
/// canonical [`chunk_ranges`] partition, assigning pieces round-robin
/// in worker-list order. Pure, so the schedule is deterministic given
/// the same gaps and membership (the *answer* never depends on it).
fn plan_assignments(gaps: &[Range<u64>], healthy: &[usize]) -> Vec<(usize, Range<u64>)> {
    let mut assignments = Vec::new();
    let mut next = 0usize;
    for gap in gaps {
        for piece in chunk_ranges(gap.end - gap.start, healthy.len()) {
            if piece.start == piece.end {
                continue;
            }
            assignments.push((
                healthy[next % healthy.len()],
                gap.start + piece.start..gap.start + piece.end,
            ));
            next += 1;
        }
    }
    assignments
}

/// A successful range call: the worker's partial, its phase profile
/// (absent from v1 workers), and the call's wall time as seen from the
/// coordinator.
struct RangeReply {
    state: PartialState,
    phases: Option<Vec<obs::PhaseStat>>,
    wall: Duration,
}

/// Folds one worker reply into the request's profile: each returned
/// phase becomes a worker-labeled child entry (`addr/phase`), and the
/// gap between the call's wall time and the worker's own accounted
/// time is charged to `cluster.network`. A v1 worker returns no
/// profile — its whole call degrades to one `addr/unattributed` entry
/// rather than an error.
fn stitch_reply(
    ctx: &obs::ObsCtx,
    addr: &str,
    phases: Option<Vec<obs::PhaseStat>>,
    wall: Duration,
) {
    let Some(profile) = &ctx.profile else { return };
    match phases {
        Some(phases) => {
            let accounted: f64 = phases.iter().map(|p| p.secs).sum();
            for p in &phases {
                profile.absorb(&format!("{addr}/{}", p.name), p.secs, p.items, p.calls);
            }
            let overhead = wall.as_secs_f64() - accounted;
            if overhead > 0.0 {
                profile.absorb("cluster.network", overhead, 0, 1);
            }
        }
        None => profile.absorb(&format!("{addr}/unattributed"), wall.as_secs_f64(), 0, 1),
    }
}

/// One framed range call with retries; classifies the failure. A
/// worker that rejects the v2 frame with `BadVersion` (pre-trace
/// build) gets the same range re-sent as a v1 frame without the trace
/// context — mixed-version clusters lose attribution, never answers.
fn call_worker(
    addr: &str,
    retry: &RetryPolicy,
    spec: &ScatterSpec<'_>,
    range: Range<u64>,
    trace: Option<proto::TraceContext>,
) -> Result<RangeReply, CallFailure> {
    let started = Instant::now();
    let request = RangeRequest {
        graph: spec.graph.to_string(),
        method: spec.method.to_string(),
        trials: spec.trials,
        prep: spec.prep,
        seed: spec.seed,
        threads: spec.threads,
        start: range.start,
        end: range.end,
        candidates: spec.candidates.cloned(),
        trace,
    };
    let result = match post_range(addr, retry, &request.encode()) {
        Err(CallFailure::Fatal {
            status: 400,
            ref body,
        }) if body.contains("unsupported format version") => {
            obs::event(
                "cluster.proto_downgrade",
                &[("worker", addr.into()), ("version", 1u64.into())],
            );
            post_range(addr, retry, &request.encode_v1())
        }
        other => other,
    };
    result.map(|(state, phases)| RangeReply {
        state,
        phases,
        wall: started.elapsed(),
    })
}

/// Posts one already-encoded frame and decodes the reply.
fn post_range(
    addr: &str,
    retry: &RetryPolicy,
    frame: &[u8],
) -> Result<(PartialState, Option<Vec<obs::PhaseStat>>), CallFailure> {
    match client::call_retry_expect(
        addr,
        "POST",
        "/v1/internal/solve-range",
        frame,
        "application/octet-stream",
        retry,
    ) {
        Ok((_headers, bytes, _retries)) => proto::decode_response(&bytes)
            .map_err(|e| CallFailure::WorkerLost(format!("undecodable response: {e}"))),
        Err(ClientError::Transport(e)) => Err(CallFailure::WorkerLost(e.to_string())),
        Err(ClientError::Status {
            status: 429 | 503, ..
        }) => Err(CallFailure::Overloaded),
        Err(ClientError::Status { status, body }) => Err(CallFailure::Fatal { status, body }),
    }
}

/// A worker must only cover trials inside its assigned range; anything
/// else is a protocol violation (absorb would additionally catch
/// overlaps, but out-of-range coverage in untouched space would pass
/// silently without this check).
fn check_containment(piece: &PartialState, assigned: &Range<u64>) -> Result<(), ClusterError> {
    let (_, requested) = merge::progress_of(piece);
    let mut cursor = 0u64;
    let mut done = Vec::new();
    for gap in merge::missing_of(piece) {
        if cursor < gap.start {
            done.push(cursor..gap.start);
        }
        cursor = gap.end;
    }
    if cursor < requested {
        done.push(cursor..requested);
    }
    for r in done {
        if r.start < assigned.start || r.end > assigned.end {
            return Err(ClusterError::Protocol(format!(
                "worker covered {r:?} outside its assigned range {assigned:?}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_covers_every_gap_exactly_once() {
        let gaps = vec![0..100u64, 250..260, 400..1000];
        let healthy = vec![0usize, 2, 5];
        let plan = plan_assignments(&gaps, &healthy);
        // Pieces tile the gaps in order, nothing dropped or duplicated.
        let mut covered: Vec<Range<u64>> = plan.iter().map(|(_, r)| r.clone()).collect();
        covered.sort_by_key(|r| r.start);
        let total: u64 = covered.iter().map(|r| r.end - r.start).sum();
        assert_eq!(total, 100 + 10 + 600);
        for w in covered.windows(2) {
            assert!(w[0].end <= w[1].start, "overlap: {w:?}");
        }
        // Every piece lands on a configured worker.
        assert!(plan.iter().all(|(w, _)| healthy.contains(w)));
        // A wide gap splits across all three workers.
        let wide: Vec<_> = plan.iter().filter(|(_, r)| r.start >= 400).collect();
        assert_eq!(wide.len(), 3);
        assert_eq!(
            wide.iter().map(|(w, _)| *w).collect::<Vec<_>>(),
            vec![0, 2, 5]
        );
    }

    #[test]
    fn tiny_gaps_produce_no_empty_assignments() {
        let plan = plan_assignments(std::slice::from_ref(&(10..12)), &[0, 1, 2, 3, 4]);
        assert!(plan.iter().all(|(_, r)| r.start < r.end));
        let total: u64 = plan.iter().map(|(_, r)| r.end - r.start).sum();
        assert_eq!(total, 2);
    }
}
