//! Wire protocol for `POST /v1/internal/solve-range`.
//!
//! Both directions are checksummed binary frames built on
//! [`bigraph::codec`] — the same encoding the durable checkpoint store
//! uses, so a range response is literally a framed
//! [`PartialState`] and the coordinator absorbs it with the exact
//! code path that absorbs a restored snapshot. JSON never touches the
//! internal path: accumulators carry `f64` weights whose bytes must
//! survive the round trip untouched for the cluster's bit-identity
//! guarantee to hold.
//!
//! Framing (via [`seal_frame`]) adds magic, version, and an FNV-1a
//! checksum, so a truncated or bit-flipped response (fault injection
//! does both) surfaces as a [`CodecError`] — never a wrong answer.
//!
//! The request ships the phase-2 candidate set for `ols`/`ols-kl`
//! ranges: preparing runs once on the coordinator and workers never
//! re-run it. Large candidate sets are bounded by the server's 4 MiB
//! request-body cap — a documented limitation of the v1 protocol.

use crate::checkpoint::{decode_state, encode_state};
use crate::solve::PartialState;
use bigraph::codec::{open_frame, seal_frame, CodecError, Decoder, Encoder};
use mpmb_core::{CandidateSet, Checkpoint};

/// Magic prefix of a range request frame.
pub(crate) const REQ_MAGIC: &[u8; 8] = b"MPMBRQ01";
/// Magic prefix of a range response frame.
pub(crate) const RESP_MAGIC: &[u8; 8] = b"MPMBRS01";
/// Protocol version, checked on both ends.
pub(crate) const VERSION: u32 = 1;

/// One scattered unit of work: run `[start, end)` of the method's
/// trial space (candidate indices for `ols-kl`, trial indices
/// otherwise) against the named graph, under the full-request
/// parameters so every engine is seeded identically to a single-node
/// run.
#[derive(Clone, Debug)]
pub(crate) struct RangeRequest {
    /// Registered graph name (must exist on the worker).
    pub graph: String,
    /// `os` | `mcvp` | `ols` | `ols-kl` | `count`.
    pub method: String,
    /// The full request's trial budget (KL per-candidate fixed count
    /// for `ols-kl`) — part of engine seeding, NOT this range's size.
    pub trials: u64,
    /// The full request's preparing budget (`ols`/`ols-kl` only).
    pub prep: u64,
    /// The full request's seed.
    pub seed: u64,
    /// Requested solver threads; the worker clamps to its own cap.
    pub threads: u64,
    /// First trial index of this range (inclusive).
    pub start: u64,
    /// One past the last trial index of this range.
    pub end: u64,
    /// Phase-1 output for `ols`/`ols-kl`, computed on the coordinator.
    pub candidates: Option<CandidateSet>,
}

impl RangeRequest {
    /// Seals this request into a checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.str(&self.graph);
        enc.str(&self.method);
        enc.u64(self.trials);
        enc.u64(self.prep);
        enc.u64(self.seed);
        enc.u64(self.threads);
        enc.u64(self.start);
        enc.u64(self.end);
        match &self.candidates {
            None => enc.u8(0),
            Some(c) => {
                enc.u8(1);
                c.encode(&mut enc);
            }
        }
        seal_frame(REQ_MAGIC, VERSION, &enc.into_bytes())
    }

    /// Opens and validates a request frame.
    pub fn decode(bytes: &[u8]) -> Result<RangeRequest, CodecError> {
        let (_version, payload) = open_frame(REQ_MAGIC, VERSION, bytes)?;
        let mut dec = Decoder::new(payload);
        let req = RangeRequest {
            graph: dec.str()?,
            method: dec.str()?,
            trials: dec.u64()?,
            prep: dec.u64()?,
            seed: dec.u64()?,
            threads: dec.u64()?,
            start: dec.u64()?,
            end: dec.u64()?,
            candidates: match dec.u8()? {
                0 => None,
                1 => Some(CandidateSet::decode(&mut dec)?),
                other => {
                    return Err(CodecError::Invalid(format!(
                        "candidates flag must be 0 or 1, got {other}"
                    )))
                }
            },
        };
        if dec.remaining() != 0 {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after range request",
                dec.remaining()
            )));
        }
        if req.start >= req.end {
            return Err(CodecError::Invalid(format!(
                "empty trial range {}..{}",
                req.start, req.end
            )));
        }
        Ok(req)
    }
}

/// Seals a worker's partial state into a response frame. The payload
/// is exactly the checkpoint encoding of [`PartialState`].
pub(crate) fn encode_response(state: &PartialState) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_state(state, &mut enc);
    seal_frame(RESP_MAGIC, VERSION, &enc.into_bytes())
}

/// Opens a response frame back into the worker's partial state.
pub(crate) fn decode_response(bytes: &[u8]) -> Result<PartialState, CodecError> {
    let (_version, payload) = open_frame(RESP_MAGIC, VERSION, bytes)?;
    let mut dec = Decoder::new(payload);
    let state = decode_state(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(CodecError::Invalid(format!(
            "{} trailing bytes after range response",
            dec.remaining()
        )));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
    use mpmb_core::engine::Cancel;
    use mpmb_core::{Executor, OlsConfig, OsConfig, OsTrials, PrepareTrials};

    fn request() -> RangeRequest {
        RangeRequest {
            graph: "g".to_string(),
            method: "os".to_string(),
            trials: 10_000,
            prep: 100,
            seed: 0x5EED,
            threads: 2,
            start: 2_500,
            end: 5_000,
            candidates: None,
        }
    }

    fn graph() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.build().unwrap()
    }

    fn candidates(g: &UncertainBipartiteGraph) -> CandidateSet {
        let cfg = OlsConfig {
            prep_trials: 50,
            seed: 7,
            ..Default::default()
        };
        let engine = PrepareTrials::new(g, &cfg);
        let partial = Executor::new(1).run_subrange(&engine, 0..50, 50, &Cancel::never());
        engine.finalize(partial.acc)
    }

    fn assert_same(a: &RangeRequest, b: &RangeRequest) {
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.method, b.method);
        assert_eq!(
            (a.trials, a.prep, a.seed, a.threads, a.start, a.end),
            (b.trials, b.prep, b.seed, b.threads, b.start, b.end)
        );
        match (&a.candidates, &b.candidates) {
            (None, None) => {}
            (Some(ca), Some(cb)) => {
                assert_eq!(ca.len(), cb.len());
                for i in 0..ca.len() {
                    assert_eq!(ca.get(i).butterfly, cb.get(i).butterfly);
                    assert_eq!(ca.get(i).weight, cb.get(i).weight);
                }
            }
            _ => panic!("candidates presence mismatch"),
        }
    }

    #[test]
    fn request_round_trips_with_and_without_candidates() {
        let plain = request();
        assert_same(&RangeRequest::decode(&plain.encode()).unwrap(), &plain);

        let g = graph();
        let with = RangeRequest {
            method: "ols".to_string(),
            candidates: Some(candidates(&g)),
            ..request()
        };
        assert_same(&RangeRequest::decode(&with.encode()).unwrap(), &with);
    }

    #[test]
    fn response_round_trips_partial_state() {
        let g = graph();
        let engine = OsTrials::new(
            &g,
            &OsConfig {
                trials: 100,
                seed: 3,
                ..Default::default()
            },
        );
        let partial = Executor::new(1).run_subrange(&engine, 10..20, 100, &Cancel::never());
        let counts: Vec<_> = partial.acc.counts().map(|(b, c)| (*b, *c)).collect();
        let frame = encode_response(&PartialState::Os(partial));
        match decode_response(&frame).unwrap() {
            PartialState::Os(p) => {
                assert_eq!(p.trials_done(), 10);
                assert_eq!(p.trials_requested(), 100);
                let back: Vec<_> = p.acc.counts().map(|(b, c)| (*b, *c)).collect();
                assert_eq!(back, counts);
            }
            other => panic!("wrong variant: {}", other.kind()),
        }
    }

    #[test]
    fn corrupted_frames_are_errors_not_panics() {
        let frame = request().encode();
        // Truncation at every prefix length.
        for cut in 0..frame.len() {
            assert!(RangeRequest::decode(&frame[..cut]).is_err());
        }
        // A flipped payload byte fails the checksum.
        let mut flipped = frame.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(RangeRequest::decode(&flipped).is_err());
        // An empty range is rejected even when well-framed.
        let empty = RangeRequest {
            start: 5,
            end: 5,
            ..request()
        };
        assert!(matches!(
            RangeRequest::decode(&empty.encode()),
            Err(CodecError::Invalid(_))
        ));
    }
}
