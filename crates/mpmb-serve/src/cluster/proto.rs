//! Wire protocol for `POST /v1/internal/solve-range`.
//!
//! Both directions are checksummed binary frames built on
//! [`bigraph::codec`] — the same encoding the durable checkpoint store
//! uses, so a range response is literally a framed
//! [`PartialState`] and the coordinator absorbs it with the exact
//! code path that absorbs a restored snapshot. JSON never touches the
//! internal path: accumulators carry `f64` weights whose bytes must
//! survive the round trip untouched for the cluster's bit-identity
//! guarantee to hold.
//!
//! Framing (via [`seal_frame`]) adds magic, version, and an FNV-1a
//! checksum, so a truncated or bit-flipped response (fault injection
//! does both) surfaces as a [`CodecError`] — never a wrong answer.
//!
//! The request ships the phase-2 candidate set for `ols`/`ols-kl`
//! ranges: preparing runs once on the coordinator and workers never
//! re-run it. Large candidate sets are bounded by the server's 4 MiB
//! request-body cap — a documented limitation of the v1 protocol.
//!
//! **v2** appends observability to both directions: requests may carry
//! the coordinator's trace context (trace id + parent span id), and
//! responses may carry the worker's per-phase profile for the range.
//! Both are strictly appended after the v1 layout, and decoders branch
//! on the frame's actual version, so a v2 node reads v1 frames (and
//! simply sees no trace context / no profile). A v1 worker rejects a
//! v2 *request* with `BadVersion`; the coordinator detects that
//! specific rejection and re-sends the range as a v1 frame — tracing
//! degrades to unattributed spans, correctness never does.

use crate::checkpoint::{decode_state, encode_state};
use crate::solve::PartialState;
use bigraph::codec::{open_frame, seal_frame, CodecError, Decoder, Encoder};
use mpmb_core::{CandidateSet, Checkpoint};

/// Magic prefix of a range request frame.
pub(crate) const REQ_MAGIC: &[u8; 8] = b"MPMBRQ01";
/// Magic prefix of a range response frame.
pub(crate) const RESP_MAGIC: &[u8; 8] = b"MPMBRS01";
/// Highest protocol version this build speaks; decoders accept
/// anything up to it and encoders can down-rev for old peers.
pub(crate) const VERSION: u32 = 2;
/// The pre-observability protocol: no trace context, no profiles.
pub(crate) const VERSION_1: u32 = 1;

/// The coordinator's position in the request's trace tree, shipped
/// inside a v2 range request so worker spans join the same trace.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct TraceContext {
    /// Trace id shared by every hop of the client request.
    pub trace_id: String,
    /// Span id of the coordinator hop dispatching this range.
    pub parent_span: u64,
}

/// One scattered unit of work: run `[start, end)` of the method's
/// trial space (candidate indices for `ols-kl`, trial indices
/// otherwise) against the named graph, under the full-request
/// parameters so every engine is seeded identically to a single-node
/// run.
#[derive(Clone, Debug)]
pub(crate) struct RangeRequest {
    /// Registered graph name (must exist on the worker).
    pub graph: String,
    /// `os` | `mcvp` | `ols` | `ols-kl` | `count`.
    pub method: String,
    /// The full request's trial budget (KL per-candidate fixed count
    /// for `ols-kl`) — part of engine seeding, NOT this range's size.
    pub trials: u64,
    /// The full request's preparing budget (`ols`/`ols-kl` only).
    pub prep: u64,
    /// The full request's seed.
    pub seed: u64,
    /// Requested solver threads; the worker clamps to its own cap.
    pub threads: u64,
    /// First trial index of this range (inclusive).
    pub start: u64,
    /// One past the last trial index of this range.
    pub end: u64,
    /// Phase-1 output for `ols`/`ols-kl`, computed on the coordinator.
    pub candidates: Option<CandidateSet>,
    /// Coordinator trace context (v2 frames only; absent on v1).
    pub trace: Option<TraceContext>,
}

impl RangeRequest {
    fn encode_common(&self, enc: &mut Encoder) {
        enc.str(&self.graph);
        enc.str(&self.method);
        enc.u64(self.trials);
        enc.u64(self.prep);
        enc.u64(self.seed);
        enc.u64(self.threads);
        enc.u64(self.start);
        enc.u64(self.end);
        match &self.candidates {
            None => enc.u8(0),
            Some(c) => {
                enc.u8(1);
                c.encode(enc);
            }
        }
    }

    /// Seals this request into a checksummed v2 frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_common(&mut enc);
        match &self.trace {
            None => enc.u8(0),
            Some(t) => {
                enc.u8(1);
                enc.str(&t.trace_id);
                enc.u64(t.parent_span);
            }
        }
        seal_frame(REQ_MAGIC, VERSION, &enc.into_bytes())
    }

    /// Seals this request as a v1 frame (trace context dropped), for
    /// workers that rejected the v2 encoding with `BadVersion`.
    pub fn encode_v1(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_common(&mut enc);
        seal_frame(REQ_MAGIC, VERSION_1, &enc.into_bytes())
    }

    /// Opens and validates a request frame, version discarded.
    #[cfg(test)]
    pub fn decode(bytes: &[u8]) -> Result<RangeRequest, CodecError> {
        Ok(RangeRequest::decode_versioned(bytes)?.0)
    }

    /// Opens a request frame, also returning the frame's version so
    /// the worker can mirror it on the response.
    pub fn decode_versioned(bytes: &[u8]) -> Result<(RangeRequest, u32), CodecError> {
        let (version, payload) = open_frame(REQ_MAGIC, VERSION, bytes)?;
        let mut dec = Decoder::new(payload);
        let mut req = RangeRequest {
            graph: dec.str()?,
            method: dec.str()?,
            trials: dec.u64()?,
            prep: dec.u64()?,
            seed: dec.u64()?,
            threads: dec.u64()?,
            start: dec.u64()?,
            end: dec.u64()?,
            candidates: match dec.u8()? {
                0 => None,
                1 => Some(CandidateSet::decode(&mut dec)?),
                other => {
                    return Err(CodecError::Invalid(format!(
                        "candidates flag must be 0 or 1, got {other}"
                    )))
                }
            },
            trace: None,
        };
        if version >= 2 {
            req.trace = match dec.u8()? {
                0 => None,
                1 => Some(TraceContext {
                    trace_id: dec.str()?,
                    parent_span: dec.u64()?,
                }),
                other => {
                    return Err(CodecError::Invalid(format!(
                        "trace flag must be 0 or 1, got {other}"
                    )))
                }
            };
        }
        if dec.remaining() != 0 {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after range request",
                dec.remaining()
            )));
        }
        if req.start >= req.end {
            return Err(CodecError::Invalid(format!(
                "empty trial range {}..{}",
                req.start, req.end
            )));
        }
        Ok((req, version))
    }
}

/// Seals a worker's partial state into a response frame of the given
/// version. The payload starts with exactly the checkpoint encoding of
/// [`PartialState`]; v2 appends the worker's phase profile for the
/// range (name, seconds-as-bits, items, calls per phase) so the
/// coordinator can stitch a cross-node timeline. `version` mirrors the
/// request frame's, so an old coordinator is never sent fields it
/// cannot read.
pub(crate) fn encode_response(
    version: u32,
    state: &PartialState,
    profile: Option<&[obs::PhaseStat]>,
) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_state(state, &mut enc);
    if version >= 2 {
        match profile {
            None => enc.u8(0),
            Some(phases) => {
                enc.u8(1);
                enc.u32(phases.len() as u32);
                for p in phases {
                    enc.str(&p.name);
                    enc.u64(p.secs.to_bits());
                    enc.u64(p.items);
                    enc.u64(p.calls);
                }
            }
        }
    }
    seal_frame(RESP_MAGIC, version.min(VERSION), &enc.into_bytes())
}

/// Opens a response frame back into the worker's partial state plus,
/// for v2 frames, its phase profile (a v1 worker's response simply has
/// none — the range shows up unattributed in the stitched trace).
pub(crate) fn decode_response(
    bytes: &[u8],
) -> Result<(PartialState, Option<Vec<obs::PhaseStat>>), CodecError> {
    let (version, payload) = open_frame(RESP_MAGIC, VERSION, bytes)?;
    let mut dec = Decoder::new(payload);
    let state = decode_state(&mut dec)?;
    let profile = if version >= 2 {
        match dec.u8()? {
            0 => None,
            1 => {
                let n = dec.u32()?;
                let mut phases = Vec::new();
                for _ in 0..n {
                    phases.push(obs::PhaseStat {
                        name: dec.str()?,
                        secs: f64::from_bits(dec.u64()?),
                        items: dec.u64()?,
                        calls: dec.u64()?,
                    });
                }
                Some(phases)
            }
            other => {
                return Err(CodecError::Invalid(format!(
                    "profile flag must be 0 or 1, got {other}"
                )))
            }
        }
    } else {
        None
    };
    if dec.remaining() != 0 {
        return Err(CodecError::Invalid(format!(
            "{} trailing bytes after range response",
            dec.remaining()
        )));
    }
    Ok((state, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
    use mpmb_core::engine::Cancel;
    use mpmb_core::{Executor, OlsConfig, OsConfig, OsTrials, PrepareTrials};

    fn request() -> RangeRequest {
        RangeRequest {
            graph: "g".to_string(),
            method: "os".to_string(),
            trials: 10_000,
            prep: 100,
            seed: 0x5EED,
            threads: 2,
            start: 2_500,
            end: 5_000,
            candidates: None,
            trace: None,
        }
    }

    fn graph() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.build().unwrap()
    }

    fn candidates(g: &UncertainBipartiteGraph) -> CandidateSet {
        let cfg = OlsConfig {
            prep_trials: 50,
            seed: 7,
            ..Default::default()
        };
        let engine = PrepareTrials::new(g, &cfg);
        let partial = Executor::new(1).run_subrange(&engine, 0..50, 50, &Cancel::never());
        engine.finalize(partial.acc)
    }

    fn assert_same(a: &RangeRequest, b: &RangeRequest) {
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.method, b.method);
        assert_eq!(
            (a.trials, a.prep, a.seed, a.threads, a.start, a.end),
            (b.trials, b.prep, b.seed, b.threads, b.start, b.end)
        );
        match (&a.candidates, &b.candidates) {
            (None, None) => {}
            (Some(ca), Some(cb)) => {
                assert_eq!(ca.len(), cb.len());
                for i in 0..ca.len() {
                    assert_eq!(ca.get(i).butterfly, cb.get(i).butterfly);
                    assert_eq!(ca.get(i).weight, cb.get(i).weight);
                }
            }
            _ => panic!("candidates presence mismatch"),
        }
    }

    #[test]
    fn request_round_trips_with_and_without_candidates() {
        let plain = request();
        assert_same(&RangeRequest::decode(&plain.encode()).unwrap(), &plain);

        let g = graph();
        let with = RangeRequest {
            method: "ols".to_string(),
            candidates: Some(candidates(&g)),
            ..request()
        };
        assert_same(&RangeRequest::decode(&with.encode()).unwrap(), &with);
    }

    #[test]
    fn response_round_trips_partial_state() {
        let g = graph();
        let engine = OsTrials::new(
            &g,
            &OsConfig {
                trials: 100,
                seed: 3,
                ..Default::default()
            },
        );
        let partial = Executor::new(1).run_subrange(&engine, 10..20, 100, &Cancel::never());
        let counts: Vec<_> = partial.acc.counts().map(|(b, c)| (*b, *c)).collect();
        let frame = encode_response(VERSION, &PartialState::Os(partial), None);
        let (state, profile) = decode_response(&frame).unwrap();
        assert!(profile.is_none());
        match state {
            PartialState::Os(p) => {
                assert_eq!(p.trials_done(), 10);
                assert_eq!(p.trials_requested(), 100);
                let back: Vec<_> = p.acc.counts().map(|(b, c)| (*b, *c)).collect();
                assert_eq!(back, counts);
            }
            other => panic!("wrong variant: {}", other.kind()),
        }
    }

    #[test]
    fn trace_context_and_profile_round_trip_in_v2() {
        let with_trace = RangeRequest {
            trace: Some(TraceContext {
                trace_id: "req-42".to_string(),
                parent_span: 0xABCD_1234,
            }),
            ..request()
        };
        let (back, version) = RangeRequest::decode_versioned(&with_trace.encode()).unwrap();
        assert_eq!(version, VERSION);
        assert_eq!(back.trace, with_trace.trace);

        let g = graph();
        let engine = OsTrials::new(
            &g,
            &OsConfig {
                trials: 100,
                seed: 3,
                ..Default::default()
            },
        );
        let partial = Executor::new(1).run_subrange(&engine, 0..10, 100, &Cancel::never());
        let phases = vec![
            obs::PhaseStat {
                name: "os.sample".to_string(),
                secs: 0.125,
                items: 10,
                calls: 2,
            },
            obs::PhaseStat {
                name: "registry.materialize".to_string(),
                secs: 1e-6,
                items: 0,
                calls: 1,
            },
        ];
        let frame = encode_response(VERSION, &PartialState::Os(partial), Some(&phases));
        let (_, profile) = decode_response(&frame).unwrap();
        assert_eq!(profile.unwrap(), phases);
    }

    #[test]
    fn v1_frames_interoperate_without_observability() {
        // A v1 request (old coordinator, or the down-rev fallback)
        // decodes on a v2 worker with no trace context.
        let req = RangeRequest {
            trace: Some(TraceContext {
                trace_id: "dropped".to_string(),
                parent_span: 7,
            }),
            ..request()
        };
        let (back, version) = RangeRequest::decode_versioned(&req.encode_v1()).unwrap();
        assert_eq!(version, VERSION_1);
        assert_eq!(back.trace, None);
        assert_eq!(back.graph, req.graph);

        // A v1 response (old worker) decodes on a v2 coordinator with
        // no profile.
        let g = graph();
        let engine = OsTrials::new(
            &g,
            &OsConfig {
                trials: 100,
                seed: 3,
                ..Default::default()
            },
        );
        let partial = Executor::new(1).run_subrange(&engine, 0..10, 100, &Cancel::never());
        let phases = vec![obs::PhaseStat {
            name: "os.sample".to_string(),
            secs: 0.5,
            items: 10,
            calls: 1,
        }];
        // Mirroring a v1 request drops the profile even when offered.
        let frame = encode_response(VERSION_1, &PartialState::Os(partial), Some(&phases));
        let (state, profile) = decode_response(&frame).unwrap();
        assert!(profile.is_none());
        assert!(matches!(state, PartialState::Os(_)));

        // And a v1-only peer rejects v2 frames cleanly (the signal the
        // coordinator's fallback keys on).
        let v2 = request().encode();
        assert_eq!(
            open_frame(REQ_MAGIC, VERSION_1, &v2),
            Err(CodecError::BadVersion(VERSION))
        );
    }

    #[test]
    fn corrupted_frames_are_errors_not_panics() {
        let frame = request().encode();
        // Truncation at every prefix length.
        for cut in 0..frame.len() {
            assert!(RangeRequest::decode(&frame[..cut]).is_err());
        }
        // A flipped payload byte fails the checksum.
        let mut flipped = frame.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(RangeRequest::decode(&flipped).is_err());
        // An empty range is rejected even when well-framed.
        let empty = RangeRequest {
            start: 5,
            end: 5,
            ..request()
        };
        assert!(matches!(
            RangeRequest::decode(&empty.encode()),
            Err(CodecError::Invalid(_))
        ));
    }
}
