//! Sharded multi-node serving: a deterministic scatter-gather cluster.
//!
//! One **coordinator** owns the public API surface; N **workers** own
//! trial execution. For each solve-like request the coordinator
//! partitions the trial space with the canonical
//! [`mpmb_core::chunk_ranges`] split, fans the ranges out to workers
//! over `POST /v1/internal/solve-range` (a codec-framed
//! [`crate::solve::PartialState`] comes back per range), and absorbs
//! the returned accumulators into one master partial. Because every
//! engine draws a trial's randomness from the trial *index* alone and
//! merging is order-insensitive, the assembled result is **byte
//! identical** to a single-node run at any worker count — the cluster
//! changes where trials run, never what they compute.
//!
//! Failure handling falls out of the same resume semantics the result
//! cache uses: a worker that dies, times out, or returns a truncated
//! range leaves holes in the master partial's `done` set, and the next
//! scatter round re-dispatches exactly the *remaining* trials of those
//! holes to healthy workers. Membership is a static list probed via
//! `GET /healthz`; per-worker up/down gauges and dispatch counters land
//! on the coordinator's `/metrics` page. All cluster traffic flows
//! through the ordinary HTTP edge, so the existing `--fault-plan`
//! machinery exercises worker crashes, resets, and truncated responses
//! end to end.
//!
//! `POST /v1/query` stays coordinator-local (single-trial-stream
//! estimates are cheap); every other solve-like endpoint —
//! `/v1/solve`, `/v1/topk`, `/v1/count` — scatters.

pub(crate) mod coordinator;
pub(crate) mod membership;
pub(crate) mod merge;
pub(crate) mod proto;
pub(crate) mod worker;

use crate::client::RetryPolicy;
use crate::metrics::Metrics;
use membership::Membership;

/// Which half of the cluster protocol this process speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Ordinary standalone server (the default): solves locally.
    Single,
    /// Owns the public API; scatters trial ranges to workers.
    Coordinator,
    /// Executes `/v1/internal/solve-range` calls; otherwise a normal
    /// server (it still solves locally if asked directly).
    Worker,
}

impl Role {
    /// Parses a `--role` flag value.
    pub fn parse(s: &str) -> Result<Role, String> {
        match s {
            "single" => Ok(Role::Single),
            "coordinator" => Ok(Role::Coordinator),
            "worker" => Ok(Role::Worker),
            other => Err(format!(
                "unknown role `{other}` (expected single|coordinator|worker)"
            )),
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Role::Single => "single",
            Role::Coordinator => "coordinator",
            Role::Worker => "worker",
        })
    }
}

/// Coordinator-side cluster state: the member list and the retry
/// policy used for every worker call.
pub struct Cluster {
    pub(crate) members: Membership,
    pub(crate) retry: RetryPolicy,
}

impl Cluster {
    /// Builds the cluster view for a coordinator, registering the
    /// per-worker up/down gauges on the server's metrics registry.
    /// Workers start optimistically up; the first failed call or probe
    /// marks them down.
    pub fn new(workers: Vec<String>, metrics: &Metrics) -> Cluster {
        let members = Membership::new(workers, metrics.registry());
        metrics.cluster_workers.set(members.len() as i64);
        Cluster {
            members,
            retry: RetryPolicy::default(),
        }
    }
}

/// Why a scattered request could not be answered.
#[derive(Debug)]
pub enum ClusterError {
    /// The request itself is invalid (unknown method, bad state).
    BadRequest(String),
    /// Every configured worker is down and a fresh probe round found
    /// none alive.
    NoWorkers,
    /// A worker answered with an HTTP error status — the cluster is
    /// misconfigured (e.g. the graph is missing on that worker).
    Worker {
        /// The worker's address.
        addr: String,
        /// The status it returned.
        status: u16,
        /// Its response body.
        body: String,
    },
    /// A worker returned bytes that violate the range protocol.
    Protocol(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::BadRequest(msg) => write!(f, "{msg}"),
            ClusterError::NoWorkers => write!(f, "no healthy cluster workers"),
            ClusterError::Worker { addr, status, body } => {
                write!(f, "worker {addr} answered {status}: {body}")
            }
            ClusterError::Protocol(msg) => write!(f, "cluster protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_parses_and_displays_round_trip() {
        for (s, r) in [
            ("single", Role::Single),
            ("coordinator", Role::Coordinator),
            ("worker", Role::Worker),
        ] {
            assert_eq!(Role::parse(s).unwrap(), r);
            assert_eq!(r.to_string(), s);
        }
        assert!(Role::parse("primary").is_err());
    }

    #[test]
    fn cluster_registers_worker_gauges() {
        let metrics = Metrics::default();
        let cluster = Cluster::new(vec!["a:1".into(), "b:2".into()], &metrics);
        assert_eq!(cluster.members.len(), 2);
        let text = metrics.render();
        assert!(text.contains("mpmb_cluster_workers 2"));
        assert!(text.contains("mpmb_cluster_worker_up{worker=\"a:1\"} 1"));
        assert!(text.contains("mpmb_cluster_worker_up{worker=\"b:2\"} 1"));
    }
}
