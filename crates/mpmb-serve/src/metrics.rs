//! Serving metrics, exported in Prometheus text-exposition format.
//!
//! Hand-written like the repo's hand-written CSV emitters: fixed atomic
//! counters and histograms, no registry machinery. Everything is
//! lock-free on the hot path (one `fetch_add` per event).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The endpoints with per-endpoint series. Order defines export order.
pub const ENDPOINTS: &[&str] = &[
    "solve", "query", "count", "topk", "graphs", "healthz", "metrics", "admin", "other",
];

/// Latency histogram bucket upper bounds, in seconds.
const BUCKETS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Statuses tracked per endpoint (everything else folds into `other`).
const STATUSES: &[u16] = &[200, 400, 404, 429, 503];

#[derive(Default)]
struct Histogram {
    /// Cumulative-style storage: `counts[i]` is events in bucket i
    /// (non-cumulative; cumulated at render time), plus the +Inf tail.
    counts: [AtomicU64; BUCKETS.len() + 1],
    sum_nanos: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    fn observe(&self, d: Duration) {
        let secs = d.as_secs_f64();
        let idx = BUCKETS.partition_point(|&ub| ub < secs);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-endpoint counters.
#[derive(Default)]
struct EndpointMetrics {
    /// Requests by status: indices follow `STATUSES`, last slot = other.
    by_status: [AtomicU64; STATUSES.len() + 1],
    latency: Histogram,
}

/// All serving metrics. One instance per server, shared via `Arc`.
#[derive(Default)]
pub struct Metrics {
    endpoints: [EndpointMetrics; ENDPOINTS.len()],
    /// Result-cache hits / misses.
    pub cache_hits: AtomicU64,
    /// Result-cache misses.
    pub cache_misses: AtomicU64,
    /// Requests that resumed a cached partial result (cache refinement).
    pub cache_refined: AtomicU64,
    /// Monte-Carlo trials executed by solvers (partial runs included).
    pub trials_executed: AtomicU64,
    /// Requests rejected because the accept queue was full.
    pub load_shed: AtomicU64,
    /// Requests that hit their deadline and returned 503.
    pub deadline_exceeded: AtomicU64,
    /// Requests currently being processed by workers.
    pub inflight: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

/// Index of an endpoint name in [`ENDPOINTS`].
pub fn endpoint_index(path: &str) -> usize {
    let name = match path {
        "/v1/solve" => "solve",
        "/v1/query" => "query",
        "/v1/count" => "count",
        "/v1/topk" => "topk",
        "/v1/graphs" => "graphs",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        p if p.starts_with("/admin/") => "admin",
        _ => "other",
    };
    ENDPOINTS.iter().position(|&e| e == name).unwrap()
}

impl Metrics {
    /// Records one finished request.
    pub fn record(&self, endpoint: usize, status: u16, elapsed: Duration) {
        let em = &self.endpoints[endpoint];
        let sidx = STATUSES
            .iter()
            .position(|&s| s == status)
            .unwrap_or(STATUSES.len());
        em.by_status[sidx].fetch_add(1, Ordering::Relaxed);
        em.latency.observe(elapsed);
    }

    /// Sum of request counters for one endpoint name (test convenience).
    pub fn requests_for(&self, endpoint: &str) -> u64 {
        let idx = ENDPOINTS.iter().position(|&e| e == endpoint).unwrap();
        self.endpoints[idx]
            .by_status
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the Prometheus text exposition.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP mpmb_requests_total Requests handled, by endpoint and status.\n");
        out.push_str("# TYPE mpmb_requests_total counter\n");
        for (ei, name) in ENDPOINTS.iter().enumerate() {
            let em = &self.endpoints[ei];
            for (si, &status) in STATUSES.iter().enumerate() {
                let n = em.by_status[si].load(Ordering::Relaxed);
                if n > 0 {
                    let _ = writeln!(
                        out,
                        "mpmb_requests_total{{endpoint=\"{name}\",status=\"{status}\"}} {n}"
                    );
                }
            }
            let other = em.by_status[STATUSES.len()].load(Ordering::Relaxed);
            if other > 0 {
                let _ = writeln!(
                    out,
                    "mpmb_requests_total{{endpoint=\"{name}\",status=\"other\"}} {other}"
                );
            }
        }

        out.push_str(
            "# HELP mpmb_request_duration_seconds Request latency, by endpoint.\n\
             # TYPE mpmb_request_duration_seconds histogram\n",
        );
        for (ei, name) in ENDPOINTS.iter().enumerate() {
            let h = &self.endpoints[ei].latency;
            let total = h.total.load(Ordering::Relaxed);
            if total == 0 {
                continue;
            }
            let mut cumulative = 0u64;
            for (bi, &ub) in BUCKETS.iter().enumerate() {
                cumulative += h.counts[bi].load(Ordering::Relaxed);
                let _ = writeln!(
                    out,
                    "mpmb_request_duration_seconds_bucket{{endpoint=\"{name}\",le=\"{ub}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "mpmb_request_duration_seconds_bucket{{endpoint=\"{name}\",le=\"+Inf\"}} {total}"
            );
            let sum = h.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9;
            let _ = writeln!(
                out,
                "mpmb_request_duration_seconds_sum{{endpoint=\"{name}\"}} {sum}"
            );
            let _ = writeln!(
                out,
                "mpmb_request_duration_seconds_count{{endpoint=\"{name}\"}} {total}"
            );
        }

        let simple = [
            (
                "mpmb_cache_hits_total",
                "Result-cache hits.",
                "counter",
                &self.cache_hits,
            ),
            (
                "mpmb_cache_misses_total",
                "Result-cache misses.",
                "counter",
                &self.cache_misses,
            ),
            (
                "mpmb_cache_refined_total",
                "Requests that resumed a cached partial result instead of restarting.",
                "counter",
                &self.cache_refined,
            ),
            (
                "mpmb_trials_executed_total",
                "Monte-Carlo trials executed by solvers (including partial runs).",
                "counter",
                &self.trials_executed,
            ),
            (
                "mpmb_load_shed_total",
                "Requests rejected with 429 because the accept queue was full.",
                "counter",
                &self.load_shed,
            ),
            (
                "mpmb_deadline_exceeded_total",
                "Requests that exceeded their deadline and returned 503.",
                "counter",
                &self.deadline_exceeded,
            ),
            (
                "mpmb_inflight_requests",
                "Requests currently being processed.",
                "gauge",
                &self.inflight,
            ),
            (
                "mpmb_connections_total",
                "Connections accepted.",
                "counter",
                &self.connections,
            ),
        ];
        for (name, help, kind, cell) in simple {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {}",
                cell.load(Ordering::Relaxed)
            );
        }

        let _ = writeln!(
            out,
            "# HELP mpmb_peak_rss_bytes Peak bytes allocated through the counting allocator (0 when the allocator is not installed).\n\
             # TYPE mpmb_peak_rss_bytes gauge\n\
             mpmb_peak_rss_bytes {}",
            memtrack::peak_bytes()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_complete() {
        let m = Metrics::default();
        let ei = endpoint_index("/v1/solve");
        m.record(ei, 200, Duration::from_millis(3));
        m.record(ei, 200, Duration::from_millis(30));
        m.record(ei, 503, Duration::from_secs(20)); // +Inf tail
        let text = m.render();
        assert!(text.contains("mpmb_requests_total{endpoint=\"solve\",status=\"200\"} 2"));
        assert!(text.contains("mpmb_requests_total{endpoint=\"solve\",status=\"503\"} 1"));
        assert!(
            text.contains("mpmb_request_duration_seconds_bucket{endpoint=\"solve\",le=\"+Inf\"} 3")
        );
        assert!(text.contains("mpmb_request_duration_seconds_count{endpoint=\"solve\"} 3"));
        // le="0.005" must include the 3 ms observation.
        assert!(text
            .contains("mpmb_request_duration_seconds_bucket{endpoint=\"solve\",le=\"0.005\"} 1"));
    }

    #[test]
    fn endpoint_index_covers_all_paths() {
        assert_eq!(ENDPOINTS[endpoint_index("/v1/solve")], "solve");
        assert_eq!(ENDPOINTS[endpoint_index("/admin/shutdown")], "admin");
        assert_eq!(ENDPOINTS[endpoint_index("/nope")], "other");
    }

    #[test]
    fn requests_for_sums_statuses() {
        let m = Metrics::default();
        let ei = endpoint_index("/v1/count");
        m.record(ei, 200, Duration::from_millis(1));
        m.record(ei, 418, Duration::from_millis(1)); // folds into `other`
        assert_eq!(m.requests_for("count"), 2);
        assert!(m
            .render()
            .contains("endpoint=\"count\",status=\"other\"} 1"));
    }
}
